//! F2/F3/F4/F5/F7 — the paper's figures: the annotation language example for
//! the LSU (Fig. 3), the generated modeling and properties it produces
//! (Fig. 2), the end-to-end framework flow (Figs. 4 and 5), and the
//! annotation examples for the PTW, DTLB and Mem-Engine interfaces (Fig. 7).

use autosva::annotation::RelationDir;
use autosva::{generate_ft, AutosvaOptions, Directive, FormalTool, PropertyClass};

/// The Fig. 3 annotation block, adapted to the signal names of the bundled
/// simplified LSU (the original uses struct fields of `fu_data_i`).
const FIG3_LSU: &str = autosva_designs::LSU_SV;

#[test]
fn figure3_annotations_produce_figure2_testbench() {
    let ft = generate_ft(FIG3_LSU, &AutosvaOptions::default()).unwrap();
    let text = &ft.property_file;

    // Figure 2's ingredients, regenerated automatically:
    // the transaction-counting register ...
    assert!(text.contains("reg [3:0] lsu_load_sampled;"));
    // ... the symbolic transaction-id tracking variable ...
    assert!(text.contains("symb_lsu_load_transid"));
    // ... the handshake wire ...
    assert!(text.contains("wire lsu_req_hsk = (lsu_valid_i && lsu_ready_o);"));
    // ... the cover point ...
    assert!(text.contains("co__lsu_load_request_happens: cover property"));
    // ... the stability assumption with |=> and $stable ...
    assert!(text.contains("am__lsu_load_stability: assume property"));
    assert!(text.contains("|=> $stable("));
    // ... the liveness assertions ...
    assert!(text.contains("as__lsu_load_hsk_or_drop: assert property"));
    assert!(text.contains(
        "as__lsu_load_eventual_response: assert property (lsu_load_set |-> s_eventually(lsu_load_response));"
    ));
    // ... and the response-had-a-request safety assertion.
    assert!(text.contains("as__lsu_load_had_a_request: assert property"));
}

#[test]
fn figure4_flow_produces_all_testbench_files() {
    for tool in [
        FormalTool::JasperGold,
        FormalTool::SymbiYosys,
        FormalTool::Builtin,
    ] {
        let options = AutosvaOptions {
            tool,
            rtl_files: vec!["rtl/lsu.sv".to_string()],
            ..AutosvaOptions::default()
        };
        let ft = generate_ft(FIG3_LSU, &options).unwrap();
        // Property file, bind file and tool configuration are all generated.
        assert!(ft.property_file.contains("module lsu_prop"));
        assert!(ft.bind_file.contains("bind lsu lsu_prop"));
        assert!(!ft.tool_files.is_empty());
        match tool {
            FormalTool::JasperGold => {
                assert!(ft.tool_files.iter().any(|f| f.name.ends_with(".tcl")));
            }
            FormalTool::SymbiYosys => {
                assert!(ft.tool_files.iter().any(|f| f.name.ends_with(".sby")));
            }
            FormalTool::Builtin => {
                assert!(ft.tool_files.iter().any(|f| f.name == "Makefile"));
            }
        }
    }
}

#[test]
fn figure7_ptw_and_dtlb_annotations() {
    // The PTW carries both an incoming transaction (DTLB miss -> walk result)
    // and an outgoing one (walker -> data cache), mirroring Fig. 7.
    let ft = generate_ft(autosva_designs::PTW_SV, &AutosvaOptions::default()).unwrap();
    assert_eq!(ft.transactions.len(), 2);
    let dtlb = ft
        .transactions
        .iter()
        .find(|t| t.name == "dtlb_ptw")
        .expect("dtlb transaction");
    assert_eq!(dtlb.dir, RelationDir::Incoming);
    assert!(dtlb.request.active.is_some(), "dtlb_active is annotated");
    assert!(dtlb.request.ack.is_some(), "ack derived from !ptw_active_o");
    let dcache = ft
        .transactions
        .iter()
        .find(|t| t.name == "ptw_dcache")
        .expect("dcache transaction");
    assert_eq!(dcache.dir, RelationDir::Outgoing);
    // Outgoing transactions turn liveness obligations into environment
    // fairness assumptions.
    assert!(ft
        .all_properties()
        .iter()
        .any(|p| p.transaction == "ptw_dcache"
            && p.directive == Directive::Assume
            && p.class == PropertyClass::Fairness));
}

#[test]
fn figure7_mem_engine_noc_annotations() {
    // The Mem-Engine NoC transaction of Fig. 7: val/ack attributes match the
    // port names and are picked up implicitly; only the transaction relation
    // and the two mshrid mappings are written.
    let ft = generate_ft(autosva_designs::NOC_BUFFER_SV, &AutosvaOptions::default()).unwrap();
    assert_eq!(ft.stats().annotation_loc, 3);
    let txn = &ft.transactions[0];
    assert!(txn.tracks_transid());
    assert!(txn.request.val.is_some());
    assert!(txn.request.ack.is_some());
    assert!(txn.response.val.is_some());
    assert!(txn.response.ack.is_some());
    // Implicit attributes resolve to the interface ports themselves.
    assert_eq!(
        txn.request.val.as_ref().unwrap().expr.as_ident(),
        Some("noc1buffer_req_val")
    );
}

#[test]
fn end_to_end_pipeline_is_deterministic_and_reusable() {
    // Running the pipeline twice yields identical artifacts (Fig. 5's steps
    // have no hidden state), and the generated property file can be reused
    // as the input RTL context of another generation run without error.
    let a = generate_ft(FIG3_LSU, &AutosvaOptions::default()).unwrap();
    let b = generate_ft(FIG3_LSU, &AutosvaOptions::default()).unwrap();
    assert_eq!(a.property_file, b.property_file);
    assert_eq!(a.bind_file, b.bind_file);
    assert_eq!(a.wrapper_file, b.wrapper_file);
    assert_eq!(a.stats(), b.stats());

    // The emitted wrapper parses with the bundled SystemVerilog front end.
    let parsed = svparse::parse(&a.wrapper_file).expect("wrapper parses");
    assert!(parsed.module("lsu_formal_top").is_some());
}
