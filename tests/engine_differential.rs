//! Differential testing of the verification-engine portfolio.
//!
//! Random small sequential AIG models are generated from a seed and checked
//! by every engine of the cascade — BMC + k-induction (complete at these
//! sizes thanks to the loop-free-path strengthening), IC3/PDR, and the
//! exact explicit-state engine.  All engines must agree on the SAFE-vs-CEX
//! verdict; additionally every PDR proof must come with an inductive
//! invariant that re-certifies under an independent SAT check, and every
//! PDR counterexample must replay concretely in the two-state simulator.

use autosva_bench::{build_testbench, default_check_options};
use autosva_designs::{all_cases, elaborated, Variant};
use autosva_formal::aig::{Aig, Lit};
use autosva_formal::bmc::{check_safety, BmcOptions, SafetyResult};
use autosva_formal::checker::verify_elaborated;
use autosva_formal::coi::{cone_of_influence, SliceTarget};
use autosva_formal::explicit::{ExplicitEngine, ExplicitOptions, ExplicitResult};
use autosva_formal::fuzz::{fuzz_safety, FuzzOptions};
use autosva_formal::model::{BadProperty, Model};
use autosva_formal::pdr::{check_pdr, PdrOptions, PdrResult};
use autosva_formal::sat::{SatLit, SatResult, SolverConfig};
use autosva_formal::sim::Simulator;
use autosva_formal::unroll::Unroller;
use proptest::prelude::*;
use std::collections::HashMap;

/// Deterministic xorshift generator used to derive a random model from one
/// proptest-sampled seed.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn flip(&mut self) -> bool {
        self.next().is_multiple_of(2)
    }
}

/// Builds a random sequential model: `num_latches` latches, `num_inputs`
/// inputs, a soup of random gates over them, random next-state functions and
/// a random (usually deep or unreachable) bad literal.
fn random_model(seed: u64, num_latches: usize, num_inputs: usize, num_gates: usize) -> Model {
    let mut rng = XorShift(seed | 1);
    let mut aig = Aig::new();
    let mut pool: Vec<Lit> = Vec::new();
    for i in 0..num_inputs {
        pool.push(aig.add_input(format!("i{i}")));
    }
    let latches: Vec<Lit> = (0..num_latches)
        .map(|i| {
            let l = aig.add_latch(format!("l{i}"), rng.flip());
            pool.push(l);
            l
        })
        .collect();
    for _ in 0..num_gates {
        let a = pool[rng.below(pool.len())].invert_if(rng.flip());
        let b = pool[rng.below(pool.len())].invert_if(rng.flip());
        let g = match rng.below(3) {
            0 => aig.and(a, b),
            1 => aig.or(a, b),
            _ => aig.xor(a, b),
        };
        pool.push(g);
    }
    for &l in &latches {
        let next = pool[rng.below(pool.len())].invert_if(rng.flip());
        aig.set_latch_next(l, next);
    }
    // Bias the bad literal toward a conjunction so that reachable and
    // unreachable targets both occur frequently.
    let a = pool[rng.below(pool.len())].invert_if(rng.flip());
    let b = pool[rng.below(pool.len())].invert_if(rng.flip());
    let bad = aig.and(a, b);
    let mut model = Model::new(aig);
    model.bads.push(BadProperty {
        name: "random_bad".into(),
        lit: bad,
    });
    model
}

/// Replays a counterexample trace through the two-state simulator and
/// checks that the bad monitor fires at the final cycle.
fn trace_replays(model: &Model, trace: &autosva_formal::trace::Trace) -> bool {
    let mut sim = Simulator::new(model);
    let input_names: Vec<String> = (0..model.aig.num_inputs())
        .map(|i| model.aig.input_name(i).to_string())
        .collect();
    let mut fired_last = false;
    for cycle in 0..trace.len() {
        let inputs: HashMap<String, bool> = input_names
            .iter()
            .map(|n| (n.clone(), trace.value(cycle, n).unwrap_or(false)))
            .collect();
        let violations = sim.step_named(&inputs);
        fired_last = violations.iter().any(|v| v.property == "random_bad");
    }
    fired_last
}

proptest! {
    /// BMC/k-induction, PDR and the explicit engine agree on every random
    /// model, PDR invariants certify, and PDR counterexamples replay.
    #[test]
    fn engines_agree_on_random_models(
        seed in 1u64..u64::MAX,
        num_latches in 2usize..6,
        num_inputs in 1usize..3,
        num_gates in 4usize..14,
    ) {
        let model = random_model(seed, num_latches, num_inputs, num_gates);

        // Ground truth: exhaustive reachability (exact at these sizes).
        let explicit = ExplicitEngine::explore(
            &model,
            &ExplicitOptions {
                max_states: 1 << 12,
                max_inputs: 8,
            },
        )
        .expect("explicit exploration succeeds on tiny models");
        let exact_safe = match explicit.check_bad(model.bads[0].lit) {
            ExplicitResult::Proven => true,
            ExplicitResult::Violated(_) => false,
            ExplicitResult::Exceeded => panic!("tiny model exceeded explicit limits"),
        };

        // BMC + k-induction, deep enough to be complete (the loop-free-path
        // strengthening closes any SAFE instance once the depth passes the
        // recurrence diameter, <= 2^5 here).
        let bmc = check_safety(
            &model,
            0,
            &BmcOptions { max_depth: 40, max_induction: 40 },
        );
        match &bmc {
            SafetyResult::Proven { .. } =>
                prop_assert!(exact_safe, "k-induction proved a violated model (seed {seed})"),
            SafetyResult::Violated(_) =>
                prop_assert!(!exact_safe, "BMC refuted a safe model (seed {seed})"),
            SafetyResult::Unknown { .. } =>
                panic!("bounded engines undecided on a tiny model (seed {seed})"),
            SafetyResult::Interrupted =>
                panic!("bounded engines interrupted with no interrupt armed (seed {seed})"),
        }

        // PDR, with its invariant certified by an independent SAT check and
        // its counterexamples replayed concretely.
        match check_pdr(&model, 0, &PdrOptions::default()) {
            PdrResult::Proven(invariant) => {
                prop_assert!(exact_safe, "PDR proved a violated model (seed {seed})");
                prop_assert!(
                    invariant.certify(&model, model.bads[0].lit),
                    "PDR invariant failed certification (seed {seed})"
                );
            }
            PdrResult::Violated(trace) => {
                prop_assert!(!exact_safe, "PDR refuted a safe model (seed {seed})");
                prop_assert!(
                    trace_replays(&model, &trace),
                    "PDR counterexample does not replay (seed {seed})"
                );
            }
            PdrResult::Unknown { frames_explored } => {
                panic!("PDR undecided on a tiny model (seed {seed}, {frames_explored} frames)")
            }
            PdrResult::Interrupted => {
                panic!("PDR interrupted with no interrupt armed (seed {seed})")
            }
        }
    }

    /// PDR reaches the same verdict on every random model regardless of the
    /// solver feature configuration, its invariants certify under an
    /// independent SAT check, and its counterexamples replay concretely —
    /// so the solver modernization is engine-level verdict-preserving, not
    /// just SAT-level.
    #[test]
    fn pdr_agrees_across_solver_configurations(
        seed in 1u64..u64::MAX,
        num_latches in 2usize..6,
        num_inputs in 1usize..3,
        num_gates in 4usize..14,
    ) {
        let model = random_model(seed, num_latches, num_inputs, num_gates);
        let configs = [
            ("full", SolverConfig::default()),
            ("baseline", SolverConfig::baseline()),
            // Aggressive intervals so restarts and reduction fire even on
            // these tiny instances.
            ("aggressive", SolverConfig { restart_base: 2, reduce_base: 8, ..SolverConfig::default() }),
        ];
        let mut verdicts: Vec<(&str, bool)> = Vec::new();
        for (label, config) in configs {
            let (result, _stats) = autosva_formal::pdr::check_pdr_lit_detailed(
                &model,
                model.bads[0].lit,
                &PdrOptions::default(),
                config,
            );
            let safe = match result {
                PdrResult::Proven(invariant) => {
                    prop_assert!(
                        invariant.certify(&model, model.bads[0].lit),
                        "{label}: PDR invariant failed certification (seed {seed})"
                    );
                    true
                }
                PdrResult::Violated(trace) => {
                    prop_assert!(
                        trace_replays(&model, &trace),
                        "{label}: PDR counterexample does not replay (seed {seed})"
                    );
                    false
                }
                PdrResult::Unknown { frames_explored } => {
                    panic!("{label}: PDR undecided on a tiny model (seed {seed}, {frames_explored} frames)")
                }
                PdrResult::Interrupted => {
                    panic!("{label}: PDR interrupted with no interrupt armed (seed {seed})")
                }
            };
            verdicts.push((label, safe));
        }
        prop_assert!(
            verdicts.iter().all(|&(_, safe)| safe == verdicts[0].1),
            "solver configurations disagree under PDR: {verdicts:?} (seed {seed})"
        );
    }

    /// Every solver feature configuration — restarts, recursive clause
    /// minimization and learnt-database reduction individually toggled off,
    /// the all-off baseline, and an aggressive setting that forces restarts
    /// and reduction to fire even on tiny instances — reaches the same
    /// SAT/UNSAT verdict on random AIG BMC instances, and every UNSAT
    /// answer yields a valid unsat core (a subset of the assumptions that
    /// is itself unsatisfiable).
    #[test]
    fn solver_features_agree_on_random_bmc_instances(
        seed in 1u64..u64::MAX,
        num_latches in 2usize..6,
        num_inputs in 1usize..3,
        num_gates in 4usize..14,
        depth in 1usize..8,
    ) {
        let model = random_model(seed, num_latches, num_inputs, num_gates);
        let bad = model.bads[0].lit;
        let configs = [
            ("full", SolverConfig::default()),
            ("no-restarts", SolverConfig { restarts: false, ..SolverConfig::default() }),
            ("no-minimize", SolverConfig { minimize: false, ..SolverConfig::default() }),
            ("no-reduce", SolverConfig { reduce: false, ..SolverConfig::default() }),
            ("baseline", SolverConfig::baseline()),
            ("aggressive", SolverConfig { restart_base: 2, reduce_base: 8, ..SolverConfig::default() }),
        ];
        let mut verdicts: Vec<(&str, Vec<bool>)> = Vec::new();
        for (label, config) in configs {
            let mut unroller = Unroller::with_config(&model.aig, true, config);
            let mut per_frame = Vec::with_capacity(depth + 1);
            for frame in 0..=depth {
                // Assume the bad literal fires at `frame` while the latches
                // sit at their reset values in frame 0 — multi-literal
                // assumption sets so UNSAT answers carry non-trivial cores.
                let mut assumptions: Vec<SatLit> = vec![unroller.lit_in_frame(bad, frame)];
                for latch in model.aig.latches().to_vec() {
                    let sl = unroller.lit_in_frame(
                        autosva_formal::aig::Lit::new(latch.node, !latch.init),
                        0,
                    );
                    assumptions.push(sl);
                }
                let result = unroller.solve_sat(&assumptions);
                if result == SatResult::Unsat {
                    let core = unroller.unsat_core().to_vec();
                    for l in &core {
                        prop_assert!(
                            assumptions.contains(l),
                            "{label}: core literal {l} not among the assumptions (seed {seed})"
                        );
                    }
                    prop_assert_eq!(
                        unroller.solve_sat(&core),
                        SatResult::Unsat,
                        "{} produced a satisfiable core (seed {})", label, seed
                    );
                }
                per_frame.push(result == SatResult::Sat);
            }
            verdicts.push((label, per_frame));
        }
        for window in verdicts.windows(2) {
            prop_assert_eq!(
                &window[0].1,
                &window[1].1,
                "solver configs {} and {} disagree (seed {})",
                window[0].0,
                window[1].0,
                seed
            );
        }
    }

    /// Cone-of-influence slicing is verdict-preserving: the sliced model
    /// must agree with the full model (whose ground truth comes from
    /// exhaustive explicit-state exploration) on every random AIG, under
    /// both the bounded engines and PDR, and the slice never grows.
    #[test]
    fn sliced_and_unsliced_verdicts_agree(
        seed in 1u64..u64::MAX,
        num_latches in 2usize..6,
        num_inputs in 1usize..3,
        num_gates in 4usize..14,
    ) {
        let model = random_model(seed, num_latches, num_inputs, num_gates);
        let slice = cone_of_influence(&model, SliceTarget::Bad(0));

        prop_assert!(
            slice.model.aig.num_latches() <= model.aig.num_latches(),
            "slice grew the latch set (seed {seed})"
        );
        prop_assert!(
            slice.model.aig.num_ands() <= model.aig.num_ands(),
            "slice grew the gate count (seed {seed})"
        );
        // Re-slicing the same property yields the same fingerprint.
        prop_assert_eq!(
            cone_of_influence(&model, SliceTarget::Bad(0)).fingerprint,
            slice.fingerprint
        );

        // Ground truth from the full model.
        let explicit = ExplicitEngine::explore(
            &model,
            &ExplicitOptions {
                max_states: 1 << 12,
                max_inputs: 8,
            },
        )
        .expect("explicit exploration succeeds on tiny models");
        let exact_safe = match explicit.check_bad(model.bads[0].lit) {
            ExplicitResult::Proven => true,
            ExplicitResult::Violated(_) => false,
            ExplicitResult::Exceeded => panic!("tiny model exceeded explicit limits"),
        };

        // Bounded engines on the slice.
        match check_safety(
            &slice.model,
            0,
            &BmcOptions { max_depth: 40, max_induction: 40 },
        ) {
            SafetyResult::Proven { .. } =>
                prop_assert!(exact_safe, "sliced k-induction proved a violated model (seed {seed})"),
            SafetyResult::Violated(_) =>
                prop_assert!(!exact_safe, "sliced BMC refuted a safe model (seed {seed})"),
            SafetyResult::Unknown { .. } =>
                panic!("sliced bounded engines undecided on a tiny model (seed {seed})"),
            SafetyResult::Interrupted =>
                panic!("sliced bounded engines interrupted with no interrupt armed (seed {seed})"),
        }

        // PDR on the slice, with certification against the slice.
        match check_pdr(&slice.model, 0, &PdrOptions::default()) {
            PdrResult::Proven(invariant) => {
                prop_assert!(exact_safe, "sliced PDR proved a violated model (seed {seed})");
                prop_assert!(
                    invariant.certify(&slice.model, slice.model.bads[0].lit),
                    "sliced PDR invariant failed certification (seed {seed})"
                );
            }
            PdrResult::Violated(trace) => {
                prop_assert!(!exact_safe, "sliced PDR refuted a safe model (seed {seed})");
                prop_assert!(
                    trace_replays(&slice.model, &trace),
                    "sliced PDR counterexample does not replay on the slice (seed {seed})"
                );
            }
            PdrResult::Unknown { frames_explored } => {
                panic!("sliced PDR undecided on a tiny model (seed {seed}, {frames_explored} frames)")
            }
            PdrResult::Interrupted => {
                panic!("sliced PDR interrupted with no interrupt armed (seed {seed})")
            }
        }
    }

    /// The AIG optimization pass is verdict-preserving and idempotent: on
    /// every random model the optimized AIG agrees with the unoptimized
    /// ground truth (exhaustive explicit-state exploration) through the
    /// bounded engines and PDR, never grows, and re-optimizing is a
    /// fingerprint fixpoint.
    #[test]
    fn optimized_and_unoptimized_verdicts_agree(
        seed in 1u64..u64::MAX,
        num_latches in 2usize..6,
        num_inputs in 1usize..3,
        num_gates in 4usize..14,
    ) {
        use autosva_formal::coi::fingerprint;
        use autosva_formal::opt;

        let model = random_model(seed, num_latches, num_inputs, num_gates);
        let optimized = opt::optimize(&model).model;

        prop_assert!(
            optimized.aig.num_latches() <= model.aig.num_latches(),
            "optimization grew the latch set (seed {seed})"
        );
        prop_assert!(
            optimized.aig.num_ands() <= model.aig.num_ands(),
            "optimization grew the gate count (seed {seed})"
        );

        // Idempotence: a second pass is a fingerprint fixpoint.
        let fp = fingerprint(&optimized);
        prop_assert_eq!(
            fingerprint(&opt::optimize(&optimized).model),
            fp,
            "optimization is not idempotent (seed {})", seed
        );

        // Ground truth from the unoptimized model.
        let explicit = ExplicitEngine::explore(
            &model,
            &ExplicitOptions {
                max_states: 1 << 12,
                max_inputs: 8,
            },
        )
        .expect("explicit exploration succeeds on tiny models");
        let exact_safe = match explicit.check_bad(model.bads[0].lit) {
            ExplicitResult::Proven => true,
            ExplicitResult::Violated(_) => false,
            ExplicitResult::Exceeded => panic!("tiny model exceeded explicit limits"),
        };

        // Bounded engines on the optimized model.
        match check_safety(
            &optimized,
            0,
            &BmcOptions { max_depth: 40, max_induction: 40 },
        ) {
            SafetyResult::Proven { .. } =>
                prop_assert!(exact_safe, "optimized k-induction proved a violated model (seed {seed})"),
            SafetyResult::Violated(_) =>
                prop_assert!(!exact_safe, "optimized BMC refuted a safe model (seed {seed})"),
            SafetyResult::Unknown { .. } =>
                panic!("optimized bounded engines undecided on a tiny model (seed {seed})"),
            SafetyResult::Interrupted =>
                panic!("optimized bounded engines interrupted with no interrupt armed (seed {seed})"),
        }

        // PDR on the optimized model, certifying against it.
        match check_pdr(&optimized, 0, &PdrOptions::default()) {
            PdrResult::Proven(invariant) => {
                prop_assert!(exact_safe, "optimized PDR proved a violated model (seed {seed})");
                prop_assert!(
                    invariant.certify(&optimized, optimized.bads[0].lit),
                    "optimized PDR invariant failed certification (seed {seed})"
                );
            }
            PdrResult::Violated(trace) => {
                prop_assert!(!exact_safe, "optimized PDR refuted a safe model (seed {seed})");
                prop_assert!(
                    trace_replays(&optimized, &trace),
                    "optimized PDR counterexample does not replay (seed {seed})"
                );
            }
            PdrResult::Unknown { frames_explored } => {
                panic!("optimized PDR undecided on a tiny model (seed {seed}, {frames_explored} frames)")
            }
            PdrResult::Interrupted => {
                panic!("optimized PDR interrupted with no interrupt armed (seed {seed})")
            }
        }
    }

    /// The clause-sharing portfolio race is verdict-preserving and sound:
    /// on every random model the lockstep race of diverse solver
    /// configurations returns the same verdict (same induction depth,
    /// same minimal counterexample depth) as the plain single-solver
    /// loop, and every clause the racers exchanged through the shared BMC
    /// pool is *implied* by the exporting cone — assuming its negation
    /// against a fresh unrolling of the same model is UNSAT.
    #[test]
    fn race_agrees_with_single_solver_and_shares_only_implied_clauses(
        seed in 1u64..u64::MAX,
        num_latches in 2usize..6,
        num_inputs in 1usize..3,
        num_gates in 4usize..14,
    ) {
        use autosva_formal::bmc::{check_safety_budgeted, race_safety_budgeted, RaceOptions};
        use autosva_formal::interrupt::Interrupt;
        use autosva_formal::sat::ClausePool;
        use std::sync::Arc;

        let model = random_model(seed, num_latches, num_inputs, num_gates);
        let options = BmcOptions { max_depth: 12, max_induction: 12 };
        let (single, _) = check_safety_budgeted(
            &model,
            0,
            &options,
            SolverConfig::default(),
            &Interrupt::none(),
        );

        let bmc_pool = Arc::new(ClausePool::new(4));
        let step_pool = Arc::new(ClausePool::new(4));
        let race = RaceOptions {
            configs: vec![
                SolverConfig::default(),
                // Aggressive intervals so restarts — and the restart-time
                // clause imports — fire even on these tiny instances.
                SolverConfig { restart_base: 2, reduce_base: 8, ..SolverConfig::default() },
                SolverConfig::baseline(),
            ],
            // A tiny turn quantum maximizes interleaving between racers.
            quantum: 4,
            glue_bound: 4,
            lemmas: Vec::new(),
            seeds: HashMap::new(),
            pools: Some((Arc::clone(&bmc_pool), Arc::clone(&step_pool))),
        };
        let (raced, _, _) = race_safety_budgeted(&model, 0, &options, &race, &Interrupt::none());
        match (&single, &raced) {
            (
                SafetyResult::Proven { induction_depth: a },
                SafetyResult::Proven { induction_depth: b },
            ) => prop_assert_eq!(a, b, "race changed the induction depth (seed {})", seed),
            (SafetyResult::Violated(a), SafetyResult::Violated(b)) => prop_assert_eq!(
                a.len(),
                b.len(),
                "race changed the minimal counterexample depth (seed {})",
                seed
            ),
            (SafetyResult::Unknown { .. }, SafetyResult::Unknown { .. }) => {}
            (s, r) => prop_assert!(
                false,
                "race and single solver disagree (seed {seed}): {s:?} vs {r:?}"
            ),
        }

        // Implication spot-check over the shared BMC pool.  A fresh
        // unrolling of the same AIG — issuing the same query sequence the
        // racers issue (the bad literal, depth by depth), so the lazy
        // Tseitin encoding allocates variables in the identical order —
        // reproduces the racers' variable numbering, and each pooled
        // clause can be queried verbatim: CNF ∧ ¬C must be unsatisfiable.
        let mut fresh = Unroller::new(&model.aig, true);
        for frame in 0..=options.max_depth {
            let _ = fresh.lit_in_frame(model.bads[0].lit, frame);
        }
        for (clause, _lbd) in bmc_pool.snapshot().into_iter().take(24) {
            prop_assert!(
                clause.iter().all(|l| l.var() < fresh.solver().num_vars()),
                "pooled clause references a variable outside the unrolling (seed {seed})"
            );
            let negated: Vec<SatLit> = clause.iter().map(|l| l.negate()).collect();
            prop_assert_eq!(
                fresh.solve_sat(&negated),
                SatResult::Unsat,
                "shared clause {:?} is not implied by the exporting cone (seed {})",
                clause,
                seed
            );
        }
    }

    /// The pre-cascade stimulus fuzzer never contradicts the SAT engines:
    /// every violation it reports is confirmed by BMC as a counterexample at
    /// the same depth (the re-minimization the cascade relies on), and it
    /// never reports a violation for a property PDR proves.
    #[test]
    fn fuzzer_agrees_with_the_sat_engines_on_random_models(
        seed in 1u64..u64::MAX,
        num_latches in 2usize..6,
        num_inputs in 1usize..3,
        num_gates in 4usize..14,
    ) {
        let model = random_model(seed, num_latches, num_inputs, num_gates);
        let hit = fuzz_safety(&model, 0, &FuzzOptions::default());

        if let Some(hit) = &hit {
            // The hit's own trace is concrete evidence — it must replay —
            // and bounding BMC by the fuzzed depth must find the bug too.
            prop_assert!(
                trace_replays(&model, &hit.trace),
                "fuzz counterexample does not replay (seed {seed})"
            );
            prop_assert!(
                matches!(
                    check_safety(
                        &model,
                        0,
                        &BmcOptions { max_depth: hit.cycle, max_induction: 0 },
                    ),
                    SafetyResult::Violated(_)
                ),
                "fuzz hit at cycle {} is not a BMC counterexample at that depth (seed {seed})",
                hit.cycle
            );
        }

        if let PdrResult::Proven(invariant) = check_pdr(&model, 0, &PdrOptions::default()) {
            prop_assert!(
                invariant.certify(&model, model.bads[0].lit),
                "PDR invariant failed certification (seed {seed})"
            );
            prop_assert!(
                hit.is_none(),
                "fuzzer reported a violation for a PDR-proven property (seed {seed})"
            );
        }
    }
}

/// The struct-aware front end is a zero-cost view over flat signals: the
/// struct-port demo design (`fu_data_t` port, `fu_data_i.fu == LOAD`-style
/// annotations) and its hand-flattened twin must verify through the full
/// cascade to **byte-identical** deterministic reports, and every property's
/// cone-of-influence slice must carry an identical content fingerprint.
#[test]
fn struct_and_flat_twin_reports_are_byte_identical() {
    use autosva::{generate_ft, AutosvaOptions};
    use autosva_formal::checker::{verify, CheckOptions};
    use autosva_formal::coi::Fingerprint;
    use autosva_formal::compile::compile;
    use autosva_formal::elab::{elaborate, ElabOptions};

    let sources = autosva_designs::struct_demo_sources();
    assert_eq!(sources.len(), 2);

    let mut reports: Vec<String> = Vec::new();
    let mut fingerprints: Vec<Vec<(String, Fingerprint)>> = Vec::new();
    for (label, top, source) in &sources {
        let ft = generate_ft(source, &AutosvaOptions::default())
            .unwrap_or_else(|e| panic!("{label}: testbench generation failed: {e}"));
        assert_eq!(&ft.dut_name, top);
        let report = verify(source, &ft, &CheckOptions::default())
            .unwrap_or_else(|e| panic!("{label}: verification failed: {e}"));
        // The struct design must verify through the full cascade: every
        // assertion proven, both cover targets reachable, nothing undecided.
        assert_eq!(report.violations(), 0, "{label}:\n{}", report.render());
        assert!(
            (report.proof_rate() - 1.0).abs() < f64::EPSILON,
            "{label}: expected a full proof:\n{}",
            report.render()
        );
        reports.push(report.render());

        // Per-property COI slice fingerprints.
        let file = svparse::parse(source).unwrap();
        let design = elaborate(
            &file,
            &ElabOptions {
                top: Some(top.to_string()),
                ..ElabOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{label}: elaboration failed: {e}"));
        let compiled = compile(&design, &ft).unwrap();
        let mut fps = Vec::new();
        for (i, bad) in compiled.model.bads.iter().enumerate() {
            let slice = cone_of_influence(&compiled.model, SliceTarget::Bad(i));
            fps.push((format!("bad:{}", bad.name), slice.fingerprint));
        }
        for (i, cover) in compiled.model.covers.iter().enumerate() {
            let slice = cone_of_influence(&compiled.model, SliceTarget::Cover(i));
            fps.push((format!("cover:{}", cover.name), slice.fingerprint));
        }
        for (i, live) in compiled.model.liveness.iter().enumerate() {
            let slice = cone_of_influence(&compiled.model, SliceTarget::Liveness(i));
            fps.push((format!("liveness:{}", live.name), slice.fingerprint));
        }
        assert!(!fps.is_empty(), "{label}: no properties compiled");
        fingerprints.push(fps);
    }

    assert_eq!(
        reports[0], reports[1],
        "struct and flat twin reports diverge:\n--- struct ---\n{}\n--- flat ---\n{}",
        reports[0], reports[1]
    );
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "struct and flat twin COI fingerprints diverge"
    );
}

/// The orchestrator's determinism contract: a fully sequential run
/// (`threads = 1`) and a parallel run (`threads = 4`) of the whole Table III
/// corpus must render byte-identical reports — same statuses, same proof
/// artifacts, same slice sizes, independent of thread interleaving — with
/// the AIG optimization pass both enabled and disabled.
#[test]
fn parallel_and_sequential_corpus_reports_are_byte_identical() {
    for case in all_cases() {
        let variants: &[Variant] = if case.has_bug_parameter {
            &[Variant::Fixed, Variant::Buggy]
        } else {
            &[Variant::Fixed]
        };
        for &variant in variants {
            let ft = build_testbench(&case);
            let design = elaborated(&case, variant);

            for opt in [true, false] {
                let mut sequential = default_check_options(&case, variant);
                sequential.parallel.threads = 1;
                sequential.parallel.opt = opt;
                let seq_report =
                    verify_elaborated(&design, &ft, &sequential).expect("sequential run succeeds");

                let mut parallel = default_check_options(&case, variant);
                parallel.parallel.threads = 4;
                parallel.parallel.opt = opt;
                let par_report =
                    verify_elaborated(&design, &ft, &parallel).expect("parallel run succeeds");

                assert_eq!(
                    seq_report.render(),
                    par_report.render(),
                    "{} ({variant:?}, opt={opt}): sequential and parallel reports diverge",
                    case.id
                );
            }
        }
    }
}

/// The fuzzer's determinism contract: the rendered report of the whole
/// Table III corpus is byte-identical with the fuzz stage on or off, for
/// any stimulus seed, in both sequential and parallel runs.  (Confirmed
/// fuzz hits are re-minimized through bounded BMC before reporting, so the
/// *verdict and trace length* never depend on which engine got there
/// first; provenance is only visible through the timed rendering.)
#[test]
fn fuzz_on_and_off_corpus_reports_are_byte_identical() {
    for case in all_cases() {
        let variants: &[Variant] = if case.has_bug_parameter {
            &[Variant::Fixed, Variant::Buggy]
        } else {
            &[Variant::Fixed]
        };
        for &variant in variants {
            let ft = build_testbench(&case);
            let design = elaborated(&case, variant);

            for threads in [1usize, 4] {
                let mut baseline = default_check_options(&case, variant);
                baseline.parallel.threads = threads;
                baseline.fuzz.enabled = false;
                let baseline_render = verify_elaborated(&design, &ft, &baseline)
                    .expect("fuzz-off run succeeds")
                    .render();

                for seed in [autosva_formal::fuzz::FuzzOptions::default().seed, 1u64] {
                    let mut fuzzed = default_check_options(&case, variant);
                    fuzzed.parallel.threads = threads;
                    fuzzed.fuzz.enabled = true;
                    fuzzed.fuzz.seed = seed;
                    let fuzzed_render = verify_elaborated(&design, &ft, &fuzzed)
                        .expect("fuzz-on run succeeds")
                        .render();
                    assert_eq!(
                        baseline_render, fuzzed_render,
                        "{} ({variant:?}, threads={threads}, seed={seed:#x}): \
                         fuzz-on and fuzz-off reports diverge",
                        case.id
                    );
                }
            }
        }
    }
}

/// The clause-sharing determinism contract: the rendered report of the
/// whole Table III corpus is byte-identical with the portfolio race on
/// (at 2 and at the default 3 racer configurations) or off, sequential
/// or parallel.  Shared clauses, PDR lemmas and cross-property seeds may
/// only ever *strengthen* the search — verdicts, proof artifacts and
/// (re-minimized) counterexample traces never depend on them.
#[test]
fn sharing_on_and_off_corpus_reports_are_byte_identical() {
    use autosva_formal::portfolio::SharingOptions;

    for case in all_cases() {
        let variants: &[Variant] = if case.has_bug_parameter {
            &[Variant::Fixed, Variant::Buggy]
        } else {
            &[Variant::Fixed]
        };
        for &variant in variants {
            let ft = build_testbench(&case);
            let design = elaborated(&case, variant);

            for threads in [1usize, 4] {
                let mut off = default_check_options(&case, variant);
                off.parallel.threads = threads;
                off.sharing = SharingOptions::disabled();
                let off_render = verify_elaborated(&design, &ft, &off)
                    .expect("sharing-off run succeeds")
                    .render();

                for racers in [2usize, 3] {
                    let mut on = default_check_options(&case, variant);
                    on.parallel.threads = threads;
                    on.sharing = SharingOptions {
                        racers,
                        ..SharingOptions::default()
                    };
                    let on_render = verify_elaborated(&design, &ft, &on)
                        .expect("sharing-on run succeeds")
                        .render();
                    assert_eq!(
                        off_render, on_render,
                        "{} ({variant:?}, threads={threads}, racers={racers}): \
                         sharing-on and sharing-off reports diverge",
                        case.id
                    );
                }
            }
        }
    }
}

/// The telemetry determinism contract: instrumenting the run must not
/// perturb it.  Across the whole Table III corpus, `render()` is
/// byte-identical with telemetry on or off, sequential or parallel — the
/// spans, counters and gauges only ever observe the cascade, never steer
/// it — and the deterministic subset of the telemetry JSON report is
/// byte-identical between the sequential and parallel collection runs.
#[test]
fn telemetry_on_and_off_corpus_reports_are_byte_identical() {
    for case in all_cases() {
        let variants: &[Variant] = if case.has_bug_parameter {
            &[Variant::Fixed, Variant::Buggy]
        } else {
            &[Variant::Fixed]
        };
        for &variant in variants {
            let ft = build_testbench(&case);
            let design = elaborated(&case, variant);

            let mut deterministic_jsons: Vec<String> = Vec::new();
            for threads in [1usize, 4] {
                let mut off = default_check_options(&case, variant);
                off.parallel.threads = threads;
                let off_render = verify_elaborated(&design, &ft, &off)
                    .expect("telemetry-off run succeeds")
                    .render();

                let mut on = default_check_options(&case, variant);
                on.parallel.threads = threads;
                on.telemetry.enabled = true;
                let on_report =
                    verify_elaborated(&design, &ft, &on).expect("telemetry-on run succeeds");
                assert_eq!(
                    off_render,
                    on_report.render(),
                    "{} ({variant:?}, threads={threads}): telemetry-on and -off reports diverge",
                    case.id
                );
                let telemetry = on_report
                    .telemetry
                    .as_ref()
                    .expect("telemetry-on run carries a telemetry report");
                assert!(
                    !telemetry.spans.is_empty(),
                    "{}: no spans recorded",
                    case.id
                );
                deterministic_jsons.push(telemetry.deterministic_json());
            }
            assert_eq!(
                deterministic_jsons[0], deterministic_jsons[1],
                "{} ({variant:?}): the deterministic telemetry subset depends on the \
                 thread count",
                case.id
            );
        }
    }
}

/// The measured acceptance bar for the optimization pass: across every COI
/// slice of the whole corpus (both variants), optimization shrinks the
/// summed gate count by at least 15%.
#[test]
fn optimization_shrinks_the_summed_corpus_slices_by_at_least_15_percent() {
    use autosva_formal::opt;

    let mut before_total = 0usize;
    let mut after_total = 0usize;
    for case in all_cases() {
        for variant in [Variant::Buggy, Variant::Fixed] {
            if variant == Variant::Buggy && !case.has_bug_parameter {
                continue;
            }
            let design = elaborated(&case, variant);
            let ft = build_testbench(&case);
            let compiled =
                autosva_formal::compile::compile(&design, &ft).expect("corpus case compiles");
            let model = &compiled.model;
            let mut slices: Vec<SliceTarget> = Vec::new();
            slices.extend((0..model.bads.len()).map(SliceTarget::Bad));
            slices.extend((0..model.covers.len()).map(SliceTarget::Cover));
            slices.extend((0..model.liveness.len()).map(SliceTarget::Liveness));
            for target in slices {
                let slice = cone_of_influence(model, target);
                before_total += slice.model.aig.num_ands();
                after_total += opt::optimize(&slice.model).model.aig.num_ands();
            }
        }
    }
    let reduction = 100.0 * (before_total - after_total) as f64 / before_total.max(1) as f64;
    assert!(
        reduction >= 15.0,
        "optimization shrank summed corpus slice gates by only {reduction:.1}% \
         ({before_total} -> {after_total}); the documented bar is 15%"
    );
}
