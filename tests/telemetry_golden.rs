//! Golden test for the telemetry run report: the deterministic subset of
//! the JSON sink ([`TelemetryReport::deterministic_json`]) is pinned for
//! one corpus design, and the Chrome trace sink is structurally validated
//! (balanced begin/end pairs, per-track monotone timestamps).
//!
//! The golden covers exactly the fields the telemetry contract promises
//! are run-to-run and thread-count invariant: verdict counts, per-phase
//! span counts, the counter registry and model/slice gate totals.
//! Durations, worker ids and gauges live in the `"timing"` section of the
//! full report and are deliberately absent here.
//!
//! [`TelemetryReport::deterministic_json`]: autosva_formal::telemetry::TelemetryReport::deterministic_json

use autosva_bench::{build_testbench, default_check_options};
use autosva_designs::{by_id, Variant};
use autosva_formal::checker::{verify, CheckOptions, VerificationReport};
use autosva_formal::telemetry::validate_chrome_trace;

const GOLDEN: &str = include_str!("../crates/designs/golden/telemetry_A1.json");

/// Runs corpus case A1 (fixed variant) through the full front end and
/// cascade with telemetry enabled.  Going through [`verify`] rather than
/// the pre-elaborated entry point puts the `parse` and `elab` phases in
/// the report, so the golden pins the whole pipeline taxonomy.
fn a1_run(threads: usize) -> VerificationReport {
    let case = by_id("A1").expect("corpus case A1 exists");
    let ft = build_testbench(&case);
    let mut options: CheckOptions = default_check_options(&case, Variant::Fixed);
    options.parallel.threads = threads;
    options.telemetry.enabled = true;
    verify(case.source, &ft, &options).expect("A1 verifies")
}

#[test]
fn deterministic_subset_matches_the_golden() {
    let report = a1_run(1);
    let telemetry = report.telemetry.as_ref().expect("telemetry attached");
    assert_eq!(
        telemetry.deterministic_json(),
        GOLDEN,
        "deterministic telemetry subset for A1 drifted from \
         crates/designs/golden/telemetry_A1.json; regenerate the golden \
         (see regenerate_golden below) if the change is intentional"
    );
}

#[test]
fn deterministic_subset_is_fresh_run_and_thread_count_invariant() {
    let sequential_a = a1_run(1);
    let sequential_b = a1_run(1);
    let parallel = a1_run(4);
    let json = |r: &VerificationReport| r.telemetry.as_ref().unwrap().deterministic_json();
    assert_eq!(
        json(&sequential_a),
        json(&sequential_b),
        "two fresh sequential runs must agree byte-for-byte"
    );
    assert_eq!(
        json(&sequential_a),
        json(&parallel),
        "thread count must not change the deterministic subset"
    );
}

#[test]
fn chrome_trace_is_structurally_valid_and_full_json_embeds_the_subset() {
    let report = a1_run(4);
    let telemetry = report.telemetry.as_ref().expect("telemetry attached");

    let trace = telemetry.to_chrome_trace();
    let summary = validate_chrome_trace(&trace)
        .unwrap_or_else(|e| panic!("A1 Chrome trace failed structural validation: {e}"));
    assert_eq!(
        summary.spans,
        telemetry.spans.len(),
        "every recorded span must appear as a balanced B/E pair"
    );
    assert!(summary.tracks >= 1, "at least the orchestrator track");

    let full = telemetry.to_json();
    assert!(
        full.starts_with("{\n\"schema\": \"autosva-telemetry v1\","),
        "full report must lead with the schema marker"
    );
    assert!(
        full.contains(telemetry.deterministic_json().trim_end()),
        "full report must embed the deterministic subset verbatim"
    );
}

#[test]
fn file_sinks_write_both_documents() {
    let dir = std::env::temp_dir().join(format!("autosva-telemetry-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create sink dir");
    let trace_path = dir.join("a1.trace.json");
    let json_path = dir.join("a1.telemetry.json");

    let case = by_id("A1").expect("corpus case A1 exists");
    let ft = build_testbench(&case);
    let mut options: CheckOptions = default_check_options(&case, Variant::Fixed);
    options.parallel.threads = 2;
    options.telemetry.enabled = true;
    options.telemetry.trace_path = Some(trace_path.clone());
    options.telemetry.json_path = Some(json_path.clone());
    let report = verify(case.source, &ft, &options).expect("A1 verifies");
    let telemetry = report.telemetry.as_ref().expect("telemetry attached");

    let trace = std::fs::read_to_string(&trace_path).expect("trace sink written");
    assert_eq!(trace, telemetry.to_chrome_trace());
    validate_chrome_trace(&trace).expect("written trace validates");

    let json = std::fs::read_to_string(&json_path).expect("json sink written");
    assert_eq!(json, telemetry.to_json());
    assert!(
        json.contains(GOLDEN.trim_end()),
        "sink carries the golden subset"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Regenerates `crates/designs/golden/telemetry_A1.json` in place.  Run
/// after an intentional taxonomy or counter change:
///
/// ```sh
/// cargo test --release --test telemetry_golden -- --ignored regenerate_golden
/// ```
#[test]
#[ignore = "writes the golden file; run explicitly to regenerate"]
fn regenerate_golden() {
    let report = a1_run(1);
    let telemetry = report.telemetry.as_ref().expect("telemetry attached");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/designs/golden/telemetry_A1.json"
    );
    std::fs::write(path, telemetry.deterministic_json()).expect("write golden");
}
