//! E7 — the DTLB-over-ITLB starvation counterexample.
//!
//! Before finding the ghost-response bug, the paper describes an interesting
//! liveness counterexample in the MMU testbench: the page-table walker gives
//! static priority to DTLB misses, so a stream of LSU translation requests
//! can starve an ITLB miss forever.  The trace is unrealistic (one
//! instruction cannot perform unboundedly many DTLB lookups), so the designer
//! adds an assumption and the property set then proves.

use autosva::sva::{Directive, PropertyBody, SvaProperty};
use autosva::{generate_ft, AutosvaOptions, PropertyClass};
use autosva_bench::default_check_options;
use autosva_designs::{by_id, Variant, MMU_NO_STARVATION_ASSUMPTION};
use autosva_formal::checker::verify;

#[test]
fn itlb_starves_without_the_designer_assumption() {
    let case = by_id("A3").unwrap();
    // Plain testbench, no designer assumptions.
    let ft = generate_ft(case.source, &AutosvaOptions::default()).unwrap();
    let report = verify(
        case.source,
        &ft,
        &default_check_options(&case, Variant::Fixed),
    )
    .unwrap();
    let starvation = report
        .results
        .iter()
        .find(|r| r.name.contains("itlb_fill_hsk_or_drop"))
        .expect("itlb handshake liveness property exists");
    assert!(
        starvation.status.is_violation(),
        "expected the starvation CEX, got {}:\n{}",
        starvation.status,
        report.render()
    );
}

#[test]
fn adding_the_assumption_removes_the_starvation_cex() {
    let case = by_id("A3").unwrap();
    let mut ft = generate_ft(case.source, &AutosvaOptions::default()).unwrap();
    ft.linked_properties.push(SvaProperty {
        name: "no_dtlb_while_itlb_pending".to_string(),
        directive: Directive::Assume,
        class: PropertyClass::Safety,
        body: PropertyBody::Invariant(svparse::parse_expr(MMU_NO_STARVATION_ASSUMPTION).unwrap()),
        xprop_only: false,
        transaction: "designer".to_string(),
    });
    let report = verify(
        case.source,
        &ft,
        &default_check_options(&case, Variant::Fixed),
    )
    .unwrap();
    let starvation = report
        .results
        .iter()
        .find(|r| r.name.contains("itlb_fill_hsk_or_drop"))
        .expect("itlb handshake liveness property exists");
    assert_eq!(
        format!("{}", starvation.status),
        "proven",
        "assumption should remove the CEX:\n{}",
        report.render()
    );
    // And the full (fixed) MMU testbench then reaches a 100% proof rate.
    assert_eq!(report.violations(), 0, "{}", report.render());
    assert!((report.proof_rate() - 1.0).abs() < f64::EPSILON);
}
