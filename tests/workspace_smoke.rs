//! Workspace smoke test: guards the cargo workspace wiring itself.
//!
//! Every member crate is reached through the umbrella crate's re-exports, a
//! minimal annotated module runs through the full annotation → property
//! pipeline, and the bundled formal backend accepts the result.  If a
//! manifest, re-export, or inter-crate dependency regresses, this is the
//! first suite to fail — before the heavyweight evaluation tests.

use autosva_repro::{autosva, autosva_bench, autosva_designs, autosva_formal, svparse};

/// A minimal annotated request/response module: one incoming transaction,
/// val/ack picked up implicitly from the port names.
const MINIMAL_SV: &str = "\
/*AUTOSVA
ping_txn: ping_req -in> ping_res
*/
module ping (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic ping_req_val,
  output logic ping_req_ack,
  output logic ping_res_val
);
  logic busy_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) busy_q <= 1'b0;
    else if (ping_req_val && ping_req_ack) busy_q <= 1'b1;
    else busy_q <= 1'b0;
  end
  assign ping_req_ack = !busy_q;
  assign ping_res_val = busy_q;
endmodule
";

#[test]
fn minimal_module_generates_properties_through_the_umbrella() {
    // svparse re-export: the front end parses the module.
    let file = svparse::parse(MINIMAL_SV).expect("minimal module parses");
    assert!(file.module("ping").is_some());

    // autosva re-export: annotations generate at least one property.
    let ft = autosva::generate_ft(MINIMAL_SV, &autosva::AutosvaOptions::default())
        .expect("testbench generates");
    let stats = ft.stats();
    assert!(
        stats.properties >= 1,
        "expected at least one generated property, got {}",
        stats.properties
    );
    assert_eq!(stats.transactions, 1);
    assert!(stats.covers >= 1, "every transaction gets a cover point");

    // autosva_formal re-export: the bundled checker accepts the testbench.
    let report = autosva_formal::checker::verify(
        MINIMAL_SV,
        &ft,
        &autosva_formal::checker::CheckOptions::default(),
    )
    .expect("verification runs");
    assert_eq!(report.violations(), 0, "{}", report.render());
}

#[test]
fn umbrella_reaches_the_corpus_and_harness_crates() {
    // autosva_designs re-export: the corpus is present.
    assert_eq!(autosva_designs::all_cases().len(), 7);

    // autosva_bench re-export: the harness builds a testbench for a corpus
    // design without touching the (slow) model checker.
    let case = autosva_designs::by_id("O1").expect("O1 exists");
    let ft = autosva_bench::build_testbench(&case);
    assert!(ft.stats().properties > 0);
}
