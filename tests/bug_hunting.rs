//! E4/E5/E6 — the individual bug-hunting narratives of the paper's
//! evaluation: the MMU ghost response (Bug1), the NoC-buffer deadlock
//! (Bug2), and the known Ariane bugs hit by the LSU and L1-I$ testbenches.

use autosva_bench::{build_testbench, default_check_options, run_case};
use autosva_designs::{by_id, Variant};
use autosva_formal::checker::verify;

#[test]
fn bug1_mmu_ghost_response_short_trace_and_confident_fix() {
    let case = by_id("A3").unwrap();
    let buggy = run_case(&case, Variant::Buggy);

    // The bug is found as a safety violation of the "every response had a
    // request" property with a short trace (the paper reports 5 cycles).
    let ghost = buggy
        .report
        .results
        .iter()
        .find(|r| r.name.contains("mmu_lsu_had_a_request"))
        .expect("property exists");
    let trace = ghost.status.trace().expect("counterexample trace");
    assert!(
        trace.len() <= 8,
        "trace should be short, got {} cycles",
        trace.len()
    );
    // The trace exercises the misaligned request that triggers the walker.
    assert!(trace
        .signals()
        .any(|s| s.name.contains("lsu_misaligned_i") && s.values.iter().any(|&v| v)));

    // Bug-fix confidence: after the fix the very same property is proven.
    let fixed = run_case(&case, Variant::Fixed);
    let fixed_ghost = fixed
        .report
        .results
        .iter()
        .find(|r| r.name.contains("mmu_lsu_had_a_request"))
        .expect("property exists");
    assert_eq!(format!("{}", fixed_ghost.status), "proven");
}

#[test]
fn bug2_noc_buffer_deadlock_from_three_annotation_lines() {
    let case = by_id("O1").unwrap();
    // The testbench really is generated from three annotation lines.
    let ft = build_testbench(&case);
    assert_eq!(ft.stats().annotation_loc, 3);

    let buggy = run_case(&case, Variant::Buggy);
    let deadlock = buggy
        .report
        .results
        .iter()
        .find(|r| r.name.contains("noc_txn_eventual_response"))
        .expect("property exists");
    assert!(deadlock.status.is_violation(), "{}", buggy.report.render());
    // The counterexample needs to overflow the two-entry buffer, so it takes
    // a handful of cycles but stays short.
    let trace = deadlock.status.trace().unwrap();
    assert!(
        trace.len() >= 3 && trace.len() <= 15,
        "got {} cycles",
        trace.len()
    );

    // Adding the not-full condition (the paper's fix) turns the CEX into a
    // proof.
    let fixed = run_case(&case, Variant::Fixed);
    assert!(fixed.fully_proven(), "{}", fixed.report.render());
}

#[test]
fn known_bug_lsu_load_killed_by_later_exception() {
    let case = by_id("A4").unwrap();
    let buggy = run_case(&case, Variant::Buggy);
    let lost_load = buggy
        .report
        .results
        .iter()
        .find(|r| r.name.contains("lsu_load_eventual_response"))
        .expect("property exists");
    assert!(lost_load.status.is_violation());
    // The counterexample must actually raise the exception input.
    let trace = lost_load.status.trace().unwrap();
    assert!(trace
        .signals()
        .any(|s| s.name.contains("exception_i") && s.values.iter().any(|&v| v)));
}

#[test]
fn known_bug_icache_fetch_dropped_by_flush() {
    let case = by_id("A5").unwrap();
    let buggy = run_case(&case, Variant::Buggy);
    let dropped = buggy
        .report
        .results
        .iter()
        .find(|r| r.name.contains("icache_fetch") && r.status.is_violation())
        .expect("a fetch property is violated");
    let trace = dropped.status.trace().unwrap();
    assert!(trace
        .signals()
        .any(|s| s.name.contains("flush_i") && s.values.iter().any(|&v| v)));
}

#[test]
fn buggy_and_fixed_variants_share_the_same_testbench() {
    // AutoSVA generates the testbench from the interface only; the RTL fix
    // does not change the annotations, so both variants verify against the
    // identical property set (what the paper calls validating the bug-fix
    // with the same FT).
    let case = by_id("O1").unwrap();
    let ft = build_testbench(&case);
    let buggy_report = verify(
        case.source,
        &ft,
        &default_check_options(&case, Variant::Buggy),
    )
    .unwrap();
    let fixed_report = verify(
        case.source,
        &ft,
        &default_check_options(&case, Variant::Fixed),
    )
    .unwrap();
    let names = |r: &autosva_formal::checker::VerificationReport| {
        r.results.iter().map(|p| p.name.clone()).collect::<Vec<_>>()
    };
    assert_eq!(names(&buggy_report), names(&fixed_report));
    assert!(buggy_report.violations() > 0);
    assert_eq!(fixed_report.violations(), 0);
}
