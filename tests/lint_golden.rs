//! Golden-diagnostics snapshot for the design lint engine.
//!
//! `crates/designs/rtl/lint_demo.sv` seeds exactly one finding per lint
//! code; this test pins the full machine-readable report byte-for-byte
//! against `crates/designs/golden/lint_demo.json` and spot-checks the
//! human rendering (codes, positions, caret snippets).  A second test
//! asserts the clean Table III corpus produces *zero* findings, so the
//! lint's conservative width/usage inference stays noise-free.

use autosva::{generate_ft, AutosvaOptions};
use autosva_bench::build_testbench;
use autosva_designs::{all_cases, elaborated, lint_demo_source, struct_demo_sources, Variant};
use autosva_formal::compile::compile;
use autosva_formal::elab::{elaborate, ElabOptions};
use autosva_formal::lint::{self, LintOptions, LintReport, Severity, LINT_CODES};

const GOLDEN: &str = include_str!("../crates/designs/golden/lint_demo.json");

fn lint_demo_report() -> LintReport {
    let (_, module, source) = lint_demo_source();
    let ft = generate_ft(source, &AutosvaOptions::default()).expect("lint_demo annotation parses");
    let file = svparse::parse(source).expect("lint_demo parses");
    let design = elaborate(
        &file,
        &ElabOptions {
            top: Some(module.to_string()),
            ..ElabOptions::default()
        },
    )
    .expect("lint_demo elaborates");
    let compiled = compile(&design, &ft).expect("lint_demo compiles");
    lint::run(
        &design,
        &compiled,
        &ft,
        Some(source),
        &LintOptions::default(),
    )
}

#[test]
fn lint_demo_matches_the_golden_snapshot() {
    let report = lint_demo_report();
    assert_eq!(
        report.to_json(),
        GOLDEN,
        "lint_demo JSON drifted from crates/designs/golden/lint_demo.json; \
         regenerate the golden if the change is intentional"
    );
}

#[test]
fn lint_demo_seeds_every_code_at_the_expected_position() {
    let report = lint_demo_report();

    // One finding per lint code, no extras.
    assert_eq!(report.findings.len(), LINT_CODES.len());
    for (code, _) in LINT_CODES {
        let hits = report.findings.iter().filter(|f| f.code == *code).count();
        assert_eq!(hits, 1, "expected exactly one {code} finding");
    }

    // (code, signal, line, column) for every seeded finding.  Positions point
    // at real code or annotation text, never at prose comments.
    let expected = [
        ("L009", "req.id", 22, 21),
        ("L004", "demo_txn_data_sampled", 24, 18),
        ("L008", "dbg_state", 36, 22),
        ("L007", "state_q", 41, 15),
        ("L006", "unused_cnt", 43, 15),
        ("L001", "ghost", 44, 15),
        ("L002", "clash", 45, 15),
        ("L005", "stuck_q", 46, 15),
        ("L003", "scratch", 53, 3),
    ];
    for (code, signal, line, column) in expected {
        let f = report
            .findings
            .iter()
            .find(|f| f.code == code)
            .unwrap_or_else(|| panic!("missing {code}"));
        assert_eq!(f.signal, signal, "{code} signal");
        assert_eq!(f.line, Some(line), "{code} line");
        assert_eq!(f.column, Some(column), "{code} column");
        assert!(f.snippet.is_some(), "{code} has a caret snippet");
    }

    // Only the multiply-driven finding is an error by default.
    let errors: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .collect();
    assert_eq!(errors.len(), 1);
    assert_eq!(errors[0].code, "L002");
    assert!(report.has_errors());

    // The caret snippet reproduces the offending source line with the caret
    // under the reported column.
    let l003 = report.findings.iter().find(|f| f.code == "L003").unwrap();
    let snippet = l003.snippet.as_deref().unwrap();
    assert!(
        snippet.contains("assign scratch = 2'd1;"),
        "L003 snippet shows the assignment: {snippet:?}"
    );
    assert!(snippet.lines().any(|l| l.trim_end().ends_with('^')));

    // And the rendering carries codes, positions and snippets through.
    let rendered = report.render();
    assert!(rendered.contains("lint: 9 findings (1 error, 8 warnings)"));
    assert!(rendered.contains("error[L002]"));
    assert!(rendered.contains("--> 53:3"));
    assert!(rendered.contains("assign scratch = 2'd1;"));
}

#[test]
fn lint_errors_abort_verification_before_any_engine_runs() {
    use autosva_formal::checker::{verify, CheckOptions};
    use autosva_formal::lint::LintLevel;

    let (_, _, source) = lint_demo_source();
    let ft = generate_ft(source, &AutosvaOptions::default()).unwrap();

    // The multiply-driven `clash` is error severity: verify refuses to run
    // and the message carries the rendered lint report.
    let err = verify(source, &ft, &CheckOptions::default())
        .expect_err("lint_demo has an L002 error, verify must refuse");
    let message = err.to_string();
    assert!(message.contains("design lint failed"), "{message}");
    assert!(message.contains("error[L002]"), "{message}");
    assert!(message.contains("`clash`"), "{message}");

    // With the lint off, the same design verifies (findings are warnings
    // about legal code; the last continuous assign wins for `clash`).
    let mut options = CheckOptions::default();
    options.lint.level = LintLevel::Off;
    let report = verify(source, &ft, &options).expect("lint off: design verifies");
    assert!(report.lint.is_empty());
    assert!(!report.results.is_empty());
}

#[test]
fn the_clean_corpus_lints_without_findings() {
    for case in all_cases() {
        for variant in [Variant::Buggy, Variant::Fixed] {
            if variant == Variant::Buggy && !case.has_bug_parameter {
                continue;
            }
            let design = elaborated(&case, variant);
            let ft = build_testbench(&case);
            let compiled = compile(&design, &ft).expect("corpus case compiles");
            let report = lint::run(
                &design,
                &compiled,
                &ft,
                Some(case.source),
                &LintOptions::default(),
            );
            assert!(
                report.is_empty(),
                "{} {:?} should lint clean but reported:\n{}",
                case.id,
                variant,
                report.render()
            );
        }
    }
    for (label, module, source) in struct_demo_sources() {
        let ft = generate_ft(source, &AutosvaOptions::default()).unwrap();
        let file = svparse::parse(source).unwrap();
        let design = elaborate(
            &file,
            &ElabOptions {
                top: Some(module.to_string()),
                ..ElabOptions::default()
            },
        )
        .unwrap();
        let compiled = compile(&design, &ft).unwrap();
        let report = lint::run(
            &design,
            &compiled,
            &ft,
            Some(source),
            &LintOptions::default(),
        );
        assert!(
            report.is_empty(),
            "{label} should lint clean but reported:\n{}",
            report.render()
        );
    }
}
