//! E1 — Table III reproduction.
//!
//! For every module of the evaluation corpus, generate the formal testbench
//! from its annotations, run the bundled model checker, and check that the
//! qualitative outcome matches what the paper reports: proofs for the
//! healthy designs, counterexamples for the buggy ones, and proofs after the
//! published fixes.

use autosva_bench::{build_testbench, default_check_options, run_case, status_counts};
use autosva_designs::{all_cases, by_id, elaborated, PaperOutcome, Variant};
use autosva_formal::checker::{verify_elaborated, Proof, PropertyStatus};
use autosva_formal::pdr::PdrOptions;
use std::time::Duration;

#[test]
fn a1_ptw_proves_all_properties() {
    let run = run_case(&by_id("A1").unwrap(), Variant::Fixed);
    assert!(
        run.fully_proven(),
        "PTW should fully prove:\n{}",
        run.report.render()
    );
    let (proven, violated, covered, unknown) = status_counts(&run.report);
    assert!(proven >= 4);
    assert_eq!(violated, 0);
    assert!(covered >= 2, "both transactions must be coverable");
    assert_eq!(unknown, 0, "no property may remain undecided");
}

#[test]
fn a2_tlb_proves_all_properties() {
    let run = run_case(&by_id("A2").unwrap(), Variant::Fixed);
    assert!(
        run.fully_proven(),
        "TLB should fully prove:\n{}",
        run.report.render()
    );
    // Data integrity across the lookup pipeline is part of the proof set.
    assert!(run
        .report
        .results
        .iter()
        .any(|r| r.name.contains("data_integrity") && format!("{}", r.status) == "proven"));
}

#[test]
fn a3_mmu_bug_found_and_fix_proves() {
    let case = by_id("A3").unwrap();
    assert_eq!(case.paper_outcome, PaperOutcome::BugFoundThenProof);

    let buggy = run_case(&case, Variant::Buggy);
    assert!(
        buggy.report.violations() > 0,
        "the ghost-response bug must be found"
    );
    // The ghost response violates the "every response had a request" safety
    // check, exactly as described for Bug1 in the paper.
    assert!(
        buggy
            .violated_properties()
            .iter()
            .any(|p| p.contains("mmu_lsu_had_a_request")),
        "violations: {:?}",
        buggy.violated_properties()
    );
    // The paper reports a 5-cycle trace; our simplified MMU produces a
    // comparably short one.
    assert!(buggy.shortest_cex().unwrap() <= 8);

    let fixed = run_case(&case, Variant::Fixed);
    assert!(
        fixed.fully_proven(),
        "the fixed MMU should prove 100%:\n{}",
        fixed.report.render()
    );
}

#[test]
fn a4_lsu_hits_known_bug() {
    let case = by_id("A4").unwrap();
    let buggy = run_case(&case, Variant::Buggy);
    assert!(buggy.report.violations() > 0);
    // The ongoing load killed by a later exception never completes: the
    // eventual-response liveness property is the one that fires.
    assert!(
        buggy
            .violated_properties()
            .iter()
            .any(|p| p.contains("lsu_load_eventual_response")),
        "violations: {:?}",
        buggy.violated_properties()
    );
    // The fix (not flushing the in-flight load) restores the proof.
    let fixed = run_case(&case, Variant::Fixed);
    assert!(fixed.fully_proven(), "{}", fixed.report.render());
}

#[test]
fn a5_icache_hits_known_bug() {
    let case = by_id("A5").unwrap();
    let buggy = run_case(&case, Variant::Buggy);
    assert!(buggy.report.violations() > 0);
    assert!(
        buggy
            .violated_properties()
            .iter()
            .any(|p| p.contains("icache_fetch")),
        "violations: {:?}",
        buggy.violated_properties()
    );
    let fixed = run_case(&case, Variant::Fixed);
    assert!(fixed.fully_proven(), "{}", fixed.report.render());
}

#[test]
fn o1_noc_buffer_deadlock_found_and_fix_proves() {
    let case = by_id("O1").unwrap();
    let buggy = run_case(&case, Variant::Buggy);
    assert!(
        buggy.report.violations() > 0,
        "the overflow deadlock must be found"
    );
    assert!(
        buggy
            .violated_properties()
            .iter()
            .any(|p| p.contains("noc_txn_eventual_response")),
        "violations: {:?}",
        buggy.violated_properties()
    );
    let fixed = run_case(&case, Variant::Fixed);
    assert!(
        fixed.fully_proven(),
        "the not-full fix should restore the proof:\n{}",
        fixed.report.render()
    );
}

#[test]
fn o2_l15_partial_result_matches_paper() {
    // "NoC Buffer proof, other CEXs": the miss-to-fill liveness shows
    // counterexamples caused by under-constrained return-message types,
    // while the rest of the properties (including everything related to the
    // embedded, fixed NoC buffer) hold.
    let case = by_id("O2").unwrap();
    let run = run_case(&case, Variant::Fixed);
    assert!(run.report.violations() > 0);
    assert!(run
        .violated_properties()
        .iter()
        .all(|p| p.contains("l15_miss")));
    // The safety side of the miss transaction still proves.
    assert!(run
        .report
        .results
        .iter()
        .any(|r| r.name.contains("l15_miss_had_a_request") && format!("{}", r.status) == "proven"));
    let (_, _, covered, unknown) = status_counts(&run.report);
    assert!(covered >= 2);
    assert_eq!(unknown, 0);
}

#[test]
fn o2_scaled_l15_proof_closes_via_pdr_not_explicit() {
    // The L1.5 model carries a 20-bit free-running miss counter: with the
    // testbench monitors the compiled model is far past the explicit
    // engine's enumeration cliff (the seed recorded 38.8 s at just 20
    // latches, and every counter value is now reachable), so the
    // `had_a_request` proof must be closed by the PDR stage — in seconds,
    // with an inductive-invariant certificate.
    let case = by_id("O2").unwrap();
    let run = run_case(&case, Variant::Fixed);
    assert!(
        run.report.model_latches >= 24,
        "expected the scaled model to hold >= 24 latches, got {}",
        run.report.model_latches
    );
    let had = run
        .report
        .results
        .iter()
        .find(|r| r.name.contains("l15_miss_had_a_request"))
        .expect("monitor property exists");
    assert!(
        matches!(had.status.proof(), Some(Proof::Invariant { .. })),
        "proof must come from the PDR stage, got {:?}",
        had.status
    );
    assert!(
        had.runtime < Duration::from_secs(5),
        "PDR proof took {:?}, expected seconds",
        had.runtime
    );

    // Re-derive the invariant straight from the PDR engine and validate it
    // with an independent SAT check on a fresh encoding.
    let ft = build_testbench(&case);
    let design = elaborated(&case, Variant::Fixed);
    let compiled = autosva_formal::compile::compile(&design, &ft).expect("testbench compiles");
    let (index, bad) = compiled
        .model
        .bads
        .iter()
        .enumerate()
        .find(|(_, b)| b.name.contains("l15_miss_had_a_request"))
        .map(|(i, b)| (i, b.lit))
        .expect("monitor bad-state literal exists");
    match autosva_formal::pdr::check_pdr(&compiled.model, index, &PdrOptions::default()) {
        autosva_formal::pdr::PdrResult::Proven(invariant) => {
            assert!(
                invariant.certify(&compiled.model, bad),
                "the L1.5 invariant must pass independent certification"
            );
        }
        other => panic!("expected a PDR proof, got {other:?}"),
    }

    // With PDR disabled *and cone-of-influence slicing off*, the cascade
    // falls back to the explicit engine and the bounded engines on the full
    // 36-latch model — neither can close the proof, which is exactly the
    // cliff the PDR stage removes.
    let mut options = default_check_options(&case, Variant::Fixed);
    options.disable_pdr = true;
    options.parallel.slice = false;
    let report = verify_elaborated(&design, &ft, &options).expect("verification runs");
    let had = report
        .results
        .iter()
        .find(|r| r.name.contains("l15_miss_had_a_request"))
        .expect("monitor property exists");
    assert!(
        matches!(had.status, PropertyStatus::Unknown),
        "the explicit path must not close the scaled proof on the full model, got {:?}",
        had.status
    );

    // COI slicing removes the same cliff from the other side: the
    // free-running miss counter is outside the property's cone, so with
    // slicing on (the default) even the explicit engine closes the proof on
    // the slice.
    let mut options = default_check_options(&case, Variant::Fixed);
    options.disable_pdr = true;
    let report = verify_elaborated(&design, &ft, &options).expect("verification runs");
    let had = report
        .results
        .iter()
        .find(|r| r.name.contains("l15_miss_had_a_request"))
        .expect("monitor property exists");
    assert!(
        matches!(had.status.proof(), Some(Proof::Reachability)),
        "the sliced model must sit below the explicit cliff, got {:?}",
        had.status
    );
    assert!(
        had.slice_latches < report.model_latches,
        "slice ({} latches) must be strictly smaller than the model ({})",
        had.slice_latches,
        report.model_latches
    );
}

#[test]
fn l15_staging_buffer_combinational_instance_path_elaborates() {
    // Regression for the PR 1 workaround: the natural L1.5 staging-buffer
    // wiring gates the push strobe on the buffer's *ready output* in the
    // same cycle (`stage_push = ... && stage_rdy` feeding `push_val_i`).
    // That in-through-out path is acyclic per port (`push_rdy_o` depends
    // only on the buffer's own state), but an instance-atomic elaborator
    // reports a false combinational cycle — PR 1 registered the push path to
    // dodge it.  The workaround is now gone: pin both the wiring and the
    // fact that it elaborates.
    let case = by_id("O2").unwrap();
    assert!(
        case.source.contains("&& stage_rdy"),
        "l15.sv no longer wires the push strobe through the buffer's ready output"
    );
    let design = elaborated(&case, Variant::Fixed);
    assert!(design.signal("u_noc_stage.vld_q").is_some());

    // The same shape in isolation: a parent whose instance input depends
    // combinationally on another output of that same instance.
    let src = "module buf2 (input logic clk_i, input logic rst_ni,\n\
                 input logic push_i, output logic rdy_o, output logic out_o);\n\
                 logic full_q;\n\
                 always_ff @(posedge clk_i or negedge rst_ni) begin\n\
                   if (!rst_ni) full_q <= 1'b0;\n\
                   else if (push_i && rdy_o) full_q <= 1'b1;\n\
                   else full_q <= 1'b0;\n\
                 end\n\
                 assign rdy_o = !full_q;\n\
                 assign out_o = full_q;\n\
               endmodule\n\
               module top (input logic clk_i, input logic rst_ni,\n\
                 input logic req_i, output logic busy_o);\n\
                 logic rdy;\n\
                 wire push = req_i && rdy;\n\
                 buf2 u_b (.clk_i(clk_i), .rst_ni(rst_ni), .push_i(push),\n\
                           .rdy_o(rdy), .out_o(busy_o));\n\
               endmodule";
    let file = svparse::parse(src).expect("parse");
    let design = autosva_formal::elab::elaborate(
        &file,
        &autosva_formal::elab::ElabOptions {
            top: Some("top".to_string()),
            ..Default::default()
        },
    )
    .expect("the acyclic-per-port instance path must elaborate");
    assert!(design.signal("u_b.full_q").is_some());

    // Table III verdicts for O2 are unchanged by the rewiring: the safety
    // side proves, the under-constrained liveness side still shows CEXs.
    let run = run_case(&case, Variant::Fixed);
    assert!(run.report.violations() > 0);
    assert!(run
        .report
        .results
        .iter()
        .any(|r| r.name.contains("l15_miss_had_a_request") && format!("{}", r.status) == "proven"));
    let (_, _, covered, unknown) = status_counts(&run.report);
    assert!(covered >= 2);
    assert_eq!(unknown, 0);
}

#[test]
fn coi_slices_are_strictly_smaller_for_ptw_and_l15() {
    // The orchestrator checks every property on its cone-of-influence
    // slice.  For the PTW (two independent transactions) and the scaled
    // L1.5 (20-bit statistics counter no property observes) every checked
    // property's cone must be strictly smaller than the compiled model.
    for id in ["A1", "O2"] {
        let run = run_case(&by_id(id).unwrap(), Variant::Fixed);
        let checked: Vec<_> = run
            .report
            .results
            .iter()
            .filter(|r| !matches!(r.status, PropertyStatus::NotChecked(_)))
            .collect();
        assert!(!checked.is_empty(), "{id}: no checked properties");
        for r in &checked {
            assert!(
                r.slice_latches <= run.report.model_latches,
                "{id}/{}: slice ({} latches) larger than the model ({})",
                r.name,
                r.slice_latches,
                run.report.model_latches
            );
        }
        // A cone can legitimately span the whole design (the PTW
        // data-integrity check reads every latch), but for these two
        // multi-transaction / counter-carrying designs the majority of
        // properties must observe strictly less than the full model.
        let smaller = checked
            .iter()
            .filter(|r| r.slice_latches < run.report.model_latches)
            .count();
        assert!(
            smaller * 2 > checked.len(),
            "{id}: only {smaller}/{} properties have strictly smaller cones",
            checked.len()
        );
        // Slice sizes are part of the rendered report.
        assert!(run.report.render().contains("cone"), "{id}: no cone sizes");
    }

    // The L1.5 slices must specifically exclude the 20-bit miss counter.
    let o2 = run_case(&by_id("O2").unwrap(), Variant::Fixed);
    let max_slice = o2
        .report
        .results
        .iter()
        .map(|r| r.slice_latches)
        .max()
        .unwrap();
    assert!(
        max_slice + 20 <= o2.report.model_latches,
        "largest O2 cone ({max_slice} latches) should exclude the 20 counter latches (model: {})",
        o2.report.model_latches
    );
}

#[test]
fn whole_corpus_summary_matches_paper_shape() {
    // Across the corpus: every "fixed" design proves, every buggy variant
    // yields at least one counterexample, and no property is left undecided.
    for case in all_cases() {
        let fixed = run_case(&case, Variant::Fixed);
        let (_, _, _, unknown) = status_counts(&fixed.report);
        assert_eq!(unknown, 0, "{}: undecided properties", case.id);
        if case.proves_when_fixed() {
            assert!(
                fixed.fully_proven(),
                "{}: expected full proof, got\n{}",
                case.id,
                fixed.report.render()
            );
        }
        if case.has_bug_parameter {
            let buggy = run_case(&case, Variant::Buggy);
            assert!(
                buggy.report.violations() > 0,
                "{}: expected the bug to be found",
                case.id
            );
        }
    }
}
