//! Proof-cache corruption fuzzing (fault-containment satellite).
//!
//! The on-disk spill file is advisory: any corruption — bit flips,
//! truncation, garbage bytes — must never panic the loader and must never
//! change a verdict.  [`ProofCache::open`] keeps the clean prefix of the
//! file and drops everything from the first damaged line on; every
//! surviving entry is still re-validated on lookup.  So a run against a
//! corrupted cache renders byte-identically to a cache-less run.

use autosva::{generate_ft, AutosvaOptions};
use autosva_formal::checker::{verify, CheckOptions};
use autosva_formal::portfolio::ProofCache;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

const ECHO: &str = r#"
/*AUTOSVA
cache_txn: req -in> res
req_val = req_val
req_ack = req_ack
[1:0] req_transid = req_id
res_val = res_val
[1:0] res_transid = res_id
*/
module cache_echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  input  logic [1:0] req_id,
  output logic res_val,
  output logic [1:0] res_id
);
  logic busy_q;
  logic [1:0] id_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      id_q <= 2'b0;
    end else begin
      if (req_val && req_ack) begin
        busy_q <= 1'b1;
        id_q <= req_id;
      end else if (busy_q) begin
        busy_q <= 1'b0;
      end
    end
  end
  assign req_ack = !busy_q;
  assign res_val = busy_q;
  assign res_id = id_q;
endmodule
"#;

fn run_render(cache_dir: Option<PathBuf>) -> String {
    let ft = generate_ft(ECHO, &AutosvaOptions::default()).unwrap();
    let mut options = CheckOptions::default();
    options.cache.dir = cache_dir;
    verify(ECHO, &ft, &options).unwrap().render()
}

/// The cache-less report and a pristine spill file, computed once.
fn fixtures() -> &'static (String, Vec<u8>) {
    static FIXTURES: OnceLock<(String, Vec<u8>)> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let baseline = run_render(None);
        let seed_dir =
            std::env::temp_dir().join(format!("autosva-cache-corrupt-seed-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&seed_dir);
        let cached = run_render(Some(seed_dir.clone()));
        assert_eq!(
            baseline, cached,
            "cache-backed run diverged before any corruption"
        );
        let bytes = std::fs::read(seed_dir.join("proofs.cache")).expect("spill file written");
        assert!(
            !bytes.is_empty(),
            "spill file is empty — nothing to corrupt"
        );
        let _ = std::fs::remove_dir_all(&seed_dir);
        (baseline, bytes)
    })
}

proptest! {
    #[test]
    fn corrupted_spill_files_never_panic_or_change_verdicts(
        kind in 0usize..3,
        pos in 0usize..65_536,
        mask in 1u8..255,
    ) {
        let (baseline, pristine) = fixtures();
        let mut bytes = pristine.clone();
        let pos = pos % bytes.len();
        match kind {
            // One flipped byte.
            0 => bytes[pos] ^= mask,
            // Truncation mid-file (a crashed writer's torn tail).
            1 => bytes.truncate(pos),
            // A run of three clobbered bytes (may break UTF-8 entirely,
            // which must degrade to "no cache", not a panic).
            _ => {
                for i in 0..3 {
                    let p = (pos + i) % bytes.len();
                    bytes[p] ^= mask;
                }
            }
        }

        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "autosva-cache-corrupt-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("proofs.cache"), &bytes).unwrap();

        // Opening the corrupted file must not panic, and the clean prefix
        // (whatever it is) must load as ordinary advisory entries.
        let _cache = ProofCache::open(&dir);

        // A full run against the corrupted cache re-validates every hit,
        // re-proves every reject, and renders exactly the cache-less report.
        let render = run_render(Some(dir.clone()));
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(&render, baseline);
    }
}
