//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction: expression print/parse round trips,
//! word-level arithmetic circuits against integer semantics, and annotation
//! field splitting.

use autosva::annotation::split_field;
use autosva_formal::aig::Aig;
use autosva_formal::words;
use proptest::prelude::*;
use svparse::ast::{BinaryOp, Expr};
use svparse::pretty::print_expr;

/// Strategy producing small random expressions over a fixed signal alphabet.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        prop_oneof![
            Just("req_val"),
            Just("req_ack"),
            Just("data_q"),
            Just("cnt")
        ]
        .prop_map(Expr::ident),
        (0u128..256).prop_map(Expr::number),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(
                BinaryOp::LogicalAnd,
                a,
                b
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(BinaryOp::BitOr, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(BinaryOp::Add, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(BinaryOp::Eq, a, b)),
            inner
                .clone()
                .prop_map(|a| Expr::unary(svparse::ast::UnaryOp::LogicalNot, a)),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::Ternary {
                cond: Box::new(c),
                then_expr: Box::new(t),
                else_expr: Box::new(e),
            }),
        ]
    })
}

proptest! {
    /// Printing an expression and re-parsing it yields a tree that prints
    /// identically (print is a normal form).
    #[test]
    fn expression_print_parse_roundtrip(expr in arb_expr()) {
        let printed = print_expr(&expr);
        let reparsed = svparse::parse_expr(&printed).expect("printed expression parses");
        prop_assert_eq!(print_expr(&reparsed), printed);
    }

    /// The ripple-carry adder/subtractor circuits agree with wrapping integer
    /// arithmetic for every constant input.
    #[test]
    fn word_arithmetic_matches_integers(a in 0u128..4096, b in 0u128..4096) {
        let mut aig = Aig::new();
        let wa = words::constant(a, 12);
        let wb = words::constant(b, 12);
        let sum = words::add(&mut aig, &wa, &wb);
        let diff = words::sub(&mut aig, &wa, &wb);
        prop_assert_eq!(words::as_constant(&sum), Some((a + b) & 0xFFF));
        prop_assert_eq!(words::as_constant(&diff), Some(a.wrapping_sub(b) & 0xFFF));
        let lt = words::ult(&mut aig, &wa, &wb);
        prop_assert_eq!(lt == autosva_formal::aig::Lit::TRUE, a < b);
    }

    /// Splitting `<interface>_<suffix>` field names recovers the interface
    /// prefix for every legal suffix.
    #[test]
    fn field_splitting_recovers_interface(prefix in "[a-z][a-z0-9_]{0,12}[a-z0-9]") {
        for suffix in ["val", "ack", "transid", "transid_unique", "active", "stable", "data"] {
            let field = format!("{prefix}_{suffix}");
            if let Some((iface, parsed_suffix)) = split_field(&field) {
                // The split must reconstruct the original field name.
                prop_assert_eq!(format!("{iface}_{}", parsed_suffix.as_str()), field.clone());
            } else {
                prop_assert!(false, "field `{}` did not split", field);
            }
        }
    }

    /// The generated testbench is total for any combination of optional
    /// attributes on a simple request/response pair: generation never panics
    /// and always yields at least a cover and one liveness-or-fairness
    /// property.
    #[test]
    fn generation_is_total_over_attribute_subsets(
        with_ack in any::<bool>(),
        with_transid in any::<bool>(),
        with_data in any::<bool>(),
        outgoing in any::<bool>(),
    ) {
        let mut annotations = String::from("/*AUTOSVA\n");
        let relation = if outgoing { "-out>" } else { "-in>" };
        annotations.push_str(&format!("txn: req {relation} res\n"));
        annotations.push_str("req_val = req_v\n");
        if with_ack {
            annotations.push_str("req_ack = req_a\n");
        }
        if with_transid {
            annotations.push_str("[1:0] req_transid = req_id\n[1:0] res_transid = res_id\n");
        }
        if with_data {
            annotations.push_str("[3:0] req_data = req_d\n[3:0] res_data = res_d\n");
        }
        annotations.push_str("res_val = res_v\n*/\n");
        let rtl = format!(
            "{annotations}module m (\n  input logic clk_i,\n  input logic rst_ni,\n  input logic req_v,\n  output logic req_a,\n  input logic [1:0] req_id,\n  input logic [3:0] req_d,\n  output logic res_v,\n  output logic [1:0] res_id,\n  output logic [3:0] res_d\n);\nendmodule\n"
        );
        let ft = autosva::generate_ft(&rtl, &autosva::AutosvaOptions::default())
            .expect("generation succeeds");
        let stats = ft.stats();
        prop_assert!(stats.covers >= 1);
        prop_assert!(stats.properties >= 3);
        if with_data {
            prop_assert!(ft.all_properties().iter().any(|p| p.name.contains("data_integrity")));
        }
    }
}
