//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction: expression print/parse round trips,
//! word-level arithmetic circuits against integer semantics, annotation
//! field splitting, and packed-struct layout round trips through the
//! elaborator.

use autosva::annotation::split_field;
use autosva_formal::aig::Aig;
use autosva_formal::bmc::{check_safety, BmcOptions, SafetyResult};
use autosva_formal::elab::{elaborate, ElabOptions};
use autosva_formal::model::{BadProperty, Model};
use autosva_formal::sim::Simulator;
use autosva_formal::words;
use proptest::prelude::*;
use std::collections::HashMap;
use std::fmt::Write as _;
use svparse::ast::{BinaryOp, Expr};
use svparse::pretty::print_expr;

/// Strategy producing small random expressions over a fixed signal alphabet.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        prop_oneof![
            Just("req_val"),
            Just("req_ack"),
            Just("data_q"),
            Just("cnt")
        ]
        .prop_map(Expr::ident),
        (0u128..256).prop_map(Expr::number),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(
                BinaryOp::LogicalAnd,
                a,
                b
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(BinaryOp::BitOr, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(BinaryOp::Add, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(BinaryOp::Eq, a, b)),
            inner
                .clone()
                .prop_map(|a| Expr::unary(svparse::ast::UnaryOp::LogicalNot, a)),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::Ternary {
                cond: Box::new(c),
                then_expr: Box::new(t),
                else_expr: Box::new(e),
            }),
        ]
    })
}

proptest! {
    /// Printing an expression and re-parsing it yields a tree that prints
    /// identically (print is a normal form).
    #[test]
    fn expression_print_parse_roundtrip(expr in arb_expr()) {
        let printed = print_expr(&expr);
        let reparsed = svparse::parse_expr(&printed).expect("printed expression parses");
        prop_assert_eq!(print_expr(&reparsed), printed);
    }

    /// The ripple-carry adder/subtractor circuits agree with wrapping integer
    /// arithmetic for every constant input.
    #[test]
    fn word_arithmetic_matches_integers(a in 0u128..4096, b in 0u128..4096) {
        let mut aig = Aig::new();
        let wa = words::constant(a, 12);
        let wb = words::constant(b, 12);
        let sum = words::add(&mut aig, &wa, &wb);
        let diff = words::sub(&mut aig, &wa, &wb);
        prop_assert_eq!(words::as_constant(&sum), Some((a + b) & 0xFFF));
        prop_assert_eq!(words::as_constant(&diff), Some(a.wrapping_sub(b) & 0xFFF));
        let lt = words::ult(&mut aig, &wa, &wb);
        prop_assert_eq!(lt == autosva_formal::aig::Lit::TRUE, a < b);
    }

    /// Splitting `<interface>_<suffix>` field names recovers the interface
    /// prefix for every legal suffix.
    #[test]
    fn field_splitting_recovers_interface(prefix in "[a-z][a-z0-9_]{0,12}[a-z0-9]") {
        for suffix in ["val", "ack", "transid", "transid_unique", "active", "stable", "data"] {
            let field = format!("{prefix}_{suffix}");
            if let Some((iface, parsed_suffix)) = split_field(&field) {
                // The split must reconstruct the original field name.
                prop_assert_eq!(format!("{iface}_{}", parsed_suffix.as_str()), field.clone());
            } else {
                prop_assert!(false, "field `{}` did not split", field);
            }
        }
    }

    /// Random packed-struct layouts round-trip through elaboration: member
    /// *reads* are exactly the declared bit slices of the flat signal
    /// (structural equality of AIG literals), member *writes* reassemble the
    /// whole word (proven equal to a flat mirror register by k-induction and
    /// checked against direct bit-slice semantics on random stimulus).
    #[test]
    fn packed_struct_layouts_roundtrip_through_elaboration(
        seed in 1u64..u64::MAX,
        num_fields in 1usize..5,
    ) {
        // Derive the field widths (1..=5 bits each) from the seed.
        let mut state = seed | 1;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let widths: Vec<usize> = (0..num_fields).map(|_| (rand() % 5 + 1) as usize).collect();
        let total: usize = widths.iter().sum();
        // Packed structs place the first-declared field at the MSB end.
        let offsets: Vec<usize> = {
            let mut off = total;
            widths
                .iter()
                .map(|w| {
                    off -= w;
                    off
                })
                .collect()
        };

        // Generate the design: a struct register written field-by-field from
        // slices of a flat input, a flat mirror register, and member-read
        // outputs.
        let mut src = String::from("package p_pkg;\n  typedef struct packed {\n");
        for (i, w) in widths.iter().enumerate() {
            let _ = writeln!(src, "    logic [{}:0] f{i};", w - 1);
        }
        src.push_str("  } s_t;\nendpackage\n");
        src.push_str("module s_mod (\n  input logic clk_i,\n  input logic rst_ni,\n");
        let _ = writeln!(src, "  input logic [{}:0] d_i,", total - 1);
        let _ = writeln!(src, "  output logic [{}:0] flat_o,", total - 1);
        let _ = writeln!(src, "  output logic match_o,");
        for (i, w) in widths.iter().enumerate() {
            let _ = writeln!(src, "  output logic [{}:0] f{i}_o,", w - 1);
        }
        src.push_str("  output logic dummy_o\n);\n");
        src.push_str("  p_pkg::s_t s_q;\n");
        let _ = writeln!(src, "  logic [{}:0] mirror_q;", total - 1);
        src.push_str(
            "  always_ff @(posedge clk_i or negedge rst_ni) begin\n    if (!rst_ni) begin\n      s_q <= '0;\n      mirror_q <= '0;\n    end else begin\n",
        );
        for (i, w) in widths.iter().enumerate() {
            let _ = writeln!(
                src,
                "      s_q.f{i} <= d_i[{}:{}];",
                offsets[i] + w - 1,
                offsets[i]
            );
        }
        src.push_str("      mirror_q <= d_i;\n    end\n  end\n");
        src.push_str("  assign flat_o = s_q;\n");
        src.push_str("  assign match_o = s_q == mirror_q;\n");
        for i in 0..num_fields {
            let _ = writeln!(src, "  assign f{i}_o = s_q.f{i};");
        }
        src.push_str("  assign dummy_o = 1'b0;\nendmodule\n");

        let file = svparse::parse(&src).expect("generated struct design parses");
        let design = elaborate(&file, &ElabOptions::default())
            .unwrap_or_else(|e| panic!("elaboration failed: {e}\n{src}"));

        // Member reads are exactly the declared slices of the flat signal.
        let s_q = design.signal("s_q").expect("struct register").to_vec();
        prop_assert_eq!(s_q.len(), total);
        for (i, w) in widths.iter().enumerate() {
            let field = design.signal(&format!("f{i}_o")).expect("member output");
            prop_assert_eq!(
                field,
                &s_q[offsets[i]..offsets[i] + w],
                "field f{} (offset {}, width {}) is not the declared slice",
                i,
                offsets[i],
                w
            );
        }

        // Member writes reassemble the word: the struct register equals the
        // flat mirror on every execution (k-induction proof).
        let match_bit = design.signal("match_o").expect("match output")[0];
        let mut model = Model::new(design.aig.clone());
        model.bads.push(BadProperty {
            name: "struct_write_mismatch".into(),
            lit: match_bit.invert(),
        });
        match check_safety(&model, 0, &BmcOptions { max_depth: 10, max_induction: 10 }) {
            SafetyResult::Proven { .. } => {}
            other => prop_assert!(
                false,
                "struct/mirror equality not proven: {other:?} (widths {widths:?})"
            ),
        }

        // And against direct bit-slice semantics on random stimulus: after a
        // clock edge the struct register holds exactly the driven word.
        let model = Model::new(design.aig.clone());
        let mut sim = Simulator::new(&model);
        for _ in 0..16 {
            let value = rand() as u128 & ((1u128 << total) - 1);
            let mut inputs: HashMap<String, bool> = HashMap::new();
            if total == 1 {
                inputs.insert("d_i".to_string(), value & 1 == 1);
            } else {
                for k in 0..total {
                    inputs.insert(format!("d_i[{k}]"), (value >> k) & 1 == 1);
                }
            }
            sim.step_named(&inputs);
            for (i, w) in widths.iter().enumerate() {
                let expect = (value >> offsets[i]) & ((1u128 << w) - 1);
                let got: u128 = s_q[offsets[i]..offsets[i] + w]
                    .iter()
                    .enumerate()
                    .map(|(k, &lit)| if sim.value(lit) { 1u128 << k } else { 0 })
                    .sum();
                prop_assert_eq!(
                    got, expect,
                    "field f{} disagrees with bit-slice semantics (widths {:?})",
                    i, &widths
                );
            }
        }
    }

    /// The generated testbench is total for any combination of optional
    /// attributes on a simple request/response pair: generation never panics
    /// and always yields at least a cover and one liveness-or-fairness
    /// property.
    #[test]
    fn generation_is_total_over_attribute_subsets(
        with_ack in any::<bool>(),
        with_transid in any::<bool>(),
        with_data in any::<bool>(),
        outgoing in any::<bool>(),
    ) {
        let mut annotations = String::from("/*AUTOSVA\n");
        let relation = if outgoing { "-out>" } else { "-in>" };
        annotations.push_str(&format!("txn: req {relation} res\n"));
        annotations.push_str("req_val = req_v\n");
        if with_ack {
            annotations.push_str("req_ack = req_a\n");
        }
        if with_transid {
            annotations.push_str("[1:0] req_transid = req_id\n[1:0] res_transid = res_id\n");
        }
        if with_data {
            annotations.push_str("[3:0] req_data = req_d\n[3:0] res_data = res_d\n");
        }
        annotations.push_str("res_val = res_v\n*/\n");
        let rtl = format!(
            "{annotations}module m (\n  input logic clk_i,\n  input logic rst_ni,\n  input logic req_v,\n  output logic req_a,\n  input logic [1:0] req_id,\n  input logic [3:0] req_d,\n  output logic res_v,\n  output logic [1:0] res_id,\n  output logic [3:0] res_d\n);\nendmodule\n"
        );
        let ft = autosva::generate_ft(&rtl, &autosva::AutosvaOptions::default())
            .expect("generation succeeds");
        let stats = ft.stats();
        prop_assert!(stats.covers >= 1);
        prop_assert!(stats.properties >= 3);
        if with_data {
            prop_assert!(ft.all_properties().iter().any(|p| p.name.contains("data_integrity")));
        }
    }
}
