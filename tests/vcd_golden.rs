//! Golden-waveform test for the VCD writer.
//!
//! Verifies a small buggy design end-to-end with waveform output enabled,
//! pins the produced counterexample VCD byte-for-byte, and structurally
//! validates the header (timescale, scope nesting, id-code uniqueness)
//! through the writer's own re-parser.  Any change to the writer's header
//! strings, id allocation, or value-change layout shows up here as a byte
//! diff rather than as silently drifting waveforms.

use autosva::{generate_ft, AutosvaOptions};
use autosva_formal::checker::{verify, CheckOptions};
use autosva_formal::vcd;
use std::path::PathBuf;

/// A design that produces a response without ever receiving a request: the
/// `had_a_request` safety monitor has a short, deterministic counterexample.
const ECHO_BAD: &str = r#"
/*AUTOSVA
t: req -in> res
req_val = req_val
req_ack = req_ack
res_val = res_val
*/
module echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  output logic res_val
);
  assign req_ack = 1'b1;
  assign res_val = !req_val;
endmodule
"#;

/// The pinned waveform of the `as__t_had_a_request` counterexample: the
/// ghost response fires in the very first cycle, so the trace is one cycle
/// — initial values at #0, the clock falling at #5, and the closing
/// timestamp at #10.  `t_sampled` is the testbench's transaction tracker,
/// reassembled from its four bit-signals into one vector.
const GOLDEN: &str = r##"$date
    (fixed for reproducibility)
$end
$version
    autosva-formal VCD writer
$end
$comment
    property: as__t_had_a_request
$end
$timescale 1ns $end
$scope module echo $end
    $var wire 1 ! clk $end
    $var wire 1 " req_val $end
    $var wire 4 # t_sampled [3:0] $end
$upscope $end
$enddefinitions $end
$dumpvars
1!
0"
b0000 #
$end
#5
0!
#10
"##;

fn vcd_dir(label: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("vcd_golden_{label}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn counterexample_waveform_is_pinned_byte_for_byte() {
    let dir = vcd_dir("pin");
    let ft = generate_ft(ECHO_BAD, &AutosvaOptions::default()).expect("testbench generates");
    let options = CheckOptions {
        vcd: vcd::VcdOptions {
            dir: Some(dir.clone()),
        },
        ..CheckOptions::default()
    };
    let report = verify(ECHO_BAD, &ft, &options).expect("verification runs");
    assert!(report.violations() > 0, "{}", report.render());

    let path = dir.join(vcd::file_name("echo", "as__t_had_a_request"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("expected waveform at {}: {e}", path.display()));
    assert_eq!(
        text, GOLDEN,
        "the counterexample waveform drifted from the pinned golden copy"
    );
}

#[test]
fn every_dumped_waveform_is_structurally_valid() {
    let dir = vcd_dir("validate");
    let ft = generate_ft(ECHO_BAD, &AutosvaOptions::default()).expect("testbench generates");
    let options = CheckOptions {
        vcd: vcd::VcdOptions {
            dir: Some(dir.clone()),
        },
        ..CheckOptions::default()
    };
    let report = verify(ECHO_BAD, &ft, &options).expect("verification runs");

    // One VCD per trace-carrying result (counterexamples and cover
    // witnesses), no strays, every one standards-conformant.
    let with_traces = report
        .results
        .iter()
        .filter(|r| r.status.trace().is_some())
        .count();
    assert!(with_traces > 0, "{}", report.render());
    let mut seen = 0usize;
    for entry in std::fs::read_dir(&dir).expect("waveform directory exists") {
        let path = entry.expect("directory entry").path();
        assert_eq!(
            path.extension().and_then(|e| e.to_str()),
            Some("vcd"),
            "stray non-VCD file {}",
            path.display()
        );
        let text = std::fs::read_to_string(&path).expect("waveform reads");
        let summary = vcd::validate(&text)
            .unwrap_or_else(|e| panic!("{} fails validation: {e}", path.display()));
        assert_eq!(summary.timescale, "1ns");
        assert!(summary.scopes >= 1, "no scope in {}", path.display());
        assert!(summary.vars >= 2, "no signals in {}", path.display());
        assert!(
            summary.timestamps >= 2,
            "no clock activity in {}",
            path.display()
        );
        // Header shape beyond what the token-level validator checks: the
        // required sections appear in declaration order.
        let date = text.find("$date").expect("missing $date");
        let timescale = text.find("$timescale").expect("missing $timescale");
        let enddefs = text
            .find("$enddefinitions")
            .expect("missing $enddefinitions");
        let dump = text.find("$dumpvars").expect("missing $dumpvars");
        assert!(date < timescale && timescale < enddefs && enddefs < dump);
        seen += 1;
    }
    assert_eq!(
        seen, with_traces,
        "expected one waveform per trace-carrying property"
    );
}
