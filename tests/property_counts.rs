//! E2/E3 — aggregate effort metrics.
//!
//! The paper reports that AutoSVA generated 236 unique properties from 110
//! lines of annotations across the seven modules, and that a testbench is
//! generated in under a second.  Our corpus is a scaled-down model of those
//! modules, so the absolute numbers are smaller, but the shape holds: every
//! module yields an order of magnitude more properties than annotation
//! lines, all property names are unique, and generation is far below the
//! one-second bound.

use autosva_bench::build_testbench;
use autosva_designs::all_cases;
use std::collections::HashSet;
use std::time::{Duration, Instant};

#[test]
fn properties_dwarf_annotation_effort() {
    let mut total_props = 0usize;
    let mut total_loc = 0usize;
    for case in all_cases() {
        let ft = build_testbench(&case);
        let stats = ft.stats();
        assert!(
            stats.properties > stats.annotation_loc,
            "{}: {} properties from {} LoC",
            case.id,
            stats.properties,
            stats.annotation_loc
        );
        total_props += stats.properties;
        total_loc += stats.annotation_loc;
    }
    // Scaled-down analogue of "236 properties from 110 LoC".
    assert!(total_props >= 70, "total properties = {total_props}");
    assert!(total_loc <= 110, "total annotation LoC = {total_loc}");
    assert!(
        total_props as f64 >= 1.2 * total_loc as f64,
        "properties ({total_props}) should clearly exceed annotation LoC ({total_loc})"
    );
}

#[test]
fn property_names_are_unique_within_each_testbench() {
    for case in all_cases() {
        let ft = build_testbench(&case);
        let names: Vec<String> = ft.all_properties().iter().map(|p| p.full_name()).collect();
        let unique: HashSet<&String> = names.iter().collect();
        assert_eq!(
            unique.len(),
            names.len(),
            "{}: duplicate property names",
            case.id
        );
    }
}

#[test]
fn every_testbench_generates_in_under_a_second() {
    for case in all_cases() {
        let start = Instant::now();
        let _ = build_testbench(&case);
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(1),
            "{}: generation took {elapsed:?}",
            case.id
        );
    }
}

#[test]
fn polarity_split_matches_transaction_directions() {
    // Incoming transactions produce mostly assertions, outgoing transactions
    // produce assumptions; every testbench has at least one cover point per
    // transaction.
    for case in all_cases() {
        let ft = build_testbench(&case);
        let stats = ft.stats();
        assert!(stats.assertions > 0, "{}", case.id);
        assert!(stats.covers >= stats.transactions, "{}", case.id);
    }
}
