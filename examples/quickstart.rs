//! Quickstart: annotate a module, generate its formal testbench, and verify
//! it with the bundled model checker.
//!
//! Run with `cargo run --release --example quickstart`.

use autosva::{generate_ft, AutosvaOptions};
use autosva_formal::checker::{verify, CheckOptions};

/// A tiny single-outstanding-request adapter.  The AutoSVA annotation block
/// in the interface section declares one incoming transaction: every request
/// accepted on `req` must eventually produce a response on `res` carrying the
/// same 2-bit transaction id.
const RTL: &str = r#"
/*AUTOSVA
adapter_txn: req -in> res
req_val = req_val
req_ack = req_ack
[1:0] req_transid = req_id
res_val = res_val
[1:0] res_transid = res_id
*/
module adapter (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  input  logic [1:0] req_id,
  output logic res_val,
  output logic [1:0] res_id
);
  logic busy_q;
  logic [1:0] id_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      id_q   <= 2'b0;
    end else begin
      if (req_val && req_ack) begin
        busy_q <= 1'b1;
        id_q   <= req_id;
      end else if (busy_q) begin
        busy_q <= 1'b0;
      end
    end
  end
  assign req_ack = !busy_q;
  assign res_val = busy_q;
  assign res_id  = id_q;
endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1-4 of the AutoSVA pipeline: parse annotations, build the
    // transaction model, generate auxiliary signals and properties.
    let testbench = generate_ft(RTL, &AutosvaOptions::default())?;

    let stats = testbench.stats();
    println!("DUT: {}", testbench.dut_name);
    println!(
        "generated {} properties ({} assertions, {} assumptions, {} covers) from {} annotation lines",
        stats.properties, stats.assertions, stats.assumptions, stats.covers, stats.annotation_loc
    );
    println!(
        "\n--- generated property file ({}_prop.sv) ---",
        testbench.dut_name
    );
    println!("{}", testbench.property_file);
    println!("--- generated bind file ---");
    println!("{}", testbench.bind_file);

    // Step 5: run the verification.  External tools (JasperGold, SymbiYosys)
    // can consume the files above; here the bundled SAT/explicit-state engine
    // checks the same properties directly.
    let report = verify(RTL, &testbench, &CheckOptions::default())?;
    println!("--- verification report ---");
    println!("{report}");
    Ok(())
}
