//! The Mem-Engine / NoC-buffer story of the paper (Bug2): a formal testbench
//! generated from just three annotation lines finds a deadlock caused by
//! reusing the L1.5 NoC buffer without its implicit "sender never overflows
//! me" assumption, and proves the fix (adding the not-full condition to the
//! acknowledge).
//!
//! Run with `cargo run --release --example openpiton_noc`.

use autosva_bench::{build_testbench, default_check_options};
use autosva_designs::{by_id, Variant};
use autosva_formal::checker::verify;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let case = by_id("O1").expect("NoC buffer case");
    let testbench = build_testbench(&case);
    println!(
        "generated {} properties from {} annotation lines for `{}`",
        testbench.stats().properties,
        testbench.stats().annotation_loc,
        testbench.dut_name
    );

    // The buggy buffer (as reused by the Mem Engine): the liveness assertion
    // finds the lost transaction.
    println!("\n=== verifying the buffer as reused by the Mem Engine (buggy) ===");
    let buggy = verify(
        case.source,
        &testbench,
        &default_check_options(&case, Variant::Buggy),
    )?;
    println!("{buggy}");
    if let Some(violation) = buggy.first_violation() {
        if let Some(trace) = violation.status.trace() {
            println!(
                "deadlock counterexample for {}:\n{}",
                violation.name,
                trace.render(false)
            );
        }
    }

    // The fix: acknowledge only when not full.
    println!("=== verifying the fixed buffer ===");
    let fixed = verify(
        case.source,
        &testbench,
        &default_check_options(&case, Variant::Fixed),
    )?;
    println!("{fixed}");
    println!(
        "fix confidence: proof rate went from {:.0}% to {:.0}%",
        buggy.proof_rate() * 100.0,
        fixed.proof_rate() * 100.0
    );
    Ok(())
}
