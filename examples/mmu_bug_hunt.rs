//! The MMU bug-hunting session of the paper, end to end: generate the
//! testbench, hit the (unrealistic) DTLB-over-ITLB starvation counterexample,
//! add a designer assumption to remove it, discover the ghost-response bug
//! (Bug1), apply the fix and watch the proof rate reach 100%.
//!
//! Run with `cargo run --release --example mmu_bug_hunt`.

use autosva::sva::{Directive, PropertyBody, SvaProperty};
use autosva::{generate_ft, AutosvaOptions, PropertyClass};
use autosva_bench::default_check_options;
use autosva_designs::{by_id, Variant, MMU_NO_STARVATION_ASSUMPTION};
use autosva_formal::checker::verify;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let case = by_id("A3").expect("MMU case");

    // Step 1: generate the testbench straight from the annotations.
    let mut testbench = generate_ft(case.source, &AutosvaOptions::default())?;
    println!(
        "MMU testbench: {} properties from {} annotation lines",
        testbench.stats().properties,
        testbench.stats().annotation_loc
    );

    // Step 2: the first counterexample is the ITLB starvation trace — real
    // behaviour of the RTL, but impossible in the full system.
    let report = verify(
        case.source,
        &testbench,
        &default_check_options(&case, Variant::Buggy),
    )?;
    let starvation = report
        .results
        .iter()
        .find(|r| r.name.contains("itlb_fill_hsk_or_drop"))
        .expect("itlb property");
    println!(
        "\nwithout assumptions, {} -> {}",
        starvation.name, starvation.status
    );

    // Step 3: add the designer assumption the paper describes.
    testbench.linked_properties.push(SvaProperty {
        name: "no_dtlb_while_itlb_pending".into(),
        directive: Directive::Assume,
        class: PropertyClass::Safety,
        body: PropertyBody::Invariant(svparse::parse_expr(MMU_NO_STARVATION_ASSUMPTION)?),
        xprop_only: false,
        transaction: "designer".into(),
    });

    // Step 4: with the assumption in place, the remaining counterexample is
    // the real bug: a ghost response for an already-answered misaligned
    // request.
    let buggy = verify(
        case.source,
        &testbench,
        &default_check_options(&case, Variant::Buggy),
    )?;
    println!("\n=== buggy MMU (ghost response) ===\n{buggy}");
    if let Some(v) = buggy.first_violation() {
        if let Some(trace) = v.status.trace() {
            println!(
                "ghost-response trace ({} cycles):\n{}",
                trace.len(),
                trace.render(false)
            );
        }
    }

    // Step 5: the fix masks the walker activation for misaligned requests.
    let fixed = verify(
        case.source,
        &testbench,
        &default_check_options(&case, Variant::Fixed),
    )?;
    println!("=== fixed MMU ===\n{fixed}");
    println!(
        "bug-fix confidence: {} violations before, {} after; proof rate {:.0}%",
        buggy.violations(),
        fixed.violations(),
        fixed.proof_rate() * 100.0
    );
    Ok(())
}
