//! Regenerates Figures 2 and 3 of the paper for the bundled LSU model: the
//! designer writes the annotation block of Fig. 3, and AutoSVA produces the
//! modeling code and SVA properties of Fig. 2.
//!
//! Run with `cargo run --release --example lsu_figure2`.

use autosva::{generate_ft, AutosvaOptions};
use autosva_designs::LSU_SV;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 3: the annotation block lives in the interface-declaration
    // section of the RTL file.
    let annotation_start = LSU_SV.find("/*AUTOSVA").expect("annotation block present");
    let annotation_end = LSU_SV[annotation_start..]
        .find("*/")
        .expect("annotation terminator");
    println!("=== Figure 3: the designer's annotations ===");
    println!(
        "{}*/",
        &LSU_SV[annotation_start..annotation_start + annotation_end]
    );

    // Figure 2: the generated modeling code and properties.
    let testbench = generate_ft(LSU_SV, &AutosvaOptions::default())?;
    println!("\n=== Figure 2: generated modeling code and properties ===");
    for line in testbench.property_file.lines() {
        let interesting = line.contains("lsu_load")
            || line.contains("symb_")
            || line.contains("always_ff")
            || line.contains("<=");
        if interesting {
            println!("{line}");
        }
    }

    println!("\n=== property inventory ===");
    for prop in testbench.all_properties() {
        println!(
            "  {:55} {:10} [{}]",
            prop.full_name(),
            prop.directive.keyword(),
            prop.class
        );
    }
    Ok(())
}
