//! E1 — regenerates Table III of the paper.
//!
//! For every module of the corpus the harness generates the formal testbench
//! from the annotations, verifies the buggy variant (when one exists) and the
//! fixed variant, and prints one row per module comparing the measured
//! outcome against what the paper reports.
//!
//! Run with `cargo bench -p autosva-bench --bench table3_outcomes`.

use autosva_bench::run_case;
use autosva_designs::{all_cases, Variant};
use std::time::Instant;

fn main() {
    println!("Table III — RTL modules tested with AutoSVA (reproduction)");
    println!("{:-<120}", "");
    println!(
        "{:<4} {:<28} {:<38} | measured outcome",
        "id", "module (A=Ariane, O=OpenPiton)", "paper result"
    );
    println!("{:-<120}", "");

    let start = Instant::now();
    for case in all_cases() {
        let fixed = run_case(&case, Variant::Fixed);
        let measured = if case.has_bug_parameter {
            let buggy = run_case(&case, Variant::Buggy);
            let cex = buggy
                .shortest_cex()
                .map(|c| format!("{c}-cycle CEX"))
                .unwrap_or_else(|| "no CEX".to_string());
            if fixed.fully_proven() {
                format!(
                    "bug found ({} violated, {cex}) -> fix proves 100% ({} props)",
                    buggy.report.violations(),
                    fixed.properties
                )
            } else {
                format!(
                    "bug found ({} violated, {cex}) -> fix at {:.0}%",
                    buggy.report.violations(),
                    fixed.report.proof_rate() * 100.0
                )
            }
        } else if fixed.fully_proven() {
            format!(
                "100% liveness/safety proof ({} properties)",
                fixed.properties
            )
        } else {
            format!(
                "{:.0}% proven, {} CEX",
                fixed.report.proof_rate() * 100.0,
                fixed.report.violations()
            )
        };
        println!(
            "{:<4} {:<28} {:<38} | {}",
            case.id, case.title, case.paper_result, measured
        );
    }
    println!("{:-<120}", "");
    println!("total wall-clock time: {:.1?}", start.elapsed());
}
