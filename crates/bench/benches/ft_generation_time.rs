//! E3 — testbench generation speed ("AutoSVA generates FTs in under a
//! second", Section III-C of the paper).
//!
//! Criterion measures the full annotation-to-files pipeline per module and
//! for the whole corpus.
//!
//! Run with `cargo bench -p autosva-bench --bench ft_generation_time`.

use autosva::{generate_ft, AutosvaOptions};
use autosva_designs::all_cases;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ft_generation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for case in all_cases() {
        group.bench_function(case.module, |b| {
            b.iter(|| {
                let ft = generate_ft(black_box(case.source), &AutosvaOptions::default())
                    .expect("generation succeeds");
                black_box(ft.stats().properties)
            })
        });
    }
    group.bench_function("whole_corpus", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for case in all_cases() {
                let ft = generate_ft(black_box(case.source), &AutosvaOptions::default())
                    .expect("generation succeeds");
                total += ft.stats().properties;
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
