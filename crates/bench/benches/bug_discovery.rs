//! E4–E7 — speed of bug discovery and trace lengths.
//!
//! The paper reports how quickly each bug was found and how short the
//! counterexample traces were (e.g. the MMU ghost response in under a second
//! with a 5-cycle trace, the LSU known bug in about a second).  This harness
//! measures the same quantities with the bundled engine, plus the
//! DTLB-over-ITLB fairness counterexample with and without the designer
//! assumption.
//!
//! Run with `cargo bench -p autosva-bench --bench bug_discovery`.

use autosva::{generate_ft, AutosvaOptions};
use autosva_bench::{build_testbench, default_check_options};
use autosva_designs::{by_id, Variant};
use autosva_formal::checker::verify;
use std::time::Instant;

fn report_bug(id: &str, property_fragment: &str, label: &str) {
    let case = by_id(id).expect("case");
    let ft = build_testbench(&case);
    let start = Instant::now();
    let report = verify(
        case.source,
        &ft,
        &default_check_options(&case, Variant::Buggy),
    )
    .expect("verification runs");
    let elapsed = start.elapsed();
    let result = report
        .results
        .iter()
        .find(|r| r.name.contains(property_fragment) && r.status.is_violation())
        .or_else(|| {
            report
                .results
                .iter()
                .find(|r| r.name.contains(property_fragment))
        })
        .expect("property exists");
    let trace_len = result.status.trace().map(|t| t.len()).unwrap_or(0);
    println!(
        "{:<22} {:<38} found in {:>9.1?}  trace {:>2} cycles   ({})",
        label, result.name, elapsed, trace_len, result.status
    );
}

fn main() {
    println!("Bug discovery speed and trace length");
    println!("{:-<110}", "");
    // E4: Bug1 — ghost response on the MMU (paper: <1 s, 5-cycle trace).
    report_bug("A3", "mmu_lsu_had_a_request", "Bug1 ghost response");
    // E5: Bug2 — deadlock in the NoC buffer (paper: first CEX on the liveness assertion).
    report_bug("O1", "noc_txn_eventual_response", "Bug2 NoC deadlock");
    // E6: known bugs hit by the LSU and L1-I$ testbenches.
    report_bug("A4", "lsu_load_eventual_response", "Known bug LSU #538");
    report_bug("A5", "icache_fetch_eventual_response", "Known bug I$ #474");

    // E7: the fairness counterexample (ITLB starved by DTLB priority) and the
    // designer assumption that removes it.
    println!("{:-<110}", "");
    let case = by_id("A3").expect("MMU");
    let plain = generate_ft(case.source, &AutosvaOptions::default()).expect("generate");
    let start = Instant::now();
    let report = verify(
        case.source,
        &plain,
        &default_check_options(&case, Variant::Fixed),
    )
    .expect("verification runs");
    let starvation = report
        .results
        .iter()
        .find(|r| r.name.contains("itlb_fill_hsk_or_drop"))
        .expect("property");
    println!(
        "{:<22} {:<38} {:>9.1?}  -> {}",
        "ITLB starvation",
        "without designer assumption",
        start.elapsed(),
        starvation.status
    );
    let with_assumption = build_testbench(&case);
    let start = Instant::now();
    let report = verify(
        case.source,
        &with_assumption,
        &default_check_options(&case, Variant::Fixed),
    )
    .expect("verification runs");
    let starvation = report
        .results
        .iter()
        .find(|r| r.name.contains("itlb_fill_hsk_or_drop"))
        .expect("property");
    println!(
        "{:<22} {:<38} {:>9.1?}  -> {}",
        "ITLB starvation",
        "with designer assumption",
        start.elapsed(),
        starvation.status
    );
}
