//! E2 — regenerates the paper's aggregate effort metric: "AutoSVA generated a
//! total of 236 unique properties based on 110 LoC of annotations".
//!
//! Our corpus is a scaled-down model of the seven evaluated modules, so the
//! absolute numbers are smaller, but the table shows the same shape: a
//! handful of annotation lines per module yields an order of magnitude more
//! formal properties.
//!
//! Run with `cargo bench -p autosva-bench --bench property_counts`.

use autosva_bench::build_testbench;
use autosva_designs::all_cases;

fn main() {
    println!("Generated properties vs. annotation effort (paper: 236 properties / 110 LoC)");
    println!("{:-<100}", "");
    println!(
        "{:<4} {:<28} {:>6} {:>7} {:>8} {:>8} {:>7} {:>6}",
        "id", "module", "LoC", "props", "asserts", "assumes", "covers", "aux"
    );
    println!("{:-<100}", "");
    let mut total_loc = 0;
    let mut total_props = 0;
    for case in all_cases() {
        let ft = build_testbench(&case);
        let s = ft.stats();
        println!(
            "{:<4} {:<28} {:>6} {:>7} {:>8} {:>8} {:>7} {:>6}",
            case.id,
            case.title,
            s.annotation_loc,
            s.properties,
            s.assertions,
            s.assumptions,
            s.covers,
            s.aux_signals
        );
        total_loc += s.annotation_loc;
        total_props += s.properties;
    }
    println!("{:-<100}", "");
    println!(
        "{:<33} {:>6} {:>7}   (paper: 110 LoC -> 236 unique properties)",
        "total", total_loc, total_props
    );
}
