//! Ablation of the verification-engine portfolio (DESIGN.md design choices).
//!
//! The checker layers three engines: shallow BMC (short counterexamples),
//! k-induction (cheap proofs), and an exact explicit-state engine
//! (reachability-dependent proofs and liveness under fairness).  This harness
//! verifies two proof-heavy designs with and without the exact engine to
//! show what each layer contributes: without it, properties whose proof needs
//! reachability information remain undecided.
//!
//! Run with `cargo bench -p autosva-bench --bench engine_ablation`.

use autosva_bench::{build_testbench, default_check_options, status_counts};
use autosva_designs::{by_id, Variant};
use autosva_formal::bmc::BmcOptions;
use autosva_formal::checker::verify;
use std::time::Instant;

fn run(id: &str, disable_explicit: bool) {
    let case = by_id(id).expect("case");
    let ft = build_testbench(&case);
    let mut options = default_check_options(&case, Variant::Fixed);
    options.disable_explicit = disable_explicit;
    if disable_explicit {
        // Keep the pure-SAT configuration within a reasonable time budget.
        options.bmc = BmcOptions {
            max_depth: 15,
            max_induction: 10,
        };
        options.liveness_bmc = BmcOptions {
            max_depth: 10,
            max_induction: 6,
        };
    }
    let start = Instant::now();
    let report = verify(case.source, &ft, &options).expect("verification runs");
    let (proven, violated, covered, unknown) = status_counts(&report);
    println!(
        "{:<4} {:<28} explicit={:<5} {:>9.1?}  proven {:>2}  violated {:>2}  covered {:>2}  unknown {:>2}  proof rate {:>3.0}%",
        case.id,
        case.title,
        !disable_explicit,
        start.elapsed(),
        proven,
        violated,
        covered,
        unknown,
        report.proof_rate() * 100.0
    );
}

fn main() {
    println!("Engine ablation: BMC + k-induction alone vs. with the exact explicit-state engine");
    println!("{:-<130}", "");
    for id in ["A1", "A2", "O1"] {
        run(id, true);
        run(id, false);
    }
    println!("{:-<130}", "");
    println!("note: `unknown` properties with explicit=false are exactly the reachability-dependent proofs.");
}
