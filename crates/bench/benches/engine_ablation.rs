//! Ablation of the verification-engine portfolio, its orchestrator, and
//! the SAT core underneath.
//!
//! Seven sections:
//!
//! 1. **Engine ablation** — the checker layers four engines: shallow BMC
//!    (short counterexamples), k-induction (cheap proofs), IC3/PDR
//!    (reachability-dependent proofs with invariant certificates), and the
//!    exact explicit-state engine (last-resort fallback, exponential in the
//!    latch count).  The proof-heavy designs run under three configurations
//!    to show what each layer contributes.
//! 2. **Solver ablation** — the CDCL core's modern search-loop features
//!    (Luby restarts, recursive clause minimization, LBD-guided learnt
//!    database reduction) toggled on vs. off: a hard-instance section
//!    (pigeonhole + phase-transition random 3-SAT) asserts the
//!    full-feature solver needs fewer conflicts, and the whole corpus runs
//!    under both configurations asserting identical verdicts.
//! 3. **Optimization ablation** — the AIG static-analysis pass
//!    (structural hashing, sequential constant sweeping, dead-node
//!    elimination) measured over every cone-of-influence slice of the
//!    corpus: asserts the summed slice gate count shrinks by at least the
//!    documented 15%, and that the corpus verdicts are identical with the
//!    pass on and off.
//! 4. **Simulation ablation** — the pre-cascade stimulus fuzzer on vs.
//!    off over the whole corpus: asserts verdict counts agree and the
//!    rendered reports are byte-identical (the determinism contract), then
//!    times the buggy variants separately and asserts every safety
//!    violation closes *pre-SAT* — found by the fuzzer, carrying
//!    `engine: fuzz` provenance.
//! 5. **Orchestrator ablation** — the full Table III corpus runs
//!    sequentially on the full model (the pre-orchestrator baseline),
//!    parallel on per-property cone-of-influence slices, parallel with the
//!    in-memory proof cache (cold, then warm), and against an on-disk
//!    cache directory with a fresh cache handle per run (the fresh-process
//!    CLI/CI pattern) — with regression asserts that the cached and
//!    disk-warm re-runs beat the cold runs, render byte-identical reports,
//!    and that the cold parallel corpus run stays within the PR 3 budget.
//! 6. **Clause-sharing ablation** — the portfolio race on deterministic
//!    hard BMC instances: a resolution-hard (unsatisfiable) set asserts
//!    that glue-bounded clause exchange strictly reduces the portfolio's
//!    summed conflicts vs. the same race with sharing dry, a
//!    configuration-sensitive (heavy-tailed) set asserts the shared
//!    portfolio strictly beats the single-configuration baseline the
//!    checker used before the portfolio existed, and four corpus runs
//!    assert the determinism contract (`render()` byte-identical with
//!    sharing on or off, at 1 and 4 worker threads).
//! 7. **Telemetry trajectory** — one instrumented corpus pass writing
//!    per-run telemetry JSON through the `CheckOptions::telemetry` file
//!    sink and aggregating the byte-stable deterministic subsets (plus
//!    the clause-sharing conflict counts, which are machine-independent)
//!    into `target/BENCH_engine_ablation.json` for commit-over-commit
//!    trajectory diffing.
//!
//! All sections assert their guarantees, so a cascade, solver or
//! orchestrator regression fails this bench (CI runs it with `-- --test`
//! as the engine smoke check).
//!
//! Run with `cargo bench -p autosva-bench --bench engine_ablation`.

use autosva_bench::{build_testbench, default_check_options, status_counts};
use autosva_designs::{all_cases, by_id, elaborated, Variant};
use autosva_formal::aig::{Aig, Lit};
use autosva_formal::bmc::{
    check_safety_budgeted, race_safety_budgeted, BmcOptions, RaceOptions, SafetyResult,
};
use autosva_formal::checker::{verify_elaborated, CheckOptions, Proof, VerificationReport};
use autosva_formal::interrupt::Interrupt;
use autosva_formal::model::{BadProperty, Model};
use autosva_formal::portfolio::{racer_configs, ProofCache, SharingOptions};
use autosva_formal::sat::{SatLit, SatResult, Solver, SolverConfig};
use std::collections::HashMap;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq)]
enum Config {
    /// Bounded engines only.
    BmcKind,
    /// Bounded engines + PDR.
    WithPdr,
    /// The full cascade (BMC → k-induction → PDR → explicit).
    Full,
}

impl Config {
    fn label(self) -> &'static str {
        match self {
            Config::BmcKind => "bmc+kind",
            Config::WithPdr => "+pdr",
            Config::Full => "full",
        }
    }
}

fn run(id: &str, config: Config) -> VerificationReport {
    let case = by_id(id).expect("case");
    let ft = build_testbench(&case);
    let mut options = default_check_options(&case, Variant::Fixed);
    options.disable_explicit = config != Config::Full;
    options.disable_pdr = config == Config::BmcKind;
    if config != Config::Full {
        // Keep the no-fallback configurations within a reasonable time
        // budget — and identical between `bmc+kind` and `+pdr`, so the
        // unknown-count comparison below isolates PDR's contribution.
        options.bmc = BmcOptions {
            max_depth: 15,
            max_induction: 10,
        };
        options.liveness_bmc = BmcOptions {
            max_depth: 10,
            max_induction: 6,
        };
    }
    let design = elaborated(&case, Variant::Fixed);
    let start = Instant::now();
    let report = verify_elaborated(&design, &ft, &options).expect("verification runs");
    let (proven, violated, covered, unknown) = status_counts(&report);
    println!(
        "{:<4} {:<28} {:<9} {:>9.1?}  proven {:>2}  violated {:>2}  covered {:>2}  unknown {:>2}  proof rate {:>3.0}%",
        case.id,
        case.title,
        config.label(),
        start.elapsed(),
        proven,
        violated,
        covered,
        unknown,
        report.proof_rate() * 100.0
    );
    report
}

/// Per-run (proven, violated, covered, unknown) verdict counts.
type VerdictCounts = (usize, usize, usize, usize);

/// Runs the whole corpus (fixed variants, plus buggy where one exists)
/// under one orchestrator configuration; returns the total checking
/// wall-clock, per-run summary tuples and the rendered (runtime-free)
/// reports for cross-config comparison.
fn corpus_run(
    label: &str,
    configure: impl Fn(&mut CheckOptions),
) -> (Duration, Vec<VerdictCounts>, Vec<String>) {
    let mut total = Duration::ZERO;
    let mut summaries = Vec::new();
    let mut renders = Vec::new();
    for case in all_cases() {
        let variants: &[Variant] = if case.has_bug_parameter {
            &[Variant::Fixed, Variant::Buggy]
        } else {
            &[Variant::Fixed]
        };
        for &variant in variants {
            let ft = build_testbench(&case);
            let design = elaborated(&case, variant);
            let mut options = default_check_options(&case, variant);
            configure(&mut options);
            let start = Instant::now();
            let report = verify_elaborated(&design, &ft, &options).expect("verification runs");
            total += start.elapsed();
            summaries.push(status_counts(&report));
            renders.push(report.render());
        }
    }
    println!("{label:<32} {total:>9.1?} total");
    (total, summaries, renders)
}

/// The hard-instance section of the solver ablation, solved under one
/// feature configuration.  Returns `(total conflicts, per-instance
/// verdicts)`.
///
/// The section is a small pigeonhole instance plus phase-transition random
/// 3-SAT at increasing sizes — the regime the modern search loop targets
/// (the solver is deterministic, so the counts are machine-independent).
/// Large pigeonhole instances are deliberately excluded: they need one
/// long, focused resolution proof, and Luby restarts are well known to be
/// counterproductive there (measured here too: PHP(9,8) takes ~4x the
/// conflicts with restarts on).  The corpus the checker actually solves is
/// BMC/PDR-style, where the features pay off.
fn solver_hard_instances(config: SolverConfig) -> (u64, Vec<SatResult>) {
    let mut conflicts = 0u64;
    let mut verdicts = Vec::new();

    // Pigeonhole PHP(7, 6): resolution pressure at a size where clause
    // minimization still outweighs the restart overhead.
    {
        let holes = 6usize;
        let mut s = Solver::with_config(config);
        let p: Vec<Vec<usize>> = (0..holes + 1)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let clause: Vec<SatLit> = row.iter().map(|&v| SatLit::pos(v)).collect();
            s.add_clause(&clause);
        }
        for hole in 0..holes {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in p.iter().skip(i1 + 1) {
                    s.add_clause(&[SatLit::neg(row1[hole]), SatLit::neg(row2[hole])]);
                }
            }
        }
        verdicts.push(s.solve(&[]));
        conflicts += s.stats.conflicts;
    }

    // Random 3-SAT at the m/n ≈ 4.26 phase transition: where restarts and
    // clause-database hygiene pay off, increasingly so with size.
    for (num_vars, num_clauses) in [(80usize, 341usize), (100, 426), (120, 511)] {
        for seed in 1u64..=8 {
            let mut s = Solver::with_config(config);
            let mut state = (seed ^ ((num_vars as u64) << 32)).wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..num_vars {
                s.new_var();
            }
            for _ in 0..num_clauses {
                let clause: Vec<SatLit> = (0..3)
                    .map(|_| SatLit::new((next() % num_vars as u64) as usize, next() % 2 == 0))
                    .collect();
                s.add_clause(&clause);
            }
            verdicts.push(s.solve(&[]));
            conflicts += s.stats.conflicts;
        }
    }
    (conflicts, verdicts)
}

fn solver_ablation() {
    println!("\nSolver ablation: modern search loop (restarts + minimization + reduction) vs. off");
    println!("{:-<130}", "");
    let (full_conflicts, full_verdicts) = solver_hard_instances(SolverConfig::default());
    let (off_conflicts, off_verdicts) = solver_hard_instances(SolverConfig::baseline());
    println!(
        "hard instances (pigeonhole + phase-transition 3-SAT): full {full_conflicts} conflicts, \
         feature-off {off_conflicts} conflicts ({:.2}x)",
        off_conflicts as f64 / full_conflicts.max(1) as f64
    );
    assert_eq!(
        full_verdicts, off_verdicts,
        "solver features changed a hard-instance verdict"
    );
    assert!(
        full_conflicts < off_conflicts,
        "the full-feature solver must need fewer conflicts on the hard-instance section \
         (full {full_conflicts} vs. off {off_conflicts})"
    );

    // The whole corpus under both configurations: identical verdict counts
    // (proof artifacts legitimately differ — a different search finds
    // different invariants and trace lengths; the differential suite
    // asserts per-engine verdict agreement separately).
    let (full_time, full_counts, _) = corpus_run("corpus, full solver features", |_| {});
    let (off_time, off_counts, _) = corpus_run("corpus, features off", |o| {
        o.solver = SolverConfig::baseline();
    });
    println!("corpus: full features {full_time:.1?}, features off {off_time:.1?}");
    assert_eq!(
        full_counts, off_counts,
        "solver features changed corpus verdicts"
    );
}

fn opt_ablation() {
    use autosva_formal::coi::{cone_of_influence, SliceTarget};
    use autosva_formal::compile::compile;
    use autosva_formal::opt;

    println!("\nOptimization ablation: per-slice AIG gates before/after the static-analysis pass");
    println!("{:-<130}", "");
    let mut before_total = 0usize;
    let mut after_total = 0usize;
    for case in all_cases() {
        for variant in [Variant::Buggy, Variant::Fixed] {
            if variant == Variant::Buggy && !case.has_bug_parameter {
                continue;
            }
            let design = elaborated(&case, variant);
            let ft = build_testbench(&case);
            let compiled = compile(&design, &ft).expect("corpus case compiles");
            let model = &compiled.model;
            let mut targets: Vec<SliceTarget> = Vec::new();
            targets.extend((0..model.bads.len()).map(SliceTarget::Bad));
            targets.extend((0..model.covers.len()).map(SliceTarget::Cover));
            targets.extend((0..model.liveness.len()).map(SliceTarget::Liveness));
            let mut before = 0usize;
            let mut after = 0usize;
            for target in targets {
                let slice = cone_of_influence(model, target);
                before += slice.model.aig.num_ands();
                after += opt::optimize(&slice.model).model.aig.num_ands();
            }
            println!(
                "{:<4} {:?}: slice gates {} -> {} ({:+.1}%)",
                case.id,
                variant,
                before,
                after,
                100.0 * (after as f64 - before as f64) / before.max(1) as f64
            );
            before_total += before;
            after_total += after;
        }
    }
    let reduction = 100.0 * (before_total - after_total) as f64 / before_total.max(1) as f64;
    println!(
        "summed corpus slice gates: {before_total} -> {after_total} ({reduction:.1}% reduction)"
    );
    assert!(
        reduction >= 15.0,
        "the optimization pass shrank summed corpus slice gates by only {reduction:.1}%; \
         the documented bar is 15%"
    );

    // Verdict preservation at corpus scale: the pass on (the default) and
    // off must reach identical verdict counts.
    let (on_time, on_counts, _) = corpus_run("corpus, optimization on", |_| {});
    let (off_time, off_counts, _) = corpus_run("corpus, optimization off", |o| {
        o.parallel.opt = false;
    });
    println!("corpus: optimization on {on_time:.1?}, off {off_time:.1?}");
    assert_eq!(
        on_counts, off_counts,
        "the optimization pass changed corpus verdicts"
    );
}

fn simulation_ablation() {
    use autosva::sva::{Directive, PropertyClass};

    println!("\nSimulation ablation: pre-cascade stimulus fuzzer on vs. off, full corpus");
    println!("{:-<130}", "");
    let (on_time, on_counts, on_renders) = corpus_run("corpus, fuzzer on", |_| {});
    let (off_time, off_counts, off_renders) = corpus_run("corpus, fuzzer off", |o| {
        o.fuzz.enabled = false;
    });
    println!("corpus: fuzzer on {on_time:.1?}, off {off_time:.1?}");
    assert_eq!(
        on_counts, off_counts,
        "the fuzz stage changed corpus verdicts"
    );
    assert_eq!(
        on_renders, off_renders,
        "the fuzz stage must not change a single report byte (confirmed hits \
         are re-minimized to the canonical trace length before reporting)"
    );

    // The buggy variants in isolation: every safety violation must close
    // *before* the first SAT query — found by the fuzzer and carrying its
    // provenance — and the wall-clock shows what skipping the SAT search
    // for the shallow bugs is worth.
    println!("{:-<130}", "");
    for case in all_cases() {
        if !case.has_bug_parameter {
            continue;
        }
        let ft = build_testbench(&case);
        let design = elaborated(&case, Variant::Buggy);
        let mut timings = Vec::new();
        let mut fuzz_found = 0usize;
        for enabled in [true, false] {
            let mut options = default_check_options(&case, Variant::Buggy);
            options.fuzz.enabled = enabled;
            let start = Instant::now();
            let report = verify_elaborated(&design, &ft, &options).expect("verification runs");
            timings.push(start.elapsed());
            if enabled {
                for r in &report.results {
                    if r.directive == Directive::Assert
                        && r.class != PropertyClass::Liveness
                        && r.status.is_violation()
                    {
                        assert_eq!(
                            r.engine,
                            Some("fuzz"),
                            "{} buggy: safety violation {} was not closed pre-SAT",
                            case.id,
                            r.name
                        );
                        fuzz_found += 1;
                    }
                }
            }
        }
        println!(
            "{:<4} buggy: {} safety violation(s) closed pre-SAT; fuzzer on {:>9.1?}, off {:>9.1?}",
            case.id, fuzz_found, timings[0], timings[1]
        );
    }
}

/// PR 3's release-mode cold full-corpus baseline was 2.6 s (PR 4's solver
/// work brought it to ~1.3–1.4 s on the same machine).  The absolute guard
/// uses 2x headroom so noisy shared CI runners don't flake, and a relative
/// parallel-vs-sequential guard (measured in the same process, so machine
/// speed cancels out) backs it up.
const COLD_CORPUS_BUDGET: Duration = Duration::from_millis(2 * 2600);

fn orchestrator_ablation() {
    println!(
        "\nOrchestrator ablation: sequential vs. parallel(COI) vs. parallel+cache vs. disk cache, full corpus"
    );
    println!("{:-<130}", "");
    let (seq_time, seq_counts, _) = corpus_run("sequential, full model", |o| {
        o.parallel.threads = 1;
        o.parallel.slice = false;
    });
    let (par_time, par_counts, _) = corpus_run("parallel, COI slices", |_| {});
    let cache = ProofCache::new();
    let (cold_time, cold_counts, cold_renders) = {
        let cache = cache.clone();
        corpus_run("parallel + cache (cold)", move |o| {
            o.parallel.cache = Some(cache.clone());
        })
    };
    let (warm_time, warm_counts, warm_renders) = {
        let cache = cache.clone();
        corpus_run("parallel + cache (warm)", move |o| {
            o.parallel.cache = Some(cache.clone());
        })
    };

    // Disk persistence: a cache directory with a *fresh* ProofCache handle
    // opened per verify call — exactly what two separate CLI/CI processes
    // sharing a cache directory see.
    let cache_dir = std::env::temp_dir().join(format!(
        "autosva-engine-ablation-cache-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let (disk_cold_time, disk_cold_counts, disk_cold_renders) = {
        let dir = cache_dir.clone();
        corpus_run("disk cache (cold process)", move |o| {
            o.cache.dir = Some(dir.clone());
        })
    };
    let (disk_warm_time, disk_warm_counts, disk_warm_renders) = {
        let dir = cache_dir.clone();
        corpus_run("disk cache (warm process)", move |o| {
            o.cache.dir = Some(dir.clone());
        })
    };
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!("{:-<130}", "");
    let stats = cache.stats();
    println!(
        "cache: {} entries, {} hits / {} misses / {} inserts / {} rejected",
        cache.len(),
        stats.hits,
        stats.misses,
        stats.insertions,
        stats.rejected
    );
    println!(
        "speedup: parallel {:.2}x over sequential, warm cache {:.2}x over cold, disk-warm {:.2}x over disk-cold",
        seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9),
        cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9),
        disk_cold_time.as_secs_f64() / disk_warm_time.as_secs_f64().max(1e-9),
    );

    // Regression guards: every configuration reaches the same verdicts, and
    // the cached re-runs must beat the cold runs (they answer from
    // validated cache entries instead of re-running the engines).
    assert_eq!(
        seq_counts, par_counts,
        "sequential and parallel runs disagree on corpus verdicts"
    );
    assert_eq!(
        cold_counts, warm_counts,
        "cache hits changed corpus verdicts"
    );
    assert_eq!(
        cold_renders, warm_renders,
        "cache hits changed a corpus report byte-for-byte"
    );
    assert!(
        warm_time < cold_time,
        "cached re-run ({warm_time:?}) must be faster than the cold run ({cold_time:?})"
    );
    assert_eq!(stats.rejected, 0, "cache entries failed re-validation");
    if cfg!(not(debug_assertions)) {
        assert!(
            par_time <= COLD_CORPUS_BUDGET,
            "cold parallel corpus run ({par_time:?}) regressed past the PR 3 budget \
             ({COLD_CORPUS_BUDGET:?})"
        );
        // Relative backstop, immune to machine speed: the parallel sliced
        // run must not be slower than the sequential full-model run taken
        // in this same process.
        assert!(
            par_time.as_secs_f64() <= seq_time.as_secs_f64() * 1.5,
            "parallel sliced corpus run ({par_time:?}) is slower than sequential \
             ({seq_time:?})"
        );
    }

    // Disk-persistence guards: the fresh-process warm run answers from the
    // spill file — faster than its cold run and byte-identical.
    assert_eq!(
        disk_cold_counts, disk_warm_counts,
        "disk cache changed corpus verdicts"
    );
    assert_eq!(
        disk_cold_renders, disk_warm_renders,
        "disk-warm reports must match the cold reports byte-for-byte"
    );
    assert_eq!(
        cold_renders, disk_cold_renders,
        "the disk-backed cache must not change any verdict"
    );
    assert!(
        disk_warm_time < disk_cold_time,
        "disk-warm re-run ({disk_warm_time:?}) must beat the cold run ({disk_cold_time:?})"
    );
}

/// A pigeonhole BMC model: inputs `p[i][j]` ("pigeon `i` sits in hole
/// `j`"), bad = "every pigeon sits somewhere and no hole holds two
/// pigeons".  Combinationally unsatisfiable, so the depth-0 BMC query and
/// the induction step query are both hard resolution instances — the
/// regime where glue-bounded clause exchange pays: every racer needs the
/// same proof, and each shared learnt clause is a lemma of it.
fn sharing_php_model(holes: usize) -> Model {
    let mut aig = Aig::new();
    let p: Vec<Vec<Lit>> = (0..holes + 1)
        .map(|i| {
            (0..holes)
                .map(|j| aig.add_input(format!("p_{i}_{j}")))
                .collect()
        })
        .collect();
    let mut bad = Lit::TRUE;
    for row in &p {
        let mut somewhere = Lit::FALSE;
        for &l in row {
            somewhere = aig.or(somewhere, l);
        }
        bad = aig.and(bad, somewhere);
    }
    for hole in 0..holes {
        for (i1, row1) in p.iter().enumerate() {
            for row2 in p.iter().skip(i1 + 1) {
                let both = aig.and(row1[hole], row2[hole]);
                bad = aig.and(bad, both.invert());
            }
        }
    }
    let mut model = Model::new(aig);
    model.bads.push(BadProperty {
        name: "php_bad".into(),
        lit: bad,
    });
    model
}

/// A random 3-SAT BMC model: the formula's variables become inputs and
/// bad = the conjunction of all clauses, so the depth-0 BMC query *is*
/// the 3-SAT instance.  At the m/n ≈ 4.26 phase transition these are the
/// heavy-tailed instances the portfolio targets: which restart /
/// minimization policy wins varies wildly per instance, so racing
/// diverse configurations hedges where any single configuration
/// occasionally stalls.
fn sharing_threesat_model(seed: u64, num_vars: usize, num_clauses: usize) -> Model {
    let mut aig = Aig::new();
    let vars: Vec<Lit> = (0..num_vars)
        .map(|i| aig.add_input(format!("x{i}")))
        .collect();
    let mut state = (seed ^ ((num_vars as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut bad = Lit::TRUE;
    for _ in 0..num_clauses {
        let mut clause = Lit::FALSE;
        for _ in 0..3 {
            let v = vars[(next() % num_vars as u64) as usize];
            clause = aig.or(clause, v.invert_if(next() % 2 != 0));
        }
        bad = aig.and(bad, clause);
    }
    let mut model = Model::new(aig);
    model.bads.push(BadProperty {
        name: "threesat_bad".into(),
        lit: bad,
    });
    model
}

/// A comparable verdict summary: the race winner's `Violated` trace is a
/// genuine but not necessarily canonical satisfying assignment (the
/// checker re-minimizes before reporting), so verdict agreement compares
/// the kind and depth, not the assignment.
fn verdict_kind(result: &SafetyResult) -> (u8, usize) {
    match result {
        SafetyResult::Proven { induction_depth } => (0, *induction_depth),
        SafetyResult::Violated(trace) => (1, trace.len()),
        SafetyResult::Unknown { explored_depth } => (2, *explored_depth),
        SafetyResult::Interrupted => (3, 0),
    }
}

/// Runs the three-racer portfolio on `model` and returns its summed
/// conflicts, verdict and sharing traffic.  `glue_bound: 0` filters every
/// learnt clause at export, so it is the sharing-off ("dry") arm of the
/// same race.
fn race_conflicts(
    model: &Model,
    quantum: u64,
    glue_bound: u32,
) -> (u64, SafetyResult, autosva_formal::bmc::SharingTraffic) {
    let options = BmcOptions {
        max_depth: 0,
        max_induction: 0,
    };
    let race = RaceOptions {
        configs: racer_configs(SolverConfig::default(), 3),
        quantum,
        glue_bound,
        lemmas: Vec::new(),
        seeds: HashMap::new(),
        pools: None,
    };
    let (result, stats, traffic) =
        race_safety_budgeted(model, 0, &options, &race, &Interrupt::none());
    (stats.conflicts, result, traffic)
}

/// Conflicts and verdict of one solver under one configuration on the
/// same depth-0 instance — the single-configuration baseline every
/// property task ran before the portfolio existed.
fn single_conflicts(model: &Model, config: SolverConfig) -> (u64, SafetyResult) {
    let options = BmcOptions {
        max_depth: 0,
        max_induction: 0,
    };
    let (result, stats) = check_safety_budgeted(model, 0, &options, config, &Interrupt::none());
    (stats.conflicts, result)
}

/// The deterministic clause-sharing summary embedded in the bench
/// trajectory JSON (all four counts are summed CDCL conflicts — the
/// solver and the lockstep race are deterministic, so they are
/// machine-independent).
struct SharingSummary {
    resolution_shared: u64,
    resolution_dry: u64,
    portfolio: u64,
    single_config: u64,
}

fn sharing_ablation() -> SharingSummary {
    println!("\nClause-sharing ablation: portfolio race on deterministic hard BMC instances");
    println!("{:-<130}", "");

    // Resolution-hard (unsatisfiable) set: pigeonhole plus random 3-SAT
    // seeds that land on the unsatisfiable side of the phase transition.
    // Every racer must build the same refutation, so exchanged clauses
    // substitute directly for conflicts the importers would otherwise
    // spend — the same race run dry (glue bound 0 filters every export)
    // measures what sharing is worth.  The 2048-conflict checker default
    // quantum would let the first racer finish many of these before the
    // others ever run; 1024 keeps the racers genuinely interleaved at
    // this instance scale.
    let resolution: Vec<(String, Model)> = vec![
        ("php(8,7)".into(), sharing_php_model(7)),
        ("php(9,8)".into(), sharing_php_model(8)),
        (
            "3sat(150,639) s1".into(),
            sharing_threesat_model(1, 150, 639),
        ),
        (
            "3sat(150,639) s2".into(),
            sharing_threesat_model(2, 150, 639),
        ),
        (
            "3sat(150,639) s9".into(),
            sharing_threesat_model(9, 150, 639),
        ),
        (
            "3sat(150,639) s10".into(),
            sharing_threesat_model(10, 150, 639),
        ),
    ];
    let mut resolution_shared = 0u64;
    let mut resolution_dry = 0u64;
    for (label, model) in &resolution {
        let (shared, shared_verdict, traffic) = race_conflicts(model, 1024, 4);
        let (dry, dry_verdict, _) = race_conflicts(model, 1024, 0);
        assert_eq!(
            verdict_kind(&shared_verdict),
            verdict_kind(&dry_verdict),
            "{label}: sharing changed the race verdict"
        );
        assert!(
            traffic.exported > 0 && traffic.imported > 0,
            "{label}: no clauses crossed the pool (exported {}, imported {})",
            traffic.exported,
            traffic.imported
        );
        println!(
            "{label:<20} race shared {shared:>7} conflicts, dry {dry:>7} ({:.2}x) — exported {:>5}, imported {:>5}",
            dry as f64 / shared.max(1) as f64,
            traffic.exported,
            traffic.imported
        );
        resolution_shared += shared;
        resolution_dry += dry;
    }
    println!(
        "resolution-hard set: shared {resolution_shared} vs. dry {resolution_dry} summed conflicts ({:.2}x)",
        resolution_dry as f64 / resolution_shared.max(1) as f64
    );
    assert!(
        resolution_shared < resolution_dry,
        "clause sharing must strictly reduce the portfolio's summed conflicts on the \
         resolution-hard set (shared {resolution_shared} vs. dry {resolution_dry})"
    );

    // Configuration-sensitive set: phase-transition instances where the
    // default configuration stalls and a diverse racer finishes early —
    // the heavy-tailed regime portfolios exist for (config-insensitive
    // instances are deliberately excluded: there a race just multiplies
    // the work by the racer count, which the checker's race gate avoids
    // by only racing hard properties).  A fine 128-conflict quantum
    // matches the instance scale, so the best-suited racer wins within a
    // few turns and the summed conflicts of the whole shared portfolio —
    // every racer's spend, not just the winner's — undercut the
    // single-configuration baseline.
    let sensitive: Vec<(String, Model)> = [3u64, 6, 13, 15, 32]
        .iter()
        .map(|&seed| {
            (
                format!("3sat(150,639) s{seed}"),
                sharing_threesat_model(seed, 150, 639),
            )
        })
        .collect();
    let mut portfolio = 0u64;
    let mut single_config = 0u64;
    for (label, model) in &sensitive {
        let (single, single_verdict) = single_conflicts(model, SolverConfig::default());
        let (raced, race_verdict, _) = race_conflicts(model, 128, 4);
        assert_eq!(
            verdict_kind(&single_verdict),
            verdict_kind(&race_verdict),
            "{label}: the race changed the verdict"
        );
        println!(
            "{label:<20} single-config {single:>7} conflicts, shared portfolio {raced:>7} ({:.2}x)",
            single as f64 / raced.max(1) as f64
        );
        portfolio += raced;
        single_config += single;
    }
    println!(
        "config-sensitive set: shared portfolio {portfolio} vs. single-config baseline \
         {single_config} summed conflicts ({:.2}x)",
        single_config as f64 / portfolio.max(1) as f64
    );
    assert!(
        portfolio < single_config,
        "the shared-clause portfolio must strictly reduce summed conflicts vs. the \
         single-config baseline on the config-sensitive set (portfolio {portfolio} vs. \
         single {single_config})"
    );

    // The determinism contract at corpus scale: sharing on (the default)
    // and off must render byte-identical reports at 1 and at 4 worker
    // threads — shared clauses, PDR lemmas and cross-property seeds only
    // ever strengthen the search, never steer a verdict or a reported
    // trace.
    for threads in [1usize, 4] {
        let (off_time, off_counts, off_renders) = corpus_run(
            &format!("corpus, sharing off, {threads} thread(s)"),
            move |o| {
                o.parallel.threads = threads;
                o.sharing = SharingOptions::disabled();
            },
        );
        let (on_time, on_counts, on_renders) = corpus_run(
            &format!("corpus, sharing on, {threads} thread(s)"),
            move |o| {
                o.parallel.threads = threads;
                o.sharing = SharingOptions::default();
            },
        );
        println!("corpus at {threads} thread(s): sharing off {off_time:.1?}, on {on_time:.1?}");
        assert_eq!(
            off_counts, on_counts,
            "sharing changed corpus verdicts at {threads} thread(s)"
        );
        assert_eq!(
            off_renders, on_renders,
            "sharing changed a corpus report byte at {threads} thread(s)"
        );
    }

    SharingSummary {
        resolution_shared,
        resolution_dry,
        portfolio,
        single_config,
    }
}

/// One instrumented corpus pass writing the telemetry trajectory:
/// per-run JSON reports through the [`CheckOptions::telemetry`] file sink
/// under `target/bench-telemetry/`, and the aggregated deterministic
/// subsets — plus the clause-sharing conflict counts of section 6 —
/// as `target/BENCH_engine_ablation.json` — fixed key order and
/// byte-stable across runs on any machine, so successive commits diff
/// directly (the `BENCH_*.json` trajectory convention).
fn write_bench_trajectory(sharing: &SharingSummary) {
    println!("\nTelemetry trajectory: instrumented corpus pass");
    println!("{:-<130}", "");
    // Benches run with the package directory as CWD; anchor the output to
    // the workspace `target/` so the trajectory lands in one known place.
    let target = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
    let sink_dir = target.join("bench-telemetry");
    std::fs::create_dir_all(&sink_dir).expect("create telemetry sink directory");
    let mut entries: Vec<(String, String)> = Vec::new();
    for case in all_cases() {
        let variants: &[Variant] = if case.has_bug_parameter {
            &[Variant::Fixed, Variant::Buggy]
        } else {
            &[Variant::Fixed]
        };
        for &variant in variants {
            let ft = build_testbench(&case);
            let design = elaborated(&case, variant);
            let tag = format!("{}_{variant:?}", case.id);
            let mut options = default_check_options(&case, variant);
            options.telemetry.enabled = true;
            options.telemetry.json_path = Some(sink_dir.join(format!("{tag}.telemetry.json")));
            let report = verify_elaborated(&design, &ft, &options).expect("verification runs");
            let telemetry = report.telemetry.expect("telemetry attached");
            entries.push((tag, telemetry.deterministic_json()));
        }
    }
    let mut out = String::from("{\n\"schema\": \"autosva-bench engine_ablation v1\",\n");
    out.push_str(&format!(
        "\"sharing\": {{\"resolution_shared_conflicts\": {}, \"resolution_dry_conflicts\": {}, \
         \"portfolio_conflicts\": {}, \"single_config_conflicts\": {}}},\n",
        sharing.resolution_shared, sharing.resolution_dry, sharing.portfolio, sharing.single_config
    ));
    out.push_str("\"runs\": [\n");
    for (i, (tag, det)) in entries.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!("{{\"run\": \"{tag}\", \"telemetry\": "));
        out.push_str(det.trim_end());
        out.push('}');
    }
    out.push_str("\n]\n}\n");
    let path = target.join("BENCH_engine_ablation.json");
    std::fs::write(&path, &out).expect("write bench trajectory");
    println!(
        "wrote {} instrumented run(s): {} plus per-run sinks in {}",
        entries.len(),
        path.display(),
        sink_dir.display()
    );
}

fn main() {
    // `cargo bench ... -- --test` passes `--test`: this harness always runs
    // one verification per configuration (no statistical measurement), so
    // the flag needs no special handling beyond being accepted.
    let _ = std::env::args().find(|a| a == "--test");

    println!("Engine ablation: bounded engines vs. +PDR vs. the full cascade");
    println!("{:-<130}", "");
    for id in ["A1", "A2", "O1", "O2"] {
        let bounded = run(id, Config::BmcKind);
        let with_pdr = run(id, Config::WithPdr);
        let full = run(id, Config::Full);

        // Regression guards: the full cascade decides everything, and
        // adding PDR (with otherwise identical bounds) must never lose a
        // verdict the bounded engines had.
        let (_, _, _, unknown_full) = status_counts(&full);
        assert_eq!(
            unknown_full, 0,
            "{id}: the full cascade left properties undecided"
        );
        let (_, _, _, unknown_bounded) = status_counts(&bounded);
        let (_, _, _, unknown_pdr) = status_counts(&with_pdr);
        assert!(
            unknown_pdr <= unknown_bounded,
            "{id}: PDR lost verdicts the bounded engines had"
        );

        if id == "O2" {
            // The scaled L1.5 miss-path proof is the cliff PDR exists to
            // remove: it must be closed by a PDR invariant, not by the
            // explicit engine.
            let had = full
                .results
                .iter()
                .find(|r| r.name.contains("l15_miss_had_a_request"))
                .expect("monitor property exists");
            assert!(
                matches!(had.status.proof(), Some(Proof::Invariant { .. })),
                "O2 had_a_request must be closed by PDR, got {:?}",
                had.status
            );
        }
    }
    println!("{:-<130}", "");
    println!(
        "note: `unknown` under bmc+kind marks the reachability-dependent proofs; the PDR column closes them without the explicit cliff."
    );

    solver_ablation();
    opt_ablation();
    simulation_ablation();
    orchestrator_ablation();
    let sharing = sharing_ablation();
    write_bench_trajectory(&sharing);
}
