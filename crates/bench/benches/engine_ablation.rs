//! Ablation of the verification-engine portfolio and its orchestrator.
//!
//! Two sections:
//!
//! 1. **Engine ablation** — the checker layers four engines: shallow BMC
//!    (short counterexamples), k-induction (cheap proofs), IC3/PDR
//!    (reachability-dependent proofs with invariant certificates), and the
//!    exact explicit-state engine (last-resort fallback, exponential in the
//!    latch count).  The proof-heavy designs run under three configurations
//!    to show what each layer contributes.
//! 2. **Orchestrator ablation** — the full Table III corpus runs
//!    sequentially on the full model (the pre-orchestrator baseline),
//!    parallel on per-property cone-of-influence slices, and parallel with
//!    the proof cache (cold, then warm) — with a regression assert that the
//!    cached re-run beats the cold run.
//!
//! Both sections assert their guarantees, so a cascade or orchestrator
//! regression fails this bench (CI runs it with `-- --test` as the engine
//! smoke check).
//!
//! Run with `cargo bench -p autosva-bench --bench engine_ablation`.

use autosva_bench::{build_testbench, default_check_options, status_counts};
use autosva_designs::{all_cases, by_id, elaborated, Variant};
use autosva_formal::bmc::BmcOptions;
use autosva_formal::checker::{verify_elaborated, CheckOptions, Proof, VerificationReport};
use autosva_formal::portfolio::ProofCache;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq)]
enum Config {
    /// Bounded engines only.
    BmcKind,
    /// Bounded engines + PDR.
    WithPdr,
    /// The full cascade (BMC → k-induction → PDR → explicit).
    Full,
}

impl Config {
    fn label(self) -> &'static str {
        match self {
            Config::BmcKind => "bmc+kind",
            Config::WithPdr => "+pdr",
            Config::Full => "full",
        }
    }
}

fn run(id: &str, config: Config) -> VerificationReport {
    let case = by_id(id).expect("case");
    let ft = build_testbench(&case);
    let mut options = default_check_options(&case, Variant::Fixed);
    options.disable_explicit = config != Config::Full;
    options.disable_pdr = config == Config::BmcKind;
    if config != Config::Full {
        // Keep the no-fallback configurations within a reasonable time
        // budget — and identical between `bmc+kind` and `+pdr`, so the
        // unknown-count comparison below isolates PDR's contribution.
        options.bmc = BmcOptions {
            max_depth: 15,
            max_induction: 10,
        };
        options.liveness_bmc = BmcOptions {
            max_depth: 10,
            max_induction: 6,
        };
    }
    let design = elaborated(&case, Variant::Fixed);
    let start = Instant::now();
    let report = verify_elaborated(&design, &ft, &options).expect("verification runs");
    let (proven, violated, covered, unknown) = status_counts(&report);
    println!(
        "{:<4} {:<28} {:<9} {:>9.1?}  proven {:>2}  violated {:>2}  covered {:>2}  unknown {:>2}  proof rate {:>3.0}%",
        case.id,
        case.title,
        config.label(),
        start.elapsed(),
        proven,
        violated,
        covered,
        unknown,
        report.proof_rate() * 100.0
    );
    report
}

/// Runs the whole corpus (fixed variants, plus buggy where one exists)
/// under one orchestrator configuration; returns the total checking
/// wall-clock and per-run summary tuples for cross-config comparison.
fn corpus_run(
    label: &str,
    configure: impl Fn(&mut CheckOptions),
) -> (Duration, Vec<(usize, usize, usize, usize)>) {
    let mut total = Duration::ZERO;
    let mut summaries = Vec::new();
    for case in all_cases() {
        let variants: &[Variant] = if case.has_bug_parameter {
            &[Variant::Fixed, Variant::Buggy]
        } else {
            &[Variant::Fixed]
        };
        for &variant in variants {
            let ft = build_testbench(&case);
            let design = elaborated(&case, variant);
            let mut options = default_check_options(&case, variant);
            configure(&mut options);
            let start = Instant::now();
            let report = verify_elaborated(&design, &ft, &options).expect("verification runs");
            total += start.elapsed();
            summaries.push(status_counts(&report));
        }
    }
    println!("{label:<32} {total:>9.1?} total");
    (total, summaries)
}

fn orchestrator_ablation() {
    println!(
        "\nOrchestrator ablation: sequential vs. parallel(COI) vs. parallel+cache, full corpus"
    );
    println!("{:-<130}", "");
    let (seq_time, seq_counts) = corpus_run("sequential, full model", |o| {
        o.parallel.threads = 1;
        o.parallel.slice = false;
    });
    let (par_time, par_counts) = corpus_run("parallel, COI slices", |_| {});
    let cache = ProofCache::new();
    let (cold_time, cold_counts) = {
        let cache = cache.clone();
        corpus_run("parallel + cache (cold)", move |o| {
            o.parallel.cache = Some(cache.clone());
        })
    };
    let (warm_time, warm_counts) = {
        let cache = cache.clone();
        corpus_run("parallel + cache (warm)", move |o| {
            o.parallel.cache = Some(cache.clone());
        })
    };
    println!("{:-<130}", "");
    let stats = cache.stats();
    println!(
        "cache: {} entries, {} hits / {} misses / {} inserts / {} rejected",
        cache.len(),
        stats.hits,
        stats.misses,
        stats.insertions,
        stats.rejected
    );
    println!(
        "speedup: parallel {:.2}x over sequential, warm cache {:.2}x over cold",
        seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9),
        cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9),
    );

    // Regression guards: every configuration reaches the same verdicts, and
    // the cached re-run must beat the cold run (it answers from validated
    // cache entries instead of re-running the engines).
    assert_eq!(
        seq_counts, par_counts,
        "sequential and parallel runs disagree on corpus verdicts"
    );
    assert_eq!(
        cold_counts, warm_counts,
        "cache hits changed corpus verdicts"
    );
    assert!(
        warm_time < cold_time,
        "cached re-run ({warm_time:?}) must be faster than the cold run ({cold_time:?})"
    );
    assert_eq!(stats.rejected, 0, "cache entries failed re-validation");
}

fn main() {
    // `cargo bench ... -- --test` passes `--test`: this harness always runs
    // one verification per configuration (no statistical measurement), so
    // the flag needs no special handling beyond being accepted.
    let _ = std::env::args().find(|a| a == "--test");

    println!("Engine ablation: bounded engines vs. +PDR vs. the full cascade");
    println!("{:-<130}", "");
    for id in ["A1", "A2", "O1", "O2"] {
        let bounded = run(id, Config::BmcKind);
        let with_pdr = run(id, Config::WithPdr);
        let full = run(id, Config::Full);

        // Regression guards: the full cascade decides everything, and
        // adding PDR (with otherwise identical bounds) must never lose a
        // verdict the bounded engines had.
        let (_, _, _, unknown_full) = status_counts(&full);
        assert_eq!(
            unknown_full, 0,
            "{id}: the full cascade left properties undecided"
        );
        let (_, _, _, unknown_bounded) = status_counts(&bounded);
        let (_, _, _, unknown_pdr) = status_counts(&with_pdr);
        assert!(
            unknown_pdr <= unknown_bounded,
            "{id}: PDR lost verdicts the bounded engines had"
        );

        if id == "O2" {
            // The scaled L1.5 miss-path proof is the cliff PDR exists to
            // remove: it must be closed by a PDR invariant, not by the
            // explicit engine.
            let had = full
                .results
                .iter()
                .find(|r| r.name.contains("l15_miss_had_a_request"))
                .expect("monitor property exists");
            assert!(
                matches!(had.status.proof(), Some(Proof::Invariant { .. })),
                "O2 had_a_request must be closed by PDR, got {:?}",
                had.status
            );
        }
    }
    println!("{:-<130}", "");
    println!(
        "note: `unknown` under bmc+kind marks the reachability-dependent proofs; the PDR column closes them without the explicit cliff."
    );

    orchestrator_ablation();
}
