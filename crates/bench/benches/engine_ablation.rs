//! Ablation of the verification-engine portfolio.
//!
//! The checker layers four engines: shallow BMC (short counterexamples),
//! k-induction (cheap proofs), IC3/PDR (reachability-dependent proofs with
//! invariant certificates), and the exact explicit-state engine (last-resort
//! fallback, exponential in the latch count).  This harness verifies the
//! proof-heavy designs under three configurations to show what each layer
//! contributes — and asserts the portfolio's guarantees, so a cascade
//! regression fails this bench (CI runs it with `-- --test` as the engine
//! smoke check).
//!
//! Run with `cargo bench -p autosva-bench --bench engine_ablation`.

use autosva_bench::{build_testbench, default_check_options, status_counts};
use autosva_designs::{by_id, elaborated, Variant};
use autosva_formal::bmc::BmcOptions;
use autosva_formal::checker::{verify_elaborated, Proof, VerificationReport};
use std::time::Instant;

#[derive(Clone, Copy, PartialEq)]
enum Config {
    /// Bounded engines only.
    BmcKind,
    /// Bounded engines + PDR.
    WithPdr,
    /// The full cascade (BMC → k-induction → PDR → explicit).
    Full,
}

impl Config {
    fn label(self) -> &'static str {
        match self {
            Config::BmcKind => "bmc+kind",
            Config::WithPdr => "+pdr",
            Config::Full => "full",
        }
    }
}

fn run(id: &str, config: Config) -> VerificationReport {
    let case = by_id(id).expect("case");
    let ft = build_testbench(&case);
    let mut options = default_check_options(&case, Variant::Fixed);
    options.disable_explicit = config != Config::Full;
    options.disable_pdr = config == Config::BmcKind;
    if config != Config::Full {
        // Keep the no-fallback configurations within a reasonable time
        // budget — and identical between `bmc+kind` and `+pdr`, so the
        // unknown-count comparison below isolates PDR's contribution.
        options.bmc = BmcOptions {
            max_depth: 15,
            max_induction: 10,
        };
        options.liveness_bmc = BmcOptions {
            max_depth: 10,
            max_induction: 6,
        };
    }
    let design = elaborated(&case, Variant::Fixed);
    let start = Instant::now();
    let report = verify_elaborated(&design, &ft, &options).expect("verification runs");
    let (proven, violated, covered, unknown) = status_counts(&report);
    println!(
        "{:<4} {:<28} {:<9} {:>9.1?}  proven {:>2}  violated {:>2}  covered {:>2}  unknown {:>2}  proof rate {:>3.0}%",
        case.id,
        case.title,
        config.label(),
        start.elapsed(),
        proven,
        violated,
        covered,
        unknown,
        report.proof_rate() * 100.0
    );
    report
}

fn main() {
    // `cargo bench ... -- --test` passes `--test`: this harness always runs
    // one verification per configuration (no statistical measurement), so
    // the flag needs no special handling beyond being accepted.
    let _ = std::env::args().find(|a| a == "--test");

    println!("Engine ablation: bounded engines vs. +PDR vs. the full cascade");
    println!("{:-<130}", "");
    for id in ["A1", "A2", "O1", "O2"] {
        let bounded = run(id, Config::BmcKind);
        let with_pdr = run(id, Config::WithPdr);
        let full = run(id, Config::Full);

        // Regression guards: the full cascade decides everything, and
        // adding PDR (with otherwise identical bounds) must never lose a
        // verdict the bounded engines had.
        let (_, _, _, unknown_full) = status_counts(&full);
        assert_eq!(
            unknown_full, 0,
            "{id}: the full cascade left properties undecided"
        );
        let (_, _, _, unknown_bounded) = status_counts(&bounded);
        let (_, _, _, unknown_pdr) = status_counts(&with_pdr);
        assert!(
            unknown_pdr <= unknown_bounded,
            "{id}: PDR lost verdicts the bounded engines had"
        );

        if id == "O2" {
            // The scaled L1.5 miss-path proof is the cliff PDR exists to
            // remove: it must be closed by a PDR invariant, not by the
            // explicit engine.
            let had = full
                .results
                .iter()
                .find(|r| r.name.contains("l15_miss_had_a_request"))
                .expect("monitor property exists");
            assert!(
                matches!(had.status.proof(), Some(Proof::Invariant { .. })),
                "O2 had_a_request must be closed by PDR, got {:?}",
                had.status
            );
        }
    }
    println!("{:-<130}", "");
    println!(
        "note: `unknown` under bmc+kind marks the reachability-dependent proofs; the PDR column closes them without the explicit cliff."
    );
}
