//! Front-end smoke: parse and elaborate every corpus design (both variants)
//! plus the struct-port demo and its hand-flattened twin, in one fresh
//! process, failing on any diagnostic.
//!
//! This is the CI "Front-end smoke" step: it exercises the lexer, parser
//! (struct/enum typedefs, package-scoped types, member access), the type
//! table, and the per-output instance elaborator on every design the repo
//! ships — without the engine cascade, so front-end regressions fail in
//! seconds with the rendered diagnostic instead of a downstream test.

use autosva_designs::{all_cases, struct_demo_sources, Variant};
use autosva_formal::elab::{elaborate, ElabOptions};
use std::process::ExitCode;

fn check(label: &str, top: &str, source: &str, params: Vec<(String, u128)>) -> Result<(), String> {
    let file = svparse::parse(source)
        .map_err(|e| format!("{label}: parse error:\n{}", e.render(source)))?;
    let design = elaborate(
        &file,
        &ElabOptions {
            top: Some(top.to_string()),
            params,
            ..ElabOptions::default()
        },
    )
    .map_err(|e| format!("{label}: {}", e.render(source)))?;
    println!(
        "  {label:14} {:3} inputs, {:3} latches, {:5} gates",
        design.aig.num_inputs(),
        design.aig.num_latches(),
        design.aig.num_ands()
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut failures = 0usize;
    println!("Front-end smoke: parse + elaborate every shipped design");
    for case in all_cases() {
        let variants: &[Variant] = if case.has_bug_parameter {
            &[Variant::Fixed, Variant::Buggy]
        } else {
            &[Variant::Fixed]
        };
        for &variant in variants {
            let label = format!("{} ({variant:?})", case.id);
            if let Err(e) = check(&label, case.module, case.source, case.params(variant)) {
                eprintln!("FAIL {e}");
                failures += 1;
            }
        }
    }
    for (label, top, source) in struct_demo_sources() {
        if let Err(e) = check(label, top, source, Vec::new()) {
            eprintln!("FAIL {e}");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("front-end smoke: {failures} design(s) failed");
        return ExitCode::FAILURE;
    }
    println!("front-end smoke: all designs parse and elaborate cleanly");
    ExitCode::SUCCESS
}
