//! Fuzz smoke: the pre-cascade stimulus fuzzer **alone** — every SAT engine
//! disabled — must find every shallow Table III buggy-variant safety
//! violation within its default budget, report it with `engine: fuzz`
//! provenance, and dump a standards-conformant VCD waveform for it.
//!
//! Ground truth comes from a fuzz-off run of the full cascade in the same
//! process: the set of violated non-liveness assertions there is exactly
//! the set the fuzzer must reproduce.  Fixed variants ride along as the
//! no-false-positives half: the replay-confirmed fuzzer must stay silent on
//! them.
//!
//! ```sh
//! cargo run --release -p autosva-bench --example fuzz_smoke -- /tmp/fuzz-vcd
//! ```

use autosva::sva::{Directive, PropertyClass};
use autosva_bench::{build_testbench, default_check_options};
use autosva_designs::{all_cases, elaborated, Variant};
use autosva_formal::checker::{verify_elaborated, VerificationReport};
use autosva_formal::vcd;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Instant;

/// Names of the violated safety-side assertions (everything the fuzzer is
/// in scope for: assert directive, non-liveness class).
fn safety_violations(report: &VerificationReport) -> BTreeSet<String> {
    report
        .results
        .iter()
        .filter(|r| {
            r.directive == Directive::Assert
                && r.class != PropertyClass::Liveness
                && r.status.is_violation()
        })
        .map(|r| r.name.clone())
        .collect()
}

fn main() {
    let vcd_root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            eprintln!("usage: fuzz_smoke <vcd-dir>");
            std::process::exit(2);
        });
    let _ = std::fs::remove_dir_all(&vcd_root);

    let start = Instant::now();
    let mut bugs_found = 0usize;
    let mut waveforms = 0usize;
    for case in all_cases() {
        let variants: &[Variant] = if case.has_bug_parameter {
            &[Variant::Fixed, Variant::Buggy]
        } else {
            &[Variant::Fixed]
        };
        for &variant in variants {
            let ft = build_testbench(&case);
            let design = elaborated(&case, variant);

            // Ground truth: the full SAT cascade, fuzz off.
            let mut full = default_check_options(&case, variant);
            full.fuzz.enabled = false;
            let truth = verify_elaborated(&design, &ft, &full).expect("full cascade runs");
            let expected = safety_violations(&truth);

            // Fuzzer alone: every SAT engine off, waveforms on.
            let vcd_dir = vcd_root.join(format!("{}_{variant:?}", case.id));
            let mut fuzz_only = default_check_options(&case, variant);
            fuzz_only.disable_bmc = true;
            fuzz_only.disable_pdr = true;
            fuzz_only.disable_explicit = true;
            fuzz_only.vcd.dir = Some(vcd_dir.clone());
            let fuzzed =
                verify_elaborated(&design, &ft, &fuzz_only).expect("fuzz-only run succeeds");
            let found = safety_violations(&fuzzed);

            assert_eq!(
                found,
                expected,
                "{} ({variant:?}): fuzz-only safety violations diverge from the \
                 full cascade's\n--- fuzz-only ---\n{}\n--- full cascade ---\n{}",
                case.id,
                fuzzed.render(),
                truth.render()
            );
            for r in &fuzzed.results {
                if r.status.is_violation() {
                    assert_eq!(
                        r.engine,
                        Some("fuzz"),
                        "{} ({variant:?}): {} lacks fuzz provenance",
                        case.id,
                        r.name
                    );
                    let path = vcd_dir.join(vcd::file_name(&fuzzed.dut, &r.name));
                    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                        panic!("{}: missing waveform {}: {e}", case.id, path.display())
                    });
                    let summary = vcd::validate(&text).unwrap_or_else(|e| {
                        panic!("{}: {} fails validation: {e}", case.id, path.display())
                    });
                    assert!(summary.timestamps >= 2 && summary.vars >= 2);
                    waveforms += 1;
                }
            }
            bugs_found += found.len();
            println!(
                "{:12} {variant:?}: {} safety violation(s) by fuzz alone",
                case.id,
                found.len()
            );
        }
    }
    assert!(
        bugs_found > 0,
        "the buggy corpus must contain fuzzable safety violations"
    );
    assert_eq!(waveforms, bugs_found, "one waveform per violation");
    eprintln!(
        "fuzz_smoke: {bugs_found} bug(s), {waveforms} waveform(s) in {:.1?}",
        start.elapsed()
    );
}
