//! Debug driver: run every Table III case and print the detailed reports.
//!
//! Usage: `cargo run --release -p autosva-bench --example table3_debug [ID]`

use autosva_bench::run_case;
use autosva_designs::{all_cases, Variant};

fn main() {
    let filter = std::env::args().nth(1);
    for case in all_cases() {
        if let Some(f) = &filter {
            if &case.id.to_string() != f && case.module != f {
                continue;
            }
        }
        let variants: &[Variant] = if case.has_bug_parameter {
            &[Variant::Buggy, Variant::Fixed]
        } else {
            &[Variant::Fixed]
        };
        for &variant in variants {
            let t0 = std::time::Instant::now();
            let run = run_case(&case, variant);
            println!(
                "==== {} ({:?}) in {:.1?} ====",
                case.id,
                variant,
                t0.elapsed()
            );
            println!("{}", run.report.render());
            println!("{}", run.table_row());
            if filter.is_some() {
                for r in &run.report.results {
                    if let Some(trace) = r.status.trace() {
                        if r.status.is_violation() {
                            println!("--- trace for {} ---\n{}", r.name, trace.render(true));
                        }
                    }
                }
            }
        }
    }
}
