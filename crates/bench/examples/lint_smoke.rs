//! Lint smoke: the design lint over every shipped design in a fresh
//! process.
//!
//! Two assertions, mirroring the lint's two contracts:
//!
//! 1. the clean corpus — all seven Table III designs in both variants plus
//!    the struct-port demos — produces **zero** findings (the conservative
//!    inference stays noise-free);
//! 2. `lint_demo.sv` reproduces its golden machine-readable report, which
//!    this program prints to stdout so CI can diff it against
//!    `crates/designs/golden/lint_demo.json`.
//!
//! ```sh
//! cargo run --release -p autosva-bench --example lint_smoke > lint-demo.json
//! diff lint-demo.json crates/designs/golden/lint_demo.json
//! ```

use autosva::{generate_ft, AutosvaOptions};
use autosva_bench::build_testbench;
use autosva_designs::{all_cases, elaborated, lint_demo_source, struct_demo_sources, Variant};
use autosva_formal::compile::compile;
use autosva_formal::elab::{elaborate, ElabDesign, ElabOptions};
use autosva_formal::lint::{self, LintOptions, LintReport};

fn lint_source(module: &str, source: &str) -> (ElabDesign, LintReport) {
    let ft = generate_ft(source, &AutosvaOptions::default())
        .unwrap_or_else(|e| panic!("{module}: testbench generation failed: {e}"));
    let file = svparse::parse(source).unwrap_or_else(|e| panic!("{module}: {}", e.render(source)));
    let design = elaborate(
        &file,
        &ElabOptions {
            top: Some(module.to_string()),
            ..ElabOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{module}: elaboration failed: {e}"));
    let compiled = compile(&design, &ft).unwrap_or_else(|e| panic!("{module}: compile: {e}"));
    let report = lint::run(
        &design,
        &compiled,
        &ft,
        Some(source),
        &LintOptions::default(),
    );
    (design, report)
}

fn main() {
    // Contract 1: the clean corpus lints without findings.
    let mut designs = 0usize;
    for case in all_cases() {
        for variant in [Variant::Buggy, Variant::Fixed] {
            if variant == Variant::Buggy && !case.has_bug_parameter {
                continue;
            }
            let design = elaborated(&case, variant);
            let ft = build_testbench(&case);
            let compiled =
                compile(&design, &ft).unwrap_or_else(|e| panic!("{}: compile: {e}", case.id));
            let report = lint::run(
                &design,
                &compiled,
                &ft,
                Some(case.source),
                &LintOptions::default(),
            );
            assert!(
                report.is_empty(),
                "{} {:?} should lint clean but reported:\n{}",
                case.id,
                variant,
                report.render()
            );
            designs += 1;
        }
    }
    for (label, module, source) in struct_demo_sources() {
        let (_, report) = lint_source(module, source);
        assert!(
            report.is_empty(),
            "{label} should lint clean but reported:\n{}",
            report.render()
        );
        designs += 1;
    }
    eprintln!("lint_smoke: {designs} clean designs, 0 findings");

    // Contract 2: the demo's machine-readable report, for the golden diff.
    let (label, module, source) = lint_demo_source();
    let (_, report) = lint_source(module, source);
    eprintln!(
        "lint_smoke: {label}: {} findings ({} errors)",
        report.findings.len(),
        report.error_count()
    );
    print!("{}", report.to_json());
}
