//! Fault smoke: the containment contract end-to-end, against the real
//! Table III corpus, with the fault-injection harness armed.
//!
//! For every fixed-variant design the example runs the checker twice: once
//! fault-free, once with **one armed panic site** (`bmc.depth_step`,
//! filtered to one safety assertion) and **one forced timeout**
//! (`fuzz.round`, filtered to another).  It then asserts the degradation
//! contract the fault-containment layer promises:
//!
//! * the process exits 0 — no panic escapes `verify`, the report always
//!   renders;
//! * the panic target degrades to exactly `ERROR in bmc: fault injected
//!   at bmc.depth_step`;
//! * the timeout target degrades to exactly `unknown` with the
//!   `undecided: budget exhausted in fuzz` note;
//! * every *other* property's rendered verdict is byte-identical to the
//!   fault-free run.
//!
//! ```sh
//! cargo run --release -p autosva-bench --features fault-injection --example fault_smoke
//! ```

use autosva::sva::Directive;
use autosva::PropertyClass;
use autosva_bench::{build_testbench, default_check_options};
use autosva_designs::{all_cases, elaborated, Variant};
use autosva_formal::checker::{
    verify_elaborated, PropertyResult, PropertyStatus, VerificationReport,
};
use autosva_formal::faults::{self, FaultAction};
use std::time::Instant;

/// The per-property content `render()` emits (status, proof artifact,
/// cone sizes, note) — comparing it is comparing the rendered verdict.
fn rendered_verdict(r: &PropertyResult) -> String {
    let mut s = r.status.to_string();
    if let PropertyStatus::Proven(proof) = &r.status {
        s.push_str(&format!(" [{}]", proof.describe()));
    }
    if !matches!(r.status, PropertyStatus::NotChecked(_)) {
        s.push_str(&format!(
            " (cone {} latches, {} gates)",
            r.slice_latches, r.slice_gates
        ));
    }
    if let Some(note) = &r.note {
        s.push_str(&format!(" note: {note}"));
    }
    s
}

fn safety_assertions(report: &VerificationReport) -> Vec<String> {
    report
        .results
        .iter()
        .filter(|r| r.directive == Directive::Assert && r.class == PropertyClass::Safety)
        .map(|r| r.name.clone())
        .collect()
}

fn row<'a>(report: &'a VerificationReport, name: &str) -> &'a PropertyResult {
    report
        .results
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("property `{name}` missing from the report"))
}

fn main() {
    // The injected panics are the point of this smoke test; keep their
    // backtraces out of the CI log.  Anything else (a genuine assertion
    // failure included) still reports through the default hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("fault injected at "));
        if !injected {
            default_hook(info);
        }
    }));

    let start = Instant::now();
    let mut cases_checked = 0usize;
    for case in all_cases() {
        let ft = build_testbench(&case);
        let options = default_check_options(&case, Variant::Fixed);
        let design = elaborated(&case, Variant::Fixed);
        let baseline = verify_elaborated(&design, &ft, &options)
            .unwrap_or_else(|e| panic!("{}: fault-free verification failed: {e}", case.id));

        let targets = safety_assertions(&baseline);
        let [panic_target, timeout_target, ..] = targets.as_slice() else {
            // A corpus case with fewer than two safety assertions cannot
            // host both faults; nothing to smoke-test here.
            continue;
        };

        let faulty = {
            let _panic_arm = faults::arm(
                "bmc.depth_step",
                FaultAction::Panic,
                Some(panic_target.as_str()),
            );
            let _timeout_arm = faults::arm(
                "fuzz.round",
                FaultAction::Timeout,
                Some(timeout_target.as_str()),
            );
            verify_elaborated(&design, &ft, &options)
                .unwrap_or_else(|e| panic!("{}: armed verification failed: {e}", case.id))
        };

        // The report still renders, crash included.
        let text = faulty.render();
        assert!(
            text.contains("ERROR in bmc: fault injected at bmc.depth_step"),
            "{}: report does not surface the contained panic:\n{text}",
            case.id
        );

        // Exactly the two targeted properties degrade, exactly as promised.
        let panicked = row(&faulty, panic_target);
        assert_eq!(
            panicked.status,
            PropertyStatus::Error {
                engine: "bmc",
                message: "fault injected at bmc.depth_step".to_string(),
            },
            "{}: panic target `{panic_target}` has the wrong verdict",
            case.id
        );
        let timed_out = row(&faulty, timeout_target);
        assert_eq!(
            timed_out.status,
            PropertyStatus::Unknown,
            "{}: timeout target `{timeout_target}` has the wrong verdict",
            case.id
        );
        assert_eq!(
            timed_out.note.as_deref(),
            Some("undecided: budget exhausted in fuzz"),
            "{}: timeout target `{timeout_target}` lacks the budget note",
            case.id
        );

        // Everything else is byte-identical to the fault-free run.
        assert_eq!(baseline.results.len(), faulty.results.len());
        for (b, f) in baseline.results.iter().zip(&faulty.results) {
            assert_eq!(b.name, f.name, "{}: property order changed", case.id);
            if &b.name == panic_target || &b.name == timeout_target {
                continue;
            }
            assert_eq!(
                rendered_verdict(b),
                rendered_verdict(f),
                "{}: fault leaked into non-target property `{}`",
                case.id,
                b.name
            );
        }
        cases_checked += 1;
        println!(
            "{:3}: panic contained in `{panic_target}`, timeout contained in `{timeout_target}`, \
             {} other verdicts unchanged",
            case.id,
            baseline.results.len() - 2
        );
    }
    assert!(
        cases_checked > 0,
        "no corpus case had two safety assertions"
    );
    println!(
        "fault smoke: {cases_checked} case(s) degraded gracefully in {:.1?}",
        start.elapsed()
    );
}
