//! Portfolio smoke: the clause-sharing portfolio race end to end, in a
//! fresh process.  Two halves:
//!
//! - **Direct race exercise** — two deterministic hard BMC instances (a
//!   pigeonhole refutation and an unsatisfiable phase-transition 3-SAT
//!   formula) through [`race_safety_budgeted`]: the race must agree with
//!   the plain single-solver loop on the verdict, clauses must actually
//!   cross the shared pool in both directions (exported *and* imported),
//!   and the shared race must need strictly fewer summed conflicts than
//!   the same race run dry (glue bound 0 filters every export).
//! - **Checker-level race exercise** — the full cascade only races
//!   properties that survive quick BMC, PDR and the explicit engine, and
//!   every Table III property is decided before that point.  To prove the
//!   checker genuinely routes hard properties through the portfolio, O2
//!   (whose scaled L1.5 miss-path proof is reachability-dependent) runs
//!   with PDR and the explicit engine disabled: the undecided properties
//!   fall through to the full-depth race, the
//!   `sharing.{exported,imported}` telemetry counters must fire, and the
//!   report must stay byte-identical to the same bounded cascade with
//!   sharing off.
//! - **Corpus determinism contract** — every Table III case/variant
//!   verifies with sharing off, with sharing on (the default), and with
//!   sharing on sequentially (`threads = 1`); all three must render
//!   byte-identical reports.
//!
//! ```sh
//! cargo run --release -p autosva-bench --example portfolio_smoke
//! ```

use autosva_bench::{build_testbench, default_check_options};
use autosva_designs::{all_cases, Variant};
use autosva_formal::aig::{Aig, Lit};
use autosva_formal::bmc::{
    check_safety_budgeted, race_safety_budgeted, BmcOptions, RaceOptions, SafetyResult,
};
use autosva_formal::checker::verify;
use autosva_formal::interrupt::Interrupt;
use autosva_formal::model::{BadProperty, Model};
use autosva_formal::portfolio::{racer_configs, SharingOptions};
use autosva_formal::sat::SolverConfig;
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// Pigeonhole: `holes + 1` pigeons, bad = "every pigeon sits somewhere
/// and no hole holds two" — combinationally unsatisfiable, a hard
/// resolution instance at every BMC frame.
fn php_model(holes: usize) -> Model {
    let mut aig = Aig::new();
    let p: Vec<Vec<Lit>> = (0..holes + 1)
        .map(|i| {
            (0..holes)
                .map(|j| aig.add_input(format!("p_{i}_{j}")))
                .collect()
        })
        .collect();
    let mut bad = Lit::TRUE;
    for row in &p {
        let mut somewhere = Lit::FALSE;
        for &l in row {
            somewhere = aig.or(somewhere, l);
        }
        bad = aig.and(bad, somewhere);
    }
    for hole in 0..holes {
        for (i1, row1) in p.iter().enumerate() {
            for row2 in p.iter().skip(i1 + 1) {
                let both = aig.and(row1[hole], row2[hole]);
                bad = aig.and(bad, both.invert());
            }
        }
    }
    let mut model = Model::new(aig);
    model.bads.push(BadProperty {
        name: "php_bad".into(),
        lit: bad,
    });
    model
}

/// Random 3-SAT as a depth-0 BMC instance: variables become inputs, bad
/// = the conjunction of all clauses.
fn threesat_model(seed: u64, num_vars: usize, num_clauses: usize) -> Model {
    let mut aig = Aig::new();
    let vars: Vec<Lit> = (0..num_vars)
        .map(|i| aig.add_input(format!("x{i}")))
        .collect();
    let mut state = (seed ^ ((num_vars as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut bad = Lit::TRUE;
    for _ in 0..num_clauses {
        let mut clause = Lit::FALSE;
        for _ in 0..3 {
            let v = vars[(next() % num_vars as u64) as usize];
            clause = aig.or(clause, v.invert_if(next() % 2 != 0));
        }
        bad = aig.and(bad, clause);
    }
    let mut model = Model::new(aig);
    model.bads.push(BadProperty {
        name: "threesat_bad".into(),
        lit: bad,
    });
    model
}

/// Race verdicts compare by kind and depth: a `Violated` trace is a
/// genuine but not necessarily canonical assignment.
fn verdict_kind(result: &SafetyResult) -> (u8, usize) {
    match result {
        SafetyResult::Proven { induction_depth } => (0, *induction_depth),
        SafetyResult::Violated(trace) => (1, trace.len()),
        SafetyResult::Unknown { explored_depth } => (2, *explored_depth),
        SafetyResult::Interrupted => (3, 0),
    }
}

fn race_exercise(label: &str, model: &Model) {
    let options = BmcOptions {
        max_depth: 0,
        max_induction: 0,
    };
    let (single, _) = check_safety_budgeted(
        model,
        0,
        &options,
        SolverConfig::default(),
        &Interrupt::none(),
    );
    let race = RaceOptions {
        configs: racer_configs(SolverConfig::default(), 3),
        quantum: 1024,
        glue_bound: 4,
        lemmas: Vec::new(),
        seeds: HashMap::new(),
        pools: None,
    };
    let (shared_verdict, shared_stats, traffic) =
        race_safety_budgeted(model, 0, &options, &race, &Interrupt::none());
    let dry = RaceOptions {
        glue_bound: 0,
        ..race
    };
    let (dry_verdict, dry_stats, _) =
        race_safety_budgeted(model, 0, &options, &dry, &Interrupt::none());

    assert_eq!(
        verdict_kind(&single),
        verdict_kind(&shared_verdict),
        "{label}: the race disagrees with the single-solver loop"
    );
    assert_eq!(
        verdict_kind(&shared_verdict),
        verdict_kind(&dry_verdict),
        "{label}: sharing changed the race verdict"
    );
    assert!(
        traffic.exported > 0,
        "{label}: no learnt clause was exported to the pool"
    );
    assert!(
        traffic.imported > 0,
        "{label}: no shared clause was imported by a racer"
    );
    assert!(
        shared_stats.conflicts < dry_stats.conflicts,
        "{label}: sharing did not reduce the portfolio's summed conflicts \
         (shared {} vs. dry {})",
        shared_stats.conflicts,
        dry_stats.conflicts
    );
    println!(
        "{label:<18} shared {:>6} conflicts vs. dry {:>6} ({:.2}x) — exported {:>5}, imported {:>5}, filtered {:>5}",
        shared_stats.conflicts,
        dry_stats.conflicts,
        dry_stats.conflicts as f64 / shared_stats.conflicts.max(1) as f64,
        traffic.exported,
        traffic.imported,
        traffic.filtered
    );
}

/// The checker-level exercise: O2 with PDR and the explicit engine
/// disabled, so its reachability-dependent properties fall through to
/// the full-depth portfolio race.  Returns the summed `sharing.*`
/// counters of the instrumented run.
fn checker_race_exercise() -> BTreeMap<String, u64> {
    let case = autosva_designs::by_id("O2").expect("O2 exists");
    let ft = build_testbench(&case);
    let bounded = |sharing: SharingOptions| {
        let mut options = default_check_options(&case, Variant::Fixed);
        options.disable_pdr = true;
        options.disable_explicit = true;
        options.bmc = BmcOptions {
            max_depth: 15,
            max_induction: 10,
        };
        options.sharing = sharing;
        options
    };

    let off_render = verify(case.source, &ft, &bounded(SharingOptions::disabled()))
        .expect("sharing-off bounded run")
        .render();
    // A fine turn quantum: with the 2048-conflict default the lead racer
    // decides O2's bounded queries within its first turn and the other
    // racers never run, so nothing would be imported.  Quantum 8 is well
    // below the per-query conflict counts, so the solve-exit tail charge
    // preempts the leader between queries and the siblings genuinely
    // interleave.  The determinism contract must hold for *any* sharing
    // configuration, so the render comparison below is unweakened.
    let mut on = bounded(SharingOptions {
        quantum: 8,
        ..SharingOptions::default()
    });
    on.telemetry.enabled = true;
    let report = verify(case.source, &ft, &on).expect("sharing-on bounded run");
    assert_eq!(
        off_render,
        report.render(),
        "O2 bounded: sharing-on and sharing-off reports diverge"
    );

    let telemetry = report.telemetry.as_ref().expect("telemetry attached");
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    for &(name, value) in &telemetry.counters {
        if name.starts_with("sharing.") {
            *counters.entry(name.to_string()).or_insert(0) += value;
        }
    }
    let exported = counters.get("sharing.exported").copied().unwrap_or(0);
    let imported = counters.get("sharing.imported").copied().unwrap_or(0);
    assert!(
        exported > 0,
        "O2's undecided properties never exported a clause — is the race gate dead?"
    );
    assert!(
        imported > 0,
        "O2's undecided properties never imported a shared clause — are the pools wired up?"
    );
    println!(
        "O2, bounded cascade: report byte-identical to sharing-off; {}",
        counters
            .iter()
            .map(|(name, value)| format!("{name}={value}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    counters
}

fn main() {
    let start = Instant::now();

    println!("direct race exercise: 3-racer portfolio on deterministic hard instances");
    race_exercise("php(8,7)", &php_model(7));
    race_exercise("3sat(150,639) s2", &threesat_model(2, 150, 639));

    println!("\nchecker-level race exercise: O2 with the unbounded engines disabled");
    checker_race_exercise();

    println!("\ncorpus determinism contract: sharing off vs. on vs. on-sequential");
    let mut runs = 0usize;
    for case in all_cases() {
        let variants: &[Variant] = if case.has_bug_parameter {
            &[Variant::Fixed, Variant::Buggy]
        } else {
            &[Variant::Fixed]
        };
        for &variant in variants {
            let ft = build_testbench(&case);

            let mut off = default_check_options(&case, variant);
            off.sharing = SharingOptions::disabled();
            let off_render = verify(case.source, &ft, &off)
                .expect("sharing-off run")
                .render();

            let on = default_check_options(&case, variant);
            let on_render = verify(case.source, &ft, &on)
                .expect("sharing-on run")
                .render();
            assert_eq!(
                off_render, on_render,
                "{} ({variant:?}): sharing-on and sharing-off reports diverge",
                case.id
            );

            let mut sequential = default_check_options(&case, variant);
            sequential.parallel.threads = 1;
            let seq_render = verify(case.source, &ft, &sequential)
                .expect("sharing-on sequential run")
                .render();
            assert_eq!(
                off_render, seq_render,
                "{} ({variant:?}): the report depends on the thread count",
                case.id
            );

            runs += 1;
            println!("{:12} {variant:?}: reports byte-identical", case.id);
        }
    }

    eprintln!(
        "portfolio_smoke: {runs} corpus run(s) x 3 configurations in {:.1?}",
        start.elapsed()
    );
}
