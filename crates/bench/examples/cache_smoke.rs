//! Cache-persistence smoke: run the full corpus against an on-disk proof
//! cache, printing the (runtime-free) reports to stdout and cache counters
//! to stderr.
//!
//! CI runs this twice in **fresh processes** against the same cache
//! directory and diffs the stdout: the second (disk-warm) run must answer
//! from the spill file and render byte-identical reports.
//!
//! ```sh
//! cargo run --release -p autosva-bench --example cache_smoke -- /tmp/cache > cold.txt
//! cargo run --release -p autosva-bench --example cache_smoke -- /tmp/cache --expect-warm > warm.txt
//! diff cold.txt warm.txt
//! ```

use autosva_bench::{build_testbench, default_check_options};
use autosva_designs::{all_cases, elaborated, Variant};
use autosva_formal::checker::verify_elaborated;
use autosva_formal::portfolio::ProofCache;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = args.next().unwrap_or_else(|| {
        eprintln!("usage: cache_smoke <cache-dir> [--expect-warm]");
        std::process::exit(2);
    });
    let expect_warm = args.any(|a| a == "--expect-warm");

    let cache = ProofCache::open(&dir);
    if expect_warm {
        assert!(
            cache.stats().loaded > 0,
            "--expect-warm: no entries loaded from {dir} (was the cold run skipped?)"
        );
    }

    let start = Instant::now();
    for case in all_cases() {
        let variants: &[Variant] = if case.has_bug_parameter {
            &[Variant::Fixed, Variant::Buggy]
        } else {
            &[Variant::Fixed]
        };
        for &variant in variants {
            let ft = build_testbench(&case);
            let design = elaborated(&case, variant);
            let mut options = default_check_options(&case, variant);
            options.parallel.cache = Some(cache.clone());
            let report = verify_elaborated(&design, &ft, &options).expect("verification runs");
            // Runtime-free rendering only: stdout must be byte-identical
            // between the cold and the disk-warm process.
            print!("{}", report.render());
        }
    }
    cache.flush().expect("cache flush succeeds");

    let stats = cache.stats();
    eprintln!(
        "cache_smoke: {:.1?} checking, {} entries ({} loaded from disk), \
         {} hits / {} misses / {} inserts / {} rejected",
        start.elapsed(),
        cache.len(),
        stats.loaded,
        stats.hits,
        stats.misses,
        stats.insertions,
        stats.rejected
    );
    assert_eq!(stats.rejected, 0, "cache entries failed re-validation");
    if expect_warm {
        assert!(
            stats.hits > 0,
            "--expect-warm: the corpus never hit the disk-loaded cache"
        );
        assert_eq!(
            stats.insertions, 0,
            "--expect-warm: the corpus re-ran engines despite the warm cache"
        );
    }
}
