//! Telemetry smoke: the full Table III corpus through the front end and
//! cascade with telemetry on, in a fresh process.  For every case/variant
//! it asserts the observability contract end to end:
//!
//! - the Chrome trace sink is written and structurally valid (balanced
//!   begin/end pairs, per-track monotone timestamps), with one balanced
//!   span per recorded span;
//! - the JSON sink is written and embeds the deterministic subset
//!   verbatim;
//! - a second fresh run at a different thread count reproduces the
//!   deterministic subset byte-for-byte;
//! - `render()` is byte-identical to a telemetry-off run of the same
//!   design (observation must not perturb verdicts).
//!
//! Across the corpus, every pipeline phase the taxonomy promises must
//! have fired at least once — a silently dead probe fails here, not in a
//! dashboard three PRs later.
//!
//! ```sh
//! cargo run --release -p autosva-bench --example telemetry_smoke -- /tmp/autosva-telemetry
//! ```

use autosva_bench::{build_testbench, default_check_options};
use autosva_designs::{all_cases, Variant};
use autosva_formal::checker::verify;
use autosva_formal::telemetry::validate_chrome_trace;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

/// Phases that must appear somewhere in the corpus run.  `engine.explicit`
/// and `cache.lookup` are deliberately absent: the explicit engine is a
/// fallback the default cascade may never reach, and the default options
/// run without a proof cache.
const REQUIRED_PHASES: &[&str] = &[
    "parse",
    "elab",
    "compile",
    "lint",
    "slice",
    "opt",
    "opt.pass",
    "l2s",
    "task",
    "engine.fuzz",
    "fuzz.round",
    "engine.bmc",
    "bmc.solve",
    "engine.pdr",
    "pdr.solve",
];

fn main() {
    let out_root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            eprintln!("usage: telemetry_smoke <out-dir>");
            std::process::exit(2);
        });
    let _ = std::fs::remove_dir_all(&out_root);
    std::fs::create_dir_all(&out_root).expect("create output directory");

    let start = Instant::now();
    let mut phase_spans: BTreeMap<String, usize> = BTreeMap::new();
    let mut runs = 0usize;
    for case in all_cases() {
        let variants: &[Variant] = if case.has_bug_parameter {
            &[Variant::Fixed, Variant::Buggy]
        } else {
            &[Variant::Fixed]
        };
        for &variant in variants {
            let ft = build_testbench(&case);
            let tag = format!("{}_{variant:?}", case.id);
            let trace_path = out_root.join(format!("{tag}.trace.json"));
            let json_path = out_root.join(format!("{tag}.telemetry.json"));

            // Baseline: telemetry off.  Its rendered report is the
            // perturbation-freedom reference.
            let plain = default_check_options(&case, variant);
            let baseline = verify(case.source, &ft, &plain).expect("baseline run");

            // Instrumented run with both file sinks.
            let mut observed = default_check_options(&case, variant);
            observed.telemetry.enabled = true;
            observed.telemetry.trace_path = Some(trace_path.clone());
            observed.telemetry.json_path = Some(json_path.clone());
            let report = verify(case.source, &ft, &observed).expect("instrumented run");
            assert_eq!(
                baseline.render(),
                report.render(),
                "{tag}: telemetry perturbed the rendered report"
            );
            let telemetry = report.telemetry.as_ref().expect("telemetry attached");

            let trace = std::fs::read_to_string(&trace_path)
                .unwrap_or_else(|e| panic!("{tag}: trace sink missing: {e}"));
            let summary = validate_chrome_trace(&trace)
                .unwrap_or_else(|e| panic!("{tag}: invalid Chrome trace: {e}"));
            assert_eq!(
                summary.spans,
                telemetry.spans.len(),
                "{tag}: trace spans diverge from the report"
            );
            let json = std::fs::read_to_string(&json_path)
                .unwrap_or_else(|e| panic!("{tag}: JSON sink missing: {e}"));
            assert!(
                json.contains(telemetry.deterministic_json().trim_end()),
                "{tag}: JSON sink lacks the deterministic subset"
            );

            // Fresh sequential re-run: the deterministic subset must not
            // depend on the process, the sinks or the thread count.
            let mut sequential = default_check_options(&case, variant);
            sequential.telemetry.enabled = true;
            sequential.parallel.threads = 1;
            let rerun = verify(case.source, &ft, &sequential).expect("sequential re-run");
            assert_eq!(
                telemetry.deterministic_json(),
                rerun.telemetry.as_ref().unwrap().deterministic_json(),
                "{tag}: deterministic subset drifted across fresh runs"
            );

            for (phase, stat) in telemetry.phases() {
                *phase_spans.entry(phase.to_string()).or_insert(0) += stat.spans;
            }
            runs += 1;
            println!(
                "{:12} {variant:?}: {} span(s) on {} track(s), {} counter(s)",
                case.id,
                telemetry.spans.len(),
                summary.tracks,
                telemetry.counters.len()
            );
        }
    }

    for phase in REQUIRED_PHASES {
        let spans = phase_spans.get(*phase).copied().unwrap_or(0);
        assert!(
            spans > 0,
            "phase {phase:?} never fired across the corpus — dead probe?"
        );
    }
    let total: usize = phase_spans.values().sum();
    eprintln!(
        "telemetry_smoke: {runs} run(s), {total} span(s), {} phase(s) in {:.1?}",
        phase_spans.len(),
        start.elapsed()
    );
}
