//! Debug harness: print the O2 verification report with per-property runtimes.
use autosva_bench::run_case;
use autosva_designs::{by_id, Variant};

fn main() {
    let case = by_id("O2").unwrap();
    let run = run_case(&case, Variant::Fixed);
    println!("{}", run.report.render());
}
