//! `autosva-bench` — harness shared by the benchmarks, examples and
//! integration tests that regenerate the paper's evaluation.
//!
//! The harness ties the three layers of the reproduction together: it takes a
//! design from [`autosva_designs`], generates its formal testbench with
//! [`autosva`], runs the bundled model checker from [`autosva_formal`], and
//! summarizes the outcome in the same terms the paper uses (proof rate, bugs
//! found, counterexample trace length, annotation effort).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use autosva::sva::{Directive, PropertyBody, SvaProperty};
use autosva::{generate_ft, AutosvaOptions, FormalTestbench, PropertyClass};
use autosva_designs::{DesignCase, Variant};
use autosva_formal::bmc::BmcOptions;
use autosva_formal::checker::{
    verify_elaborated, CheckOptions, PropertyStatus, VerificationReport,
};
use std::time::{Duration, Instant};

/// Generates the formal testbench for a design case, including any
/// designer-added assumptions the paper describes for that module.
///
/// # Panics
///
/// Panics if the bundled design sources fail to generate (they are tested by
/// the corpus crate, so this indicates an internal inconsistency).
pub fn build_testbench(case: &DesignCase) -> FormalTestbench {
    let mut ft = generate_ft(case.source, &AutosvaOptions::default())
        .unwrap_or_else(|e| panic!("{}: testbench generation failed: {e}", case.id));
    for (i, assumption) in case.extra_assumptions.iter().enumerate() {
        let expr = svparse::parse_expr(assumption)
            .unwrap_or_else(|e| panic!("{}: bad extra assumption: {e}", case.id));
        ft.linked_properties.push(SvaProperty {
            name: format!("designer_assumption_{i}"),
            directive: Directive::Assume,
            class: PropertyClass::Safety,
            body: PropertyBody::Invariant(expr),
            xprop_only: false,
            transaction: "designer".to_string(),
        });
    }
    ft
}

/// Verification bounds used by the evaluation harness.
///
/// The designs of the corpus are small, so modest bounds are enough for every
/// proof and counterexample; they are exposed so the ablation benchmarks can
/// vary them.  The liveness lasso-search bound is *not* overridden here: it
/// comes from [`CheckOptions::default`] (`liveness_bmc`), so callers tune it
/// in one place — and an undecided liveness property carries the
/// bounded-search caveat in its report note.
pub fn default_check_options(case: &DesignCase, variant: Variant) -> CheckOptions {
    CheckOptions {
        elab: case.elab_options(variant),
        bmc: BmcOptions {
            max_depth: 25,
            max_induction: 10,
        },
        ..CheckOptions::default()
    }
}

/// The outcome of running one design/variant through the full flow.
#[derive(Debug, Clone)]
pub struct CaseRun {
    /// Paper identifier of the design.
    pub id: String,
    /// Table III title of the design.
    pub title: String,
    /// Which variant was verified.
    pub variant: Variant,
    /// Time spent generating the formal testbench.
    pub generation_time: Duration,
    /// Number of non-empty annotation lines the designer wrote.
    pub annotation_loc: usize,
    /// Number of unique generated properties.
    pub properties: usize,
    /// The full verification report.
    pub report: VerificationReport,
}

impl CaseRun {
    /// `true` when every checked assertion was proven.
    pub fn fully_proven(&self) -> bool {
        self.report.violations() == 0 && (self.report.proof_rate() - 1.0).abs() < f64::EPSILON
    }

    /// Names of the violated properties.
    pub fn violated_properties(&self) -> Vec<String> {
        self.report
            .results
            .iter()
            .filter(|r| r.status.is_violation())
            .map(|r| r.name.clone())
            .collect()
    }

    /// Length (in cycles) of the shortest counterexample, if any.
    pub fn shortest_cex(&self) -> Option<usize> {
        self.report
            .results
            .iter()
            .filter(|r| r.status.is_violation())
            .filter_map(|r| r.status.trace().map(|t| t.len()))
            .min()
    }

    /// Renders a one-line summary in the style of Table III.
    pub fn table_row(&self) -> String {
        let outcome = if self.report.violations() > 0 {
            let cex = self
                .report
                .first_violation()
                .and_then(|r| r.status.trace().map(|t| t.len()))
                .unwrap_or(0);
            format!(
                "bug found ({} CEX, shortest {} cycles)",
                self.report.violations(),
                cex
            )
        } else if self.fully_proven() {
            "100% properties proven".to_string()
        } else {
            format!("{:.0}% proven", self.report.proof_rate() * 100.0)
        };
        format!(
            "{:3} {:28} {:6} | {:3} props from {:2} LoC | {}",
            self.id,
            self.title,
            match self.variant {
                Variant::Buggy => "buggy",
                Variant::Fixed => "fixed",
            },
            self.properties,
            self.annotation_loc,
            outcome
        )
    }
}

/// Runs the full AutoSVA flow (annotation parsing, FT generation, model
/// checking) for one design case and variant.
///
/// The design is elaborated at most once per process and variant (see
/// [`autosva_designs::elaborated`]); repeated runs — the integration suites
/// verify most corpus designs several times — skip straight to checking.
pub fn run_case(case: &DesignCase, variant: Variant) -> CaseRun {
    let t0 = Instant::now();
    let ft = build_testbench(case);
    let generation_time = t0.elapsed();
    let stats = ft.stats();
    let options = default_check_options(case, variant);
    let design = autosva_designs::elaborated(case, variant);
    let report = verify_elaborated(&design, &ft, &options)
        .unwrap_or_else(|e| panic!("{}: verification failed: {e}", case.id));
    CaseRun {
        id: case.id.to_string(),
        title: case.title.to_string(),
        variant,
        generation_time,
        annotation_loc: stats.annotation_loc,
        properties: stats.properties,
        report,
    }
}

/// Convenience wrapper running [`run_case`] for the design looked up by id.
///
/// # Panics
///
/// Panics when the id does not exist in the corpus.
pub fn run_case_by_id(id: &str, variant: Variant) -> CaseRun {
    let case = autosva_designs::by_id(id).unwrap_or_else(|| panic!("unknown design case `{id}`"));
    run_case(&case, variant)
}

/// Returns the per-property status counts of a report as
/// `(proven, violated, covered, unknown)`.
pub fn status_counts(report: &VerificationReport) -> (usize, usize, usize, usize) {
    let mut proven = 0;
    let mut violated = 0;
    let mut covered = 0;
    let mut unknown = 0;
    for r in &report.results {
        match r.status {
            PropertyStatus::Proven(_) | PropertyStatus::Unreachable => proven += 1,
            PropertyStatus::Violated(_) => violated += 1,
            PropertyStatus::Covered(_) => covered += 1,
            // A fault-degraded property is undecided for scoring purposes.
            PropertyStatus::Unknown | PropertyStatus::Error { .. } => unknown += 1,
            PropertyStatus::NotChecked(_) => {}
        }
    }
    (proven, violated, covered, unknown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosva_designs::by_id;

    #[test]
    fn testbenches_generate_for_every_case() {
        for case in autosva_designs::all_cases() {
            let ft = build_testbench(&case);
            let stats = ft.stats();
            assert!(stats.properties > 0, "{}: no properties generated", case.id);
            assert!(stats.annotation_loc > 0, "{}: no annotations", case.id);
        }
    }

    #[test]
    fn extra_assumptions_are_attached() {
        let mmu = by_id("A3").unwrap();
        let ft = build_testbench(&mmu);
        assert!(ft
            .linked_properties
            .iter()
            .any(|p| p.name.starts_with("designer_assumption_")));
    }

    #[test]
    fn generation_is_fast() {
        // The paper reports sub-second testbench generation; the whole corpus
        // should generate well within a second.
        let t0 = std::time::Instant::now();
        for case in autosva_designs::all_cases() {
            let _ = build_testbench(&case);
        }
        assert!(t0.elapsed() < std::time::Duration::from_secs(1));
    }
}
