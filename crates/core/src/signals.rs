//! Auxiliary signal generation (Section III step 3 of the paper).
//!
//! The properties of Table II cannot all be expressed over interface signals
//! alone: tracking outstanding transactions needs counters, matching a
//! response to *its* request needs a symbolic (unconstrained) transaction-ID
//! variable, and data-integrity checks need sampling registers.  This module
//! defines the auxiliary-signal model shared by the SVA emitter and the
//! formal substrate.

use crate::annotation::WidthSpec;
use std::fmt;
use svparse::ast::Expr;
use svparse::pretty::print_expr;

/// Default width, in bits, of the outstanding-transaction counters.
///
/// The paper's generated code sizes these with a `TRANS_WIDTH` parameter; a
/// 4-bit counter (up to 15 outstanding transactions) matches the generated
/// testbenches of the AutoSVA repository.
pub const DEFAULT_COUNTER_WIDTH: u32 = 4;

/// How an auxiliary signal gets its value.
#[derive(Debug, Clone, PartialEq)]
pub enum AuxKind {
    /// A combinational alias: `wire name = def;`
    Wire {
        /// Defining expression.
        def: Expr,
    },
    /// A free symbolic variable: declared but never assigned, so a formal
    /// tool explores every value.  Constrained to be stable over time
    /// (`assume property ($stable(name))`), matching the generated code of
    /// the paper.
    Symbolic,
    /// An up/down counter register: increments when `incr` holds, decrements
    /// when `decr` holds, reset to zero.
    Counter {
        /// Increment condition.
        incr: Expr,
        /// Decrement condition.
        decr: Expr,
    },
    /// A sampling register: captures `value` when `enable` holds, otherwise
    /// keeps its previous value.  Reset to zero.
    Sample {
        /// Capture condition.
        enable: Expr,
        /// Captured expression.
        value: Expr,
    },
}

/// An auxiliary signal added by AutoSVA to the property file.
#[derive(Debug, Clone, PartialEq)]
pub struct AuxSignal {
    /// Signal name, e.g. `lsu_load_sampled` or `symb_lsu_load_transid`.
    pub name: String,
    /// Packed width; `None` means a single bit.
    pub width: Option<WidthSpec>,
    /// How the signal is driven.
    pub kind: AuxKind,
}

impl AuxSignal {
    /// Creates a combinational alias.
    pub fn wire(name: impl Into<String>, def: Expr) -> Self {
        AuxSignal {
            name: name.into(),
            width: None,
            kind: AuxKind::Wire { def },
        }
    }

    /// Creates a free symbolic variable of the given width.
    pub fn symbolic(name: impl Into<String>, width: Option<WidthSpec>) -> Self {
        AuxSignal {
            name: name.into(),
            width,
            kind: AuxKind::Symbolic,
        }
    }

    /// Creates an outstanding-transaction counter.
    pub fn counter(name: impl Into<String>, width_bits: u32, incr: Expr, decr: Expr) -> Self {
        AuxSignal {
            name: name.into(),
            width: Some(WidthSpec {
                msb: Expr::number(u128::from(width_bits.saturating_sub(1))),
                lsb: Expr::number(0),
            }),
            kind: AuxKind::Counter { incr, decr },
        }
    }

    /// Creates a sampling register.
    pub fn sample(
        name: impl Into<String>,
        width: Option<WidthSpec>,
        enable: Expr,
        value: Expr,
    ) -> Self {
        AuxSignal {
            name: name.into(),
            width,
            kind: AuxKind::Sample { enable, value },
        }
    }

    /// `true` for signals that hold state across cycles (registers and
    /// symbolic variables); `false` for combinational wires.
    pub fn is_stateful(&self) -> bool {
        !matches!(self.kind, AuxKind::Wire { .. })
    }
}

impl fmt::Display for AuxSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, render_aux_decl_kind(&self.kind))
    }
}

fn render_aux_decl_kind(kind: &AuxKind) -> &'static str {
    match kind {
        AuxKind::Wire { .. } => "wire",
        AuxKind::Symbolic => "symbolic",
        AuxKind::Counter { .. } => "counter",
        AuxKind::Sample { .. } => "sample register",
    }
}

fn render_width(width: &Option<WidthSpec>) -> String {
    match width {
        Some(w) => format!(" [{}:{}]", print_expr(&w.msb), print_expr(&w.lsb)),
        None => String::new(),
    }
}

/// Clock and reset context used when rendering sequential auxiliary logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockingContext {
    /// Clock signal name.
    pub clock: String,
    /// Reset signal name.
    pub reset: String,
    /// `true` when the reset is active-low (e.g. `rst_ni`).
    pub reset_active_low: bool,
}

impl Default for ClockingContext {
    fn default() -> Self {
        ClockingContext {
            clock: "clk_i".to_string(),
            reset: "rst_ni".to_string(),
            reset_active_low: true,
        }
    }
}

impl ClockingContext {
    /// The sensitivity-list term for the asynchronous reset, e.g.
    /// `negedge rst_ni`.
    pub fn reset_edge(&self) -> String {
        if self.reset_active_low {
            format!("negedge {}", self.reset)
        } else {
            format!("posedge {}", self.reset)
        }
    }

    /// The reset-asserted condition, e.g. `!rst_ni`.
    pub fn reset_condition(&self) -> String {
        if self.reset_active_low {
            format!("!{}", self.reset)
        } else {
            self.reset.clone()
        }
    }
}

/// Renders the SystemVerilog declaration and driving logic for an auxiliary
/// signal using the given clock/reset context.
pub fn render_aux_signal(sig: &AuxSignal, ctx: &ClockingContext) -> String {
    let width = render_width(&sig.width);
    match &sig.kind {
        AuxKind::Wire { def } => {
            format!("wire{width} {} = {};", sig.name, print_expr(def))
        }
        AuxKind::Symbolic => {
            // Declared but unassigned: formal tools treat it as a free
            // variable.  The stability assumption is emitted alongside so a
            // single symbolic value is tracked for the whole trace.
            format!(
                "logic{width} {name};\nam__{name}_stable: assume property ($stable({name}));",
                name = sig.name
            )
        }
        AuxKind::Counter { incr, decr } => {
            format!(
                "reg{width} {name};\n\
                 always_ff @(posedge {clock} or {redge}) begin\n\
                 \x20 if ({rcond}) begin\n\
                 \x20   {name} <= '0;\n\
                 \x20 end else begin\n\
                 \x20   {name} <= {name} + {{{{{pad}{{1'b0}}}}, {incr}}} - {{{{{pad}{{1'b0}}}}, {decr}}};\n\
                 \x20 end\n\
                 end",
                name = sig.name,
                clock = ctx.clock,
                redge = ctx.reset_edge(),
                rcond = ctx.reset_condition(),
                incr = print_expr(incr),
                decr = print_expr(decr),
                pad = counter_pad(&sig.width),
            )
        }
        AuxKind::Sample { enable, value } => {
            format!(
                "reg{width} {name};\n\
                 always_ff @(posedge {clock} or {redge}) begin\n\
                 \x20 if ({rcond}) begin\n\
                 \x20   {name} <= '0;\n\
                 \x20 end else if ({enable}) begin\n\
                 \x20   {name} <= {value};\n\
                 \x20 end\n\
                 end",
                name = sig.name,
                clock = ctx.clock,
                redge = ctx.reset_edge(),
                rcond = ctx.reset_condition(),
                enable = print_expr(enable),
                value = print_expr(value),
            )
        }
    }
}

fn counter_pad(width: &Option<WidthSpec>) -> String {
    let bits = width
        .as_ref()
        .and_then(WidthSpec::const_width)
        .unwrap_or(DEFAULT_COUNTER_WIDTH);
    format!("{}", bits.saturating_sub(1).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use svparse::ast::BinaryOp;

    #[test]
    fn wire_renders_assignment() {
        let sig = AuxSignal::wire(
            "lsu_req_hsk",
            Expr::binary(
                BinaryOp::LogicalAnd,
                Expr::ident("lsu_req_val"),
                Expr::ident("lsu_req_rdy"),
            ),
        );
        let text = render_aux_signal(&sig, &ClockingContext::default());
        assert_eq!(text, "wire lsu_req_hsk = (lsu_req_val && lsu_req_rdy);");
        assert!(!sig.is_stateful());
    }

    #[test]
    fn symbolic_renders_free_variable_with_stability_assume() {
        let sig = AuxSignal::symbolic(
            "symb_lsu_load_transid",
            Some(WidthSpec {
                msb: Expr::number(2),
                lsb: Expr::number(0),
            }),
        );
        let text = render_aux_signal(&sig, &ClockingContext::default());
        assert!(text.contains("logic [2:0] symb_lsu_load_transid;"));
        assert!(text.contains("assume property ($stable(symb_lsu_load_transid))"));
        assert!(sig.is_stateful());
    }

    #[test]
    fn counter_renders_up_down_register() {
        let sig = AuxSignal::counter(
            "lsu_load_sampled",
            4,
            Expr::ident("lsu_load_set"),
            Expr::ident("lsu_load_response"),
        );
        let text = render_aux_signal(&sig, &ClockingContext::default());
        assert!(text.contains("reg [3:0] lsu_load_sampled;"));
        assert!(text.contains("always_ff @(posedge clk_i or negedge rst_ni)"));
        assert!(text.contains("if (!rst_ni)"));
        assert!(text.contains("lsu_load_sampled <= '0;"));
        assert!(text.contains("lsu_load_set"));
        assert!(text.contains("lsu_load_response"));
        assert!(sig.is_stateful());
    }

    #[test]
    fn sample_register_renders_capture() {
        let ctx = ClockingContext {
            clock: "clk".into(),
            reset: "rst".into(),
            reset_active_low: false,
        };
        let sig = AuxSignal::sample(
            "t_data_sampled",
            Some(WidthSpec {
                msb: Expr::number(7),
                lsb: Expr::number(0),
            }),
            Expr::ident("t_set"),
            Expr::ident("req_data"),
        );
        let text = render_aux_signal(&sig, &ctx);
        assert!(text.contains("reg [7:0] t_data_sampled;"));
        assert!(text.contains("posedge clk or posedge rst"));
        assert!(text.contains("else if (t_set)"));
        assert!(text.contains("t_data_sampled <= req_data;"));
    }

    #[test]
    fn clocking_context_edges() {
        let ctx = ClockingContext::default();
        assert_eq!(ctx.reset_edge(), "negedge rst_ni");
        assert_eq!(ctx.reset_condition(), "!rst_ni");
        let high = ClockingContext {
            clock: "clk".into(),
            reset: "rst".into(),
            reset_active_low: false,
        };
        assert_eq!(high.reset_edge(), "posedge rst");
        assert_eq!(high.reset_condition(), "rst");
    }

    #[test]
    fn display_names_kind() {
        let sig = AuxSignal::symbolic("s", None);
        assert_eq!(sig.to_string(), "s (symbolic)");
    }

    #[test]
    fn default_counter_width_is_reasonable() {
        const { assert!(DEFAULT_COUNTER_WIDTH >= 2) };
        const { assert!(DEFAULT_COUNTER_WIDTH <= 16) };
    }
}
