//! The transaction model (Section III step 2 of the paper).
//!
//! The transaction builder turns the raw [`AnnotationBlock`] into validated
//! [`Transaction`] objects.  Each transaction connects a request interface
//! (P) to a response interface (Q) with an implication relation; each side
//! carries a set of attribute signals resolved to RTL expressions.

use crate::annotation::{
    AnnotationBlock, AttributeDef, AttributeSuffix, RelationDir, TransactionDecl, WidthSpec,
};
use crate::error::{AutosvaError, Result};
use std::fmt;
use svparse::ast::Expr;

/// A resolved attribute signal: the canonical name used in generated code and
/// the RTL expression that defines it.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalRef {
    /// Canonical signal name, e.g. `lsu_req_val`.
    pub name: String,
    /// Defining RTL expression over the DUT interface.
    pub expr: Expr,
    /// Packed width; `None` means a single bit.
    pub width: Option<WidthSpec>,
}

impl SignalRef {
    fn from_attr(attr: &AttributeDef) -> Self {
        SignalRef {
            name: format!("{}_{}", attr.interface, attr.suffix.as_str()),
            expr: attr.expr.clone(),
            width: attr.width.clone(),
        }
    }
}

impl fmt::Display for SignalRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// One side (P or Q) of a transaction with its resolved attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceSide {
    /// Interface prefix (e.g. `lsu_req`).
    pub name: String,
    /// `val` attribute — presence of valid data.
    pub val: Option<SignalRef>,
    /// `ack` attribute — acceptance handshake.
    pub ack: Option<SignalRef>,
    /// `transid` attribute — transaction identifier.
    pub transid: Option<SignalRef>,
    /// `transid_unique` — at most one outstanding transaction per ID.
    pub transid_unique: bool,
    /// `active` attribute — level signal asserted while a transaction is in
    /// flight.
    pub active: Option<SignalRef>,
    /// `stable` attribute — payload that must hold until acknowledged.
    pub stable: Option<SignalRef>,
    /// `data` attribute — payload checked for integrity between P and Q.
    pub data: Option<SignalRef>,
}

impl InterfaceSide {
    fn from_block(block: &AnnotationBlock, name: &str) -> Self {
        let get = |suffix| block.attr(name, suffix).map(SignalRef::from_attr);
        InterfaceSide {
            name: name.to_string(),
            val: get(AttributeSuffix::Val),
            ack: get(AttributeSuffix::Ack),
            transid: get(AttributeSuffix::Transid),
            transid_unique: block.attr(name, AttributeSuffix::TransidUnique).is_some(),
            active: get(AttributeSuffix::Active),
            stable: get(AttributeSuffix::Stable),
            data: get(AttributeSuffix::Data),
        }
    }

    /// Returns the handshake expression for this side: `val && ack` when an
    /// acknowledge signal is defined, otherwise just `val`.
    pub fn handshake_expr(&self) -> Option<Expr> {
        let val = self.val.as_ref()?;
        Some(match &self.ack {
            Some(ack) => Expr::binary(
                svparse::ast::BinaryOp::LogicalAnd,
                val.expr.clone(),
                ack.expr.clone(),
            ),
            None => val.expr.clone(),
        })
    }

    /// All attribute signals other than `val`, used by X-propagation checks.
    pub fn payload_signals(&self) -> Vec<&SignalRef> {
        [
            self.ack.as_ref(),
            self.transid.as_ref(),
            self.active.as_ref(),
            self.stable.as_ref(),
            self.data.as_ref(),
        ]
        .into_iter()
        .flatten()
        .collect()
    }
}

/// A validated transaction between two interfaces.
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    /// Transaction name (the `TNAME` of the annotation).
    pub name: String,
    /// Direction relative to the DUT.
    pub dir: RelationDir,
    /// Request side (P).
    pub request: InterfaceSide,
    /// Response side (Q).
    pub response: InterfaceSide,
}

impl Transaction {
    /// Returns `true` when request/response matching uses a transaction ID.
    pub fn tracks_transid(&self) -> bool {
        self.request.transid.is_some() && self.response.transid.is_some()
    }

    /// Returns `true` when a data-integrity check applies.
    pub fn checks_data(&self) -> bool {
        self.request.data.is_some() && self.response.data.is_some()
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} {} {}",
            self.name, self.request.name, self.dir, self.response.name
        )
    }
}

/// Builds and validates transactions from a parsed annotation block.
///
/// # Errors
///
/// Returns [`AutosvaError::Validation`] when:
///
/// * a transaction's request side has no `val` attribute (nothing to reason
///   about),
/// * `transid` is defined on only one side of a transaction,
/// * `data` is defined on only one side of a transaction,
/// * `transid` or `data` widths are both constant and differ.
pub fn build_transactions(block: &AnnotationBlock) -> Result<Vec<Transaction>> {
    block.decls.iter().map(|d| build_one(block, d)).collect()
}

fn build_one(block: &AnnotationBlock, decl: &TransactionDecl) -> Result<Transaction> {
    let request = InterfaceSide::from_block(block, &decl.request);
    let response = InterfaceSide::from_block(block, &decl.response);
    let txn = Transaction {
        name: decl.name.clone(),
        dir: decl.dir,
        request,
        response,
    };
    validate(&txn)?;
    Ok(txn)
}

fn validation_err(txn: &Transaction, message: impl Into<String>) -> AutosvaError {
    AutosvaError::Validation {
        transaction: txn.name.clone(),
        message: message.into(),
    }
}

fn validate(txn: &Transaction) -> Result<()> {
    if txn.request.val.is_none() {
        return Err(validation_err(
            txn,
            format!(
                "request interface `{}` has no `val` attribute",
                txn.request.name
            ),
        ));
    }
    let one_sided = |p: &Option<SignalRef>, q: &Option<SignalRef>| p.is_some() != q.is_some();
    if one_sided(&txn.request.transid, &txn.response.transid) {
        return Err(validation_err(
            txn,
            "`transid` must be defined on both interfaces of the transaction or neither",
        ));
    }
    if one_sided(&txn.request.data, &txn.response.data) {
        return Err(validation_err(
            txn,
            "`data` must be defined on both interfaces of the transaction or neither",
        ));
    }
    check_width_match(txn, &txn.request.transid, &txn.response.transid, "transid")?;
    check_width_match(txn, &txn.request.data, &txn.response.data, "data")?;
    Ok(())
}

fn check_width_match(
    txn: &Transaction,
    p: &Option<SignalRef>,
    q: &Option<SignalRef>,
    what: &str,
) -> Result<()> {
    if let (Some(p), Some(q)) = (p, q) {
        let pw = p.width.as_ref().and_then(WidthSpec::const_width);
        let qw = q.width.as_ref().and_then(WidthSpec::const_width);
        if let (Some(pw), Some(qw)) = (pw, qw) {
            if pw != qw {
                return Err(validation_err(
                    txn,
                    format!("`{what}` width mismatch: request is {pw} bits, response is {qw} bits"),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::parse_annotations;
    use svparse::parse_with_comments;

    fn transactions(src: &str, module: &str) -> Result<Vec<Transaction>> {
        let (file, comments) = parse_with_comments(src).unwrap();
        let module = file.module(module).unwrap();
        let block = parse_annotations(&comments, module)?;
        build_transactions(&block)
    }

    const LSU: &str = r#"
/*AUTOSVA
lsu_load: lsu_req -in> lsu_res
lsu_req_val = lsu_valid_i
lsu_req_rdy = lsu_ready_o
[2:0] lsu_req_transid = trans_id_i
[4:0] lsu_req_stable = {trans_id_i, fu_i}
lsu_res_val = load_valid_o
[2:0] lsu_res_transid = load_trans_id_o
*/
module lsu (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic lsu_valid_i,
  input  logic [2:0] trans_id_i,
  input  logic [1:0] fu_i,
  output logic lsu_ready_o,
  output logic load_valid_o,
  output logic [2:0] load_trans_id_o
);
endmodule
"#;

    #[test]
    fn lsu_transaction_builds() {
        let txns = transactions(LSU, "lsu").unwrap();
        assert_eq!(txns.len(), 1);
        let t = &txns[0];
        assert_eq!(t.name, "lsu_load");
        assert_eq!(t.dir, RelationDir::Incoming);
        assert!(t.tracks_transid());
        assert!(!t.checks_data());
        assert!(t.request.ack.is_some());
        assert!(t.request.stable.is_some());
        assert!(t.response.ack.is_none());
        assert_eq!(t.to_string(), "lsu_load: lsu_req -in> lsu_res");
    }

    #[test]
    fn handshake_expr_forms() {
        let txns = transactions(LSU, "lsu").unwrap();
        let t = &txns[0];
        let req_hsk = svparse::pretty::print_expr(&t.request.handshake_expr().unwrap());
        assert_eq!(req_hsk, "(lsu_valid_i && lsu_ready_o)");
        let res_hsk = svparse::pretty::print_expr(&t.response.handshake_expr().unwrap());
        assert_eq!(res_hsk, "load_valid_o");
    }

    #[test]
    fn transid_one_sided_rejected() {
        let src = r#"
/*AUTOSVA
t: req -in> res
req_val = a
[3:0] req_transid = id_i
res_val = b
*/
module m (input logic a, input logic [3:0] id_i, output logic b);
endmodule
"#;
        let err = transactions(src, "m").unwrap_err();
        match err {
            AutosvaError::Validation { message, .. } => assert!(message.contains("transid")),
            other => panic!("expected validation error, got {other:?}"),
        }
    }

    #[test]
    fn data_one_sided_rejected() {
        let src = r#"
/*AUTOSVA
t: req -in> res
req_val = a
[7:0] req_data = d_i
res_val = b
*/
module m (input logic a, input logic [7:0] d_i, output logic b);
endmodule
"#;
        assert!(matches!(
            transactions(src, "m").unwrap_err(),
            AutosvaError::Validation { .. }
        ));
    }

    #[test]
    fn width_mismatch_rejected() {
        let src = r#"
/*AUTOSVA
t: req -in> res
req_val = a
[3:0] req_transid = id_i
res_val = b
[2:0] res_transid = id_o
*/
module m (input logic a, input logic [3:0] id_i, output logic b, output logic [2:0] id_o);
endmodule
"#;
        let err = transactions(src, "m").unwrap_err();
        match err {
            AutosvaError::Validation { message, .. } => {
                assert!(message.contains("width mismatch"))
            }
            other => panic!("expected validation error, got {other:?}"),
        }
    }

    #[test]
    fn symbolic_widths_are_not_compared() {
        // Widths given as parameters cannot be compared statically and must
        // be accepted.
        let src = r#"
/*AUTOSVA
t: req -in> res
req_val = a
[W-1:0] req_transid = id_i
res_val = b
[W-1:0] res_transid = id_o
*/
module m #(parameter W = 4) (input logic a, input logic [W-1:0] id_i, output logic b, output logic [W-1:0] id_o);
endmodule
"#;
        assert!(transactions(src, "m").is_ok());
    }

    #[test]
    fn missing_val_rejected() {
        let src = r#"
/*AUTOSVA
t: req -in> res
req_ack = a
res_val = b
*/
module m (input logic a, output logic b);
endmodule
"#;
        let err = transactions(src, "m").unwrap_err();
        match err {
            AutosvaError::Validation { message, .. } => assert!(message.contains("`val`")),
            other => panic!("expected validation error, got {other:?}"),
        }
    }

    #[test]
    fn no_response_val_is_allowed() {
        // A transaction may omit the response `val` (e.g. only checking the
        // request handshake); generation simply produces fewer properties.
        let src = r#"
/*AUTOSVA
t: req -in> res
req_val = a
req_ack = g
*/
module m (input logic a, input logic g);
endmodule
"#;
        let txns = transactions(src, "m").unwrap();
        assert!(txns[0].response.val.is_none());
    }

    #[test]
    fn payload_signals_collects_defined_attributes() {
        let txns = transactions(LSU, "lsu").unwrap();
        let p = &txns[0].request;
        let names: Vec<&str> = p
            .payload_signals()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert!(names.contains(&"lsu_req_ack"));
        assert!(names.contains(&"lsu_req_transid"));
        assert!(names.contains(&"lsu_req_stable"));
        assert!(!names.contains(&"lsu_req_data"));
    }

    #[test]
    fn fig7_mem_engine_three_lines() {
        // The paper's Fig. 7 NoC-buffer transaction is defined with only
        // three annotation lines (val/ack attributes match port names and are
        // picked up implicitly).
        let src = r#"
/*AUTOSVA
noc_txn: noc1buffer_req -in> noc1buffer_enc
[2:0] noc1buffer_req_transid = noc1buffer_req_mshrid
[2:0] noc1buffer_enc_transid = noc1buffer_enc_mshrid
*/
module noc_buffer (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic noc1buffer_req_val,
  output logic noc1buffer_req_ack,
  input  logic [2:0] noc1buffer_req_mshrid,
  output logic noc1buffer_enc_val,
  input  logic noc1buffer_enc_ack,
  output logic [2:0] noc1buffer_enc_mshrid
);
endmodule
"#;
        let txns = transactions(src, "noc_buffer").unwrap();
        let t = &txns[0];
        assert!(t.tracks_transid());
        assert!(t.request.val.is_some());
        assert!(t.request.ack.is_some());
        assert!(t.response.val.is_some());
        assert!(t.response.ack.is_some());
    }
}
