//! The AutoSVA annotation language (Table I of the paper).
//!
//! Annotations are written as Verilog comments in the interface-declaration
//! section of an RTL module.  A block is recognized when a comment starts
//! with the `AUTOSVA` marker; every following line (within the same block
//! comment, or in consecutive `//AUTOSVA`-prefixed line comments) is an
//! annotation.
//!
//! The grammar (constants lowercase, syntax uppercase):
//!
//! ```text
//! TRANSACTION ::= TNAME: RELATION ATTRIB
//! RELATION    ::= P -in> Q | P -out> Q
//! ATTRIB      ::= ATTRIB, ATTRIB | SIG = ASSIGN | input SIG | output SIG
//! SIG         ::= [STR:0] FIELD | STR FIELD
//! FIELD       ::= P SUFFIX | Q SUFFIX
//! SUFFIX      ::= val | ack | transid | transid_unique | active | stable | data
//! ```

use crate::error::{AutosvaError, Result};
use std::fmt;
use svparse::ast::{Expr, Module, Port};
use svparse::parser::parse_expr;
use svparse::token::{Comment, CommentStyle};

/// The transaction attribute suffixes of the AutoSVA language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeSuffix {
    /// The interface presents valid data this cycle.
    Val,
    /// The interface accepted the data this cycle (also spelled `rdy` in
    /// ready/valid interfaces; AutoSVA uses `ack`).
    Ack,
    /// Transaction identifier used to match requests with responses.
    Transid,
    /// Declares that at most one transaction may be outstanding per ID.
    TransidUnique,
    /// Level signal asserted while a transaction is ongoing.
    Active,
    /// Payload that must remain stable until the request is acknowledged.
    Stable,
    /// Payload whose value must be preserved from request to response.
    Data,
}

impl AttributeSuffix {
    /// All suffixes, in the order used for implicit-port matching (longest
    /// first so `transid_unique` wins over `transid`).
    pub const ALL: [AttributeSuffix; 7] = [
        AttributeSuffix::TransidUnique,
        AttributeSuffix::Transid,
        AttributeSuffix::Active,
        AttributeSuffix::Stable,
        AttributeSuffix::Data,
        AttributeSuffix::Val,
        AttributeSuffix::Ack,
    ];

    /// The source spelling of the suffix.
    pub fn as_str(&self) -> &'static str {
        match self {
            AttributeSuffix::Val => "val",
            AttributeSuffix::Ack => "ack",
            AttributeSuffix::Transid => "transid",
            AttributeSuffix::TransidUnique => "transid_unique",
            AttributeSuffix::Active => "active",
            AttributeSuffix::Stable => "stable",
            AttributeSuffix::Data => "data",
        }
    }

    /// Parses a suffix from its source spelling.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "val" => AttributeSuffix::Val,
            "ack" | "rdy" => AttributeSuffix::Ack,
            "transid" => AttributeSuffix::Transid,
            "transid_unique" => AttributeSuffix::TransidUnique,
            "active" => AttributeSuffix::Active,
            "stable" => AttributeSuffix::Stable,
            "data" => AttributeSuffix::Data,
            _ => return None,
        })
    }
}

impl fmt::Display for AttributeSuffix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Direction of a transaction relative to the DUT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelationDir {
    /// The DUT receives the request and must produce the response
    /// (`P -in> Q`).
    Incoming,
    /// The DUT issues the request and the environment must respond
    /// (`P -out> Q`).
    Outgoing,
}

impl fmt::Display for RelationDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RelationDir::Incoming => "-in>",
            RelationDir::Outgoing => "-out>",
        })
    }
}

/// A `TNAME: P -in> Q` transaction declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TransactionDecl {
    /// Transaction name.
    pub name: String,
    /// Request-side interface prefix (P).
    pub request: String,
    /// Response-side interface prefix (Q).
    pub response: String,
    /// Incoming or outgoing.
    pub dir: RelationDir,
    /// 1-based source line of the declaration.
    pub line: usize,
}

/// A packed width written in an annotation, e.g. `[TRANS_ID_BITS-1:0]`.
#[derive(Debug, Clone, PartialEq)]
pub struct WidthSpec {
    /// Most-significant index expression.
    pub msb: Expr,
    /// Least-significant index expression.
    pub lsb: Expr,
}

impl WidthSpec {
    /// A single-bit width (`[0:0]`).
    pub fn single_bit() -> Self {
        WidthSpec {
            msb: Expr::number(0),
            lsb: Expr::number(0),
        }
    }

    /// Returns the constant bit width when both bounds are literals.
    pub fn const_width(&self) -> Option<u32> {
        match (&self.msb, &self.lsb) {
            (Expr::Number(m), Expr::Number(l)) => match (m.value, l.value) {
                (Some(m), Some(l)) if m >= l => Some((m - l + 1) as u32),
                _ => None,
            },
            _ => None,
        }
    }
}

/// How an attribute definition was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttributeOrigin {
    /// Written explicitly in an annotation (`sig = expr`).
    Explicit,
    /// Inferred from an interface port whose name follows the
    /// `<interface>_<suffix>` convention.
    Implicit,
}

/// A single attribute definition mapping an interface field to an RTL
/// expression.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeDef {
    /// Interface prefix this attribute belongs to (the P or Q of a
    /// transaction).
    pub interface: String,
    /// Which attribute this is.
    pub suffix: AttributeSuffix,
    /// Declared width, if one was written.  `None` means single bit (or the
    /// width of the implicit port).
    pub width: Option<WidthSpec>,
    /// The RTL expression defining the attribute.
    pub expr: Expr,
    /// 1-based source line of the definition.
    pub line: usize,
    /// Whether the definition was explicit or inferred from a port.
    pub origin: AttributeOrigin,
}

/// A full parsed annotation block for one module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnnotationBlock {
    /// Transaction declarations in source order.
    pub decls: Vec<TransactionDecl>,
    /// Attribute definitions (explicit first, then implicit).
    pub attrs: Vec<AttributeDef>,
    /// Number of non-empty annotation source lines (the paper reports
    /// annotation effort in lines of code).
    pub annotation_loc: usize,
}

impl AnnotationBlock {
    /// Returns the attribute definition for `interface`/`suffix`, preferring
    /// explicit definitions over implicit ones.
    pub fn attr(&self, interface: &str, suffix: AttributeSuffix) -> Option<&AttributeDef> {
        self.attrs
            .iter()
            .filter(|a| a.interface == interface && a.suffix == suffix)
            .min_by_key(|a| match a.origin {
                AttributeOrigin::Explicit => 0,
                AttributeOrigin::Implicit => 1,
            })
    }

    /// Returns all interface prefixes referenced by the declarations.
    pub fn interfaces(&self) -> Vec<String> {
        let mut out = Vec::new();
        for d in &self.decls {
            if !out.contains(&d.request) {
                out.push(d.request.clone());
            }
            if !out.contains(&d.response) {
                out.push(d.response.clone());
            }
        }
        out
    }
}

/// Extracts the text lines of every AutoSVA annotation region in `comments`.
///
/// Returns `(line_number, text)` pairs.  A block comment whose body begins
/// with `AUTOSVA` contributes every subsequent line; a line comment beginning
/// with `AUTOSVA` contributes the remainder of that line.
pub fn annotation_lines(comments: &[Comment]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for comment in comments {
        let trimmed = comment.text.trim_start();
        match comment.style {
            CommentStyle::Block => {
                if let Some(rest) = trimmed.strip_prefix("AUTOSVA") {
                    // The remainder of the first line plus all following lines.
                    let mut line_no = comment.line;
                    let first_rest = rest.lines().next().unwrap_or("").trim();
                    if !first_rest.is_empty() {
                        out.push((line_no, first_rest.to_string()));
                    }
                    for line in comment.text.lines().skip(1) {
                        line_no += 1;
                        let t = line.trim();
                        if !t.is_empty() {
                            out.push((line_no, t.to_string()));
                        }
                    }
                }
            }
            CommentStyle::Line => {
                if let Some(rest) = trimmed.strip_prefix("AUTOSVA") {
                    let t = rest.trim().trim_start_matches(':').trim();
                    if !t.is_empty() {
                        out.push((comment.line, t.to_string()));
                    }
                }
            }
        }
    }
    out
}

/// Splits a field name of the form `<interface>_<suffix>` into its parts.
///
/// Tries every known suffix, longest first, and requires a separating
/// underscore.  Returns `None` if the name does not follow the convention.
///
/// # Examples
///
/// ```
/// use autosva::annotation::{split_field, AttributeSuffix};
/// assert_eq!(
///     split_field("lsu_req_val"),
///     Some(("lsu_req".to_string(), AttributeSuffix::Val))
/// );
/// assert_eq!(
///     split_field("noc1buffer_req_transid_unique"),
///     Some(("noc1buffer_req".to_string(), AttributeSuffix::TransidUnique))
/// );
/// assert_eq!(split_field("clk_i"), None);
/// ```
pub fn split_field(name: &str) -> Option<(String, AttributeSuffix)> {
    for suffix in AttributeSuffix::ALL {
        let tail = format!("_{}", suffix.as_str());
        if let Some(prefix) = name.strip_suffix(&tail) {
            if !prefix.is_empty() {
                return Some((prefix.to_string(), suffix));
            }
        }
    }
    // `rdy` is accepted as an alias for `ack` (ready/valid interfaces).
    if let Some(prefix) = name.strip_suffix("_rdy") {
        if !prefix.is_empty() {
            return Some((prefix.to_string(), AttributeSuffix::Ack));
        }
    }
    None
}

/// Parses the AutoSVA annotations attached to `module`.
///
/// Explicit definitions come from the annotation text; implicit definitions
/// are inferred from ports of `module` whose names follow the
/// `<interface>_<suffix>` convention for an interface named in a transaction
/// declaration.
///
/// # Errors
///
/// Returns [`AutosvaError::Annotation`] for malformed lines and
/// [`AutosvaError::NoAnnotations`] when no transaction declaration is found.
pub fn parse_annotations(comments: &[Comment], module: &Module) -> Result<AnnotationBlock> {
    let lines = annotation_lines(comments);
    let mut block = AnnotationBlock {
        annotation_loc: lines.len(),
        ..AnnotationBlock::default()
    };

    for (line_no, text) in &lines {
        parse_annotation_line(text, *line_no, &mut block)?;
    }
    if block.decls.is_empty() {
        return Err(AutosvaError::NoAnnotations);
    }

    // Implicit definitions from interface ports.
    let interfaces = block.interfaces();
    for port in &module.ports {
        if let Some((prefix, suffix)) = split_field(&port.name) {
            if interfaces.contains(&prefix)
                && block
                    .attr(&prefix, suffix)
                    .map(|a| a.origin == AttributeOrigin::Implicit)
                    .unwrap_or(true)
            {
                block.attrs.push(AttributeDef {
                    interface: prefix,
                    suffix,
                    width: port_width(port),
                    expr: Expr::ident(port.name.clone()),
                    line: port.line,
                    origin: AttributeOrigin::Implicit,
                });
            }
        }
    }
    Ok(block)
}

fn port_width(port: &Port) -> Option<WidthSpec> {
    port.ty.packed_dims.first().map(|r| WidthSpec {
        msb: r.msb.clone(),
        lsb: r.lsb.clone(),
    })
}

fn annotation_err(message: impl Into<String>, line: usize) -> AutosvaError {
    AutosvaError::Annotation {
        message: message.into(),
        line: Some(line),
    }
}

fn parse_annotation_line(text: &str, line: usize, block: &mut AnnotationBlock) -> Result<()> {
    let text = text.trim();
    if text.is_empty() {
        return Ok(());
    }
    // Transaction declaration: `name: P -in> Q` / `name: P -out> Q`.
    if let Some((name, rest)) = text.split_once(':') {
        let rest = rest.trim();
        if rest.contains("-in>") || rest.contains("-out>") {
            let (dir, sep) = if rest.contains("-in>") {
                (RelationDir::Incoming, "-in>")
            } else {
                (RelationDir::Outgoing, "-out>")
            };
            let (p, q) = rest
                .split_once(sep)
                .ok_or_else(|| annotation_err("malformed relation", line))?;
            let p = p.trim();
            let q = q.trim();
            if p.is_empty() || q.is_empty() {
                return Err(annotation_err(
                    "relation must name both interfaces (P and Q)",
                    line,
                ));
            }
            let name = name.trim();
            if name.is_empty() {
                return Err(annotation_err("transaction name must not be empty", line));
            }
            if block.decls.iter().any(|d| d.name == name) {
                return Err(annotation_err(
                    format!("duplicate transaction name `{name}`"),
                    line,
                ));
            }
            block.decls.push(TransactionDecl {
                name: name.to_string(),
                request: p.to_string(),
                response: q.to_string(),
                dir,
                line,
            });
            return Ok(());
        }
    }

    // `input SIG` / `output SIG` forms simply re-state a port; the field name
    // itself is the expression.
    let text = text
        .strip_prefix("input ")
        .or_else(|| text.strip_prefix("output "))
        .unwrap_or(text)
        .trim();

    // Optional width prefix `[expr:expr]`.
    let (width, rest) = if let Some(stripped) = text.strip_prefix('[') {
        let close = stripped
            .find(']')
            .ok_or_else(|| annotation_err("missing `]` in width", line))?;
        let inside = &stripped[..close];
        // Split on the last `:` that is not part of a `::` scope operator, so
        // widths like `[riscv::VLEN-1:0]` parse correctly.
        let split_at = inside
            .char_indices()
            .filter(|(i, c)| {
                *c == ':'
                    && inside.as_bytes().get(i + 1) != Some(&b':')
                    && (*i == 0 || inside.as_bytes().get(i - 1) != Some(&b':'))
            })
            .map(|(i, _)| i)
            .next_back()
            .ok_or_else(|| annotation_err("width must be of the form [msb:lsb]", line))?;
        let (msb_txt, lsb_txt) = (&inside[..split_at], &inside[split_at + 1..]);
        let msb =
            parse_expr(msb_txt).map_err(|e| annotation_err(format!("bad width msb: {e}"), line))?;
        let lsb =
            parse_expr(lsb_txt).map_err(|e| annotation_err(format!("bad width lsb: {e}"), line))?;
        (Some(WidthSpec { msb, lsb }), stripped[close + 1..].trim())
    } else {
        (None, text)
    };

    // `FIELD = expr` or a bare `FIELD`.
    let (field, expr_text) = match rest.split_once('=') {
        Some((f, e)) => (f.trim(), Some(e.trim())),
        None => (rest.trim(), None),
    };
    if field.is_empty() {
        return Err(annotation_err("missing field name", line));
    }
    // Normalize hyphens in interface names (the paper writes
    // `mem-engine_noc`): hyphens are not legal in signal names, so the field
    // itself must be a legal identifier.
    let (interface, suffix) = split_field(field).ok_or_else(|| {
        annotation_err(
            format!(
                "field `{field}` does not end in a legal suffix ({})",
                AttributeSuffix::ALL
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            line,
        )
    })?;
    let expr = match expr_text {
        Some(e) if !e.is_empty() => {
            parse_expr(e).map_err(|err| annotation_err(format!("bad expression: {err}"), line))?
        }
        _ => Expr::ident(field),
    };
    block.attrs.push(AttributeDef {
        interface,
        suffix,
        width,
        expr,
        line,
        origin: AttributeOrigin::Explicit,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use svparse::parse_with_comments;

    const LSU_SRC: &str = r#"
/*AUTOSVA
lsu_load: lsu_req -in> lsu_res
lsu_req_val = lsu_valid_i && fu_data_i.fu == LOAD
lsu_req_rdy = lsu_ready_o
[TRANS_ID_BITS-1:0] lsu_req_transid = fu_data_i.trans_id
[CTRL_BITS-1:0] lsu_req_stable = {fu_data_i.trans_id, fu_data_i.fu}
lsu_res_val = load_valid_o
[TRANS_ID_BITS-1:0] lsu_res_transid = load_trans_id_o
*/
module load_store_unit #(parameter TRANS_ID_BITS = 3, parameter CTRL_BITS = 5) (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic lsu_valid_i,
  input  fu_data_t fu_data_i,
  output logic lsu_ready_o,
  output logic load_valid_o,
  output logic [TRANS_ID_BITS-1:0] load_trans_id_o
);
endmodule
"#;

    fn parse_block(src: &str, module_name: &str) -> AnnotationBlock {
        let (file, comments) = parse_with_comments(src).unwrap();
        let module = file.module(module_name).unwrap();
        parse_annotations(&comments, module).unwrap()
    }

    #[test]
    fn figure3_lsu_annotations() {
        let block = parse_block(LSU_SRC, "load_store_unit");
        assert_eq!(block.decls.len(), 1);
        let d = &block.decls[0];
        assert_eq!(d.name, "lsu_load");
        assert_eq!(d.request, "lsu_req");
        assert_eq!(d.response, "lsu_res");
        assert_eq!(d.dir, RelationDir::Incoming);
        assert_eq!(block.annotation_loc, 7);

        let val = block.attr("lsu_req", AttributeSuffix::Val).unwrap();
        assert_eq!(val.origin, AttributeOrigin::Explicit);
        assert!(val.expr.referenced_idents().contains(&"lsu_valid_i".into()));

        let transid = block.attr("lsu_req", AttributeSuffix::Transid).unwrap();
        assert!(transid.width.is_some());

        // rdy is an alias for ack
        assert!(block.attr("lsu_req", AttributeSuffix::Ack).is_some());
        assert!(block.attr("lsu_res", AttributeSuffix::Transid).is_some());
    }

    #[test]
    fn implicit_port_definitions() {
        let src = r#"
//AUTOSVA fifo_txn: push -in> pop
module fifo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic push_val,
  output logic push_ack,
  input  logic [7:0] push_data,
  output logic pop_val,
  input  logic pop_ack,
  output logic [7:0] pop_data
);
endmodule
"#;
        let block = parse_block(src, "fifo");
        assert_eq!(block.decls.len(), 1);
        let push_val = block.attr("push", AttributeSuffix::Val).unwrap();
        assert_eq!(push_val.origin, AttributeOrigin::Implicit);
        assert_eq!(push_val.expr.as_ident(), Some("push_val"));
        let pop_data = block.attr("pop", AttributeSuffix::Data).unwrap();
        assert!(pop_data.width.is_some());
        // clk_i does not match the convention and must not appear.
        assert!(block.attrs.iter().all(|a| a.interface != "clk"));
    }

    #[test]
    fn explicit_overrides_implicit() {
        let src = r#"
/*AUTOSVA
t: req -in> res
req_val = custom_valid
*/
module m (
  input  logic custom_valid,
  input  logic req_val,
  output logic res_val
);
endmodule
"#;
        let block = parse_block(src, "m");
        let val = block.attr("req", AttributeSuffix::Val).unwrap();
        assert_eq!(val.origin, AttributeOrigin::Explicit);
        assert_eq!(val.expr.as_ident(), Some("custom_valid"));
    }

    #[test]
    fn outgoing_relation() {
        let src = r#"
/*AUTOSVA
ptw_dcache: ptw_req -out> dcache_res
ptw_req_val = req_port_o.data_req
ptw_req_ack = req_port_i.data_gnt
dcache_res_val = req_port_i.data_rvalid
*/
module ptw (input logic clk_i, input logic rst_ni, output dcache_req_o_t req_port_o, input dcache_req_i_t req_port_i);
endmodule
"#;
        let block = parse_block(src, "ptw");
        assert_eq!(block.decls[0].dir, RelationDir::Outgoing);
        assert_eq!(block.decls[0].response, "dcache_res");
        assert!(block.attr("dcache_res", AttributeSuffix::Val).is_some());
    }

    #[test]
    fn bad_suffix_is_rejected() {
        let src = r#"
/*AUTOSVA
t: req -in> res
req_bogus = x
*/
module m (input logic x, input logic req_val, output logic res_val);
endmodule
"#;
        let (file, comments) = parse_with_comments(src).unwrap();
        let module = file.module("m").unwrap();
        let err = parse_annotations(&comments, module).unwrap_err();
        match err {
            AutosvaError::Annotation { message, line } => {
                assert!(message.contains("req_bogus"));
                assert_eq!(line, Some(4));
            }
            other => panic!("expected annotation error, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_transaction_rejected() {
        let src = r#"
/*AUTOSVA
t: req -in> res
t: a -in> b
*/
module m (input logic req_val, output logic res_val);
endmodule
"#;
        let (file, comments) = parse_with_comments(src).unwrap();
        let module = file.module("m").unwrap();
        assert!(parse_annotations(&comments, module).is_err());
    }

    #[test]
    fn no_annotations_error() {
        let src = "module m (input logic a); endmodule";
        let (file, comments) = parse_with_comments(src).unwrap();
        let module = file.module("m").unwrap();
        assert_eq!(
            parse_annotations(&comments, module).unwrap_err(),
            AutosvaError::NoAnnotations
        );
    }

    #[test]
    fn width_spec_const_width() {
        let w = WidthSpec {
            msb: Expr::number(7),
            lsb: Expr::number(0),
        };
        assert_eq!(w.const_width(), Some(8));
        let w = WidthSpec {
            msb: Expr::ident("W"),
            lsb: Expr::number(0),
        };
        assert_eq!(w.const_width(), None);
        assert_eq!(WidthSpec::single_bit().const_width(), Some(1));
    }

    #[test]
    fn annotation_lines_from_line_comments() {
        let src = r#"
//AUTOSVA t: req -in> res
//AUTOSVA req_val = a
module m (input logic a, output logic res_val);
endmodule
"#;
        let block = parse_block(src, "m");
        assert_eq!(block.decls.len(), 1);
        assert!(block.attr("req", AttributeSuffix::Val).is_some());
        assert_eq!(block.annotation_loc, 2);
    }

    #[test]
    fn suffix_roundtrip_and_display() {
        for s in AttributeSuffix::ALL {
            assert_eq!(AttributeSuffix::from_str(s.as_str()), Some(s));
        }
        assert_eq!(AttributeSuffix::from_str("rdy"), Some(AttributeSuffix::Ack));
        assert_eq!(AttributeSuffix::from_str("unknown"), None);
        assert_eq!(RelationDir::Incoming.to_string(), "-in>");
        assert_eq!(RelationDir::Outgoing.to_string(), "-out>");
    }
}
