//! The end-to-end AutoSVA pipeline (Fig. 5 of the paper).
//!
//! The five steps are: (1) parse the annotated RTL, (2) build transaction
//! objects, (3) generate auxiliary signals, (4) generate properties, and
//! (5) set up the formal tool.  [`generate_ft`] runs all of them and returns
//! a [`FormalTestbench`] containing both the structured model (consumed by
//! the bundled formal substrate) and the rendered files (for external tools).

use crate::annotation::{parse_annotations, AnnotationBlock};
use crate::emit::{render_bind_file, render_property_file, render_wrapper_file};
use crate::error::{AutosvaError, Result};
use crate::propgen::{generate, FtModel, PropgenOptions};
use crate::signals::ClockingContext;
use crate::sva::{Directive, PropertyClass, SvaProperty};
use crate::tools::{generate_tool_files, FormalTool, ToolFile};
use crate::transaction::{build_transactions, Transaction};
use svparse::ast::Module;
use svparse::parse_with_comments;

/// How a previously generated submodule testbench is linked into the parent
/// DUT's testbench (the `-AM`/`-AS` script parameters of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmoduleMode {
    /// `-AM`: include the submodule's environment assumptions (its
    /// assumptions over outgoing requests become assumptions of the parent).
    Assume,
    /// `-AS`: include the submodule's properties with every assumption turned
    /// into an assertion, since the submodule's inputs are now driven by real
    /// logic.
    Assert,
}

/// A submodule testbench to link into the parent's.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmoduleLink {
    /// The already-generated testbench of the submodule.
    pub testbench: FormalTestbench,
    /// Hierarchical instance path of the submodule inside the parent DUT.
    pub instance_path: String,
    /// Linking mode.
    pub mode: SubmoduleMode,
}

/// Options for a full testbench generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct AutosvaOptions {
    /// Name of the module to use as DUT; `None` picks the first module in the
    /// source file.
    pub dut: Option<String>,
    /// Formal tool to generate configuration for.
    pub tool: FormalTool,
    /// Clock/reset context.
    pub clocking: ClockingContext,
    /// Property-generation options (polarity flipping, counter widths,
    /// X-propagation).
    pub propgen: PropgenOptions,
    /// RTL file names to reference from the tool scripts.
    pub rtl_files: Vec<String>,
    /// Previously generated submodule testbenches to link in.
    pub submodules: Vec<SubmoduleLink>,
}

impl Default for AutosvaOptions {
    fn default() -> Self {
        AutosvaOptions {
            dut: None,
            tool: FormalTool::Builtin,
            clocking: ClockingContext::default(),
            propgen: PropgenOptions::default(),
            rtl_files: Vec::new(),
            submodules: Vec::new(),
        }
    }
}

/// Summary statistics for a generated testbench, matching the metrics the
/// paper reports (annotation effort in LoC, number of unique properties).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FtStats {
    /// Number of non-empty annotation lines the designer wrote.
    pub annotation_loc: usize,
    /// Number of transactions defined.
    pub transactions: usize,
    /// Number of unique generated properties (including those linked from
    /// submodules).
    pub properties: usize,
    /// Number of generated assertions.
    pub assertions: usize,
    /// Number of generated assumptions.
    pub assumptions: usize,
    /// Number of generated cover points.
    pub covers: usize,
    /// Number of auxiliary modeling signals.
    pub aux_signals: usize,
}

/// The complete generated formal testbench for one DUT.
#[derive(Debug, Clone, PartialEq)]
pub struct FormalTestbench {
    /// Name of the DUT module.
    pub dut_name: String,
    /// Parsed DUT module (header and body).
    pub dut: Module,
    /// The parsed annotation block.
    pub annotations: AnnotationBlock,
    /// Validated transactions.
    pub transactions: Vec<Transaction>,
    /// Structured model: auxiliary signals and properties per transaction.
    pub model: FtModel,
    /// Properties contributed by linked submodules (already polarity
    /// adjusted according to the link mode).
    pub linked_properties: Vec<SvaProperty>,
    /// Rendered property file (`<dut>_prop.sv`).
    pub property_file: String,
    /// Rendered bind file (`<dut>_bind.svh`).
    pub bind_file: String,
    /// Rendered formal wrapper (`<dut>_formal_top.sv`).
    pub wrapper_file: String,
    /// Tool-specific configuration files.
    pub tool_files: Vec<ToolFile>,
    /// Options used for generation.
    pub options: AutosvaOptions,
}

impl FormalTestbench {
    /// All properties of the testbench: generated plus linked from
    /// submodules.
    pub fn all_properties(&self) -> Vec<&SvaProperty> {
        self.model
            .properties()
            .into_iter()
            .chain(self.linked_properties.iter())
            .collect()
    }

    /// Summary statistics (annotation LoC, property counts, ...).
    pub fn stats(&self) -> FtStats {
        let props = self.all_properties();
        FtStats {
            annotation_loc: self.annotations.annotation_loc,
            transactions: self.transactions.len(),
            properties: props.len(),
            assertions: props
                .iter()
                .filter(|p| p.directive == Directive::Assert)
                .count(),
            assumptions: props
                .iter()
                .filter(|p| p.directive == Directive::Assume)
                .count(),
            covers: props
                .iter()
                .filter(|p| p.directive == Directive::Cover)
                .count(),
            aux_signals: self.model.aux_signals().len(),
        }
    }

    /// Properties of a given class.
    pub fn properties_of_class(&self, class: PropertyClass) -> Vec<&SvaProperty> {
        self.all_properties()
            .into_iter()
            .filter(|p| p.class == class)
            .collect()
    }

    /// Every signal name the testbench's verification intent may bind to:
    /// identifiers referenced by any property (including X-prop-only ones,
    /// which the model compiler skips) or auxiliary-signal definition, plus
    /// the `base.member` / `base_member` spellings a member access can
    /// resolve to.  This is the conservative "referenced by an annotation"
    /// set the design lint uses for its unused-signal and coverage-gap
    /// checks.
    pub fn referenced_signals(&self) -> std::collections::BTreeSet<String> {
        use crate::signals::AuxKind;
        use crate::sva::PropertyBody;
        let mut out = std::collections::BTreeSet::new();
        for aux in self.model.aux_signals() {
            match &aux.kind {
                AuxKind::Wire { def } => collect_signal_refs(def, &mut out),
                AuxKind::Symbolic => {}
                AuxKind::Counter { incr, decr } => {
                    collect_signal_refs(incr, &mut out);
                    collect_signal_refs(decr, &mut out);
                }
                AuxKind::Sample { enable, value } => {
                    collect_signal_refs(enable, &mut out);
                    collect_signal_refs(value, &mut out);
                }
            }
        }
        for prop in self.all_properties() {
            match &prop.body {
                PropertyBody::Invariant(e) => collect_signal_refs(e, &mut out),
                PropertyBody::Implication {
                    antecedent,
                    consequent,
                    ..
                } => {
                    collect_signal_refs(antecedent, &mut out);
                    collect_signal_refs(consequent.expr(), &mut out);
                }
            }
        }
        out
    }
}

/// Collects the signal names an annotation expression can refer to.  Unlike
/// [`svparse::ast::Expr::referenced_idents`] this keeps member accesses:
/// `port.field` contributes `port`, `port.field` *and* `port_field`, because
/// the compiler resolves it against any of the three.
fn collect_signal_refs(expr: &svparse::ast::Expr, out: &mut std::collections::BTreeSet<String>) {
    use svparse::ast::Expr;
    match expr {
        Expr::Ident(name) => {
            out.insert(name.clone());
        }
        Expr::Number(_) | Expr::Str(_) | Expr::Macro(_) => {}
        Expr::Unary { operand, .. } => collect_signal_refs(operand, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_signal_refs(lhs, out);
            collect_signal_refs(rhs, out);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            collect_signal_refs(cond, out);
            collect_signal_refs(then_expr, out);
            collect_signal_refs(else_expr, out);
        }
        Expr::Index { base, index } => {
            collect_signal_refs(base, out);
            collect_signal_refs(index, out);
        }
        Expr::RangeSelect { base, msb, lsb } => {
            collect_signal_refs(base, out);
            collect_signal_refs(msb, out);
            collect_signal_refs(lsb, out);
        }
        Expr::Member { base, member } => {
            if let Some(b) = base.as_ident() {
                out.insert(format!("{b}.{member}"));
                out.insert(format!("{b}_{member}"));
            }
            collect_signal_refs(base, out);
        }
        Expr::Concat(parts) => {
            for p in parts {
                collect_signal_refs(p, out);
            }
        }
        Expr::Replicate { count, value } => {
            collect_signal_refs(count, out);
            collect_signal_refs(value, out);
        }
        Expr::Call { args, .. } => {
            for a in args {
                collect_signal_refs(a, out);
            }
        }
    }
}

/// Runs the full AutoSVA pipeline on annotated RTL source text.
///
/// # Errors
///
/// Fails if the source does not parse, the requested DUT module is missing,
/// the annotations are malformed, or a transaction is inconsistent.
///
/// # Examples
///
/// ```
/// use autosva::{generate_ft, AutosvaOptions};
///
/// let src = "\
/// /*AUTOSVA
/// fifo_txn: push -in> pop
/// */
/// module fifo (
///   input  logic clk_i,
///   input  logic rst_ni,
///   input  logic push_val,
///   output logic push_ack,
///   output logic pop_val,
///   input  logic pop_ack
/// );
/// endmodule";
/// let ft = generate_ft(src, &AutosvaOptions::default())?;
/// assert_eq!(ft.dut_name, "fifo");
/// assert!(ft.stats().properties > 0);
/// assert!(ft.property_file.contains("module fifo_prop"));
/// # Ok::<(), autosva::AutosvaError>(())
/// ```
pub fn generate_ft(source: &str, options: &AutosvaOptions) -> Result<FormalTestbench> {
    // Step 1: parse the annotated RTL.
    let (file, comments) = parse_with_comments(source)?;
    let dut = match &options.dut {
        Some(name) => file
            .module(name)
            .ok_or_else(|| AutosvaError::ModuleNotFound(name.clone()))?,
        None => file
            .modules()
            .next()
            .ok_or_else(|| AutosvaError::ModuleNotFound("<first module>".to_string()))?,
    }
    .clone();
    let annotations = parse_annotations(&comments, &dut)?;

    // Step 2: build transaction objects.
    let transactions = build_transactions(&annotations)?;

    // Steps 3 and 4: auxiliary signals and properties.
    let model = generate(&transactions, &options.propgen);

    // Submodule linking.
    let mut linked_properties = Vec::new();
    for link in &options.submodules {
        for prop in link.testbench.all_properties() {
            let adjusted = match link.mode {
                SubmoduleMode::Assume => {
                    // Only the submodule's assumptions (environment
                    // constraints) are imported.
                    if prop.directive != Directive::Assume {
                        continue;
                    }
                    prop.clone()
                }
                SubmoduleMode::Assert => prop.asserted(),
            };
            let mut namespaced = adjusted;
            namespaced.name = format!("{}__{}", link.instance_path, namespaced.name);
            linked_properties.push(namespaced);
        }
    }

    // Step 5: render files and tool configuration.
    let property_file = render_property_file(&dut, &model, &options.clocking);
    let bind_file = render_bind_file(&dut);
    let wrapper_file = render_wrapper_file(&dut);
    let tool_files = generate_tool_files(options.tool, &dut, &options.rtl_files, &options.clocking);

    Ok(FormalTestbench {
        dut_name: dut.name.clone(),
        dut,
        annotations,
        transactions,
        model,
        linked_properties,
        property_file,
        bind_file,
        wrapper_file,
        tool_files,
        options: options.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MMU: &str = r#"
/*AUTOSVA
mmu_lsu: lsu_req -in> lsu_res
lsu_req_val = lsu_req_i
lsu_req_ack = lsu_gnt_o
[2:0] lsu_req_transid = lsu_tid_i
lsu_res_val = lsu_valid_o
[2:0] lsu_res_transid = lsu_tid_o
ptw_dcache: ptw_req -out> dcache_res
ptw_req_val = dcache_req_o
ptw_req_ack = dcache_gnt_i
dcache_res_val = dcache_rvalid_i
*/
module mmu (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic lsu_req_i,
  output logic lsu_gnt_o,
  input  logic [2:0] lsu_tid_i,
  output logic lsu_valid_o,
  output logic [2:0] lsu_tid_o,
  output logic dcache_req_o,
  input  logic dcache_gnt_i,
  input  logic dcache_rvalid_i
);
endmodule
"#;

    #[test]
    fn full_pipeline_on_two_transactions() {
        let ft = generate_ft(MMU, &AutosvaOptions::default()).unwrap();
        assert_eq!(ft.dut_name, "mmu");
        assert_eq!(ft.transactions.len(), 2);
        let stats = ft.stats();
        assert_eq!(stats.transactions, 2);
        assert!(stats.properties >= 8);
        assert!(stats.assertions > 0);
        assert!(stats.assumptions > 0);
        assert!(stats.covers >= 2);
        assert!(stats.annotation_loc >= 9);
        assert!(ft.property_file.contains("module mmu_prop"));
        assert!(ft.bind_file.contains("bind mmu"));
        assert!(ft.wrapper_file.contains("module mmu_formal_top"));
    }

    #[test]
    fn dut_selection_by_name() {
        let src = format!("{MMU}\nmodule other (input logic x);\nendmodule");
        let options = AutosvaOptions {
            dut: Some("mmu".to_string()),
            ..AutosvaOptions::default()
        };
        let ft = generate_ft(&src, &options).unwrap();
        assert_eq!(ft.dut_name, "mmu");
        let missing = AutosvaOptions {
            dut: Some("nonexistent".to_string()),
            ..AutosvaOptions::default()
        };
        assert!(matches!(
            generate_ft(&src, &missing).unwrap_err(),
            AutosvaError::ModuleNotFound(_)
        ));
    }

    #[test]
    fn tool_files_for_each_backend() {
        for tool in [
            FormalTool::JasperGold,
            FormalTool::SymbiYosys,
            FormalTool::Builtin,
        ] {
            let options = AutosvaOptions {
                tool,
                rtl_files: vec!["rtl/mmu.sv".to_string()],
                ..AutosvaOptions::default()
            };
            let ft = generate_ft(MMU, &options).unwrap();
            assert!(!ft.tool_files.is_empty(), "{tool} produced no files");
        }
    }

    #[test]
    fn submodule_link_assert_mode_flips_assumptions() {
        let sub = generate_ft(MMU, &AutosvaOptions::default()).unwrap();
        let parent_src = r#"
/*AUTOSVA
top_txn: in -in> out
in_val = in_valid
out_val = out_valid
*/
module top (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic in_valid,
  output logic out_valid
);
endmodule
"#;
        let sub_assumption_count = sub
            .all_properties()
            .iter()
            .filter(|p| p.directive == Directive::Assume)
            .count();
        assert!(sub_assumption_count > 0);

        let options = AutosvaOptions {
            submodules: vec![SubmoduleLink {
                testbench: sub.clone(),
                instance_path: "u_mmu".to_string(),
                mode: SubmoduleMode::Assert,
            }],
            ..AutosvaOptions::default()
        };
        let parent = generate_ft(parent_src, &options).unwrap();
        assert!(!parent.linked_properties.is_empty());
        assert!(parent
            .linked_properties
            .iter()
            .all(|p| p.directive != Directive::Assume));
        assert!(parent
            .linked_properties
            .iter()
            .all(|p| p.name.starts_with("u_mmu__")));

        let options_am = AutosvaOptions {
            submodules: vec![SubmoduleLink {
                testbench: sub.clone(),
                instance_path: "u_mmu".to_string(),
                mode: SubmoduleMode::Assume,
            }],
            ..AutosvaOptions::default()
        };
        let parent_am = generate_ft(parent_src, &options_am).unwrap();
        assert_eq!(parent_am.linked_properties.len(), sub_assumption_count);
        assert!(parent_am
            .linked_properties
            .iter()
            .all(|p| p.directive == Directive::Assume));
    }

    #[test]
    fn properties_of_class_filter() {
        let ft = generate_ft(MMU, &AutosvaOptions::default()).unwrap();
        let liveness = ft.properties_of_class(PropertyClass::Liveness);
        assert!(!liveness.is_empty());
        assert!(liveness.iter().all(|p| p.class == PropertyClass::Liveness));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_ft(MMU, &AutosvaOptions::default()).unwrap();
        let b = generate_ft(MMU, &AutosvaOptions::default()).unwrap();
        assert_eq!(a.property_file, b.property_file);
        assert_eq!(a.bind_file, b.bind_file);
        assert_eq!(a.stats(), b.stats());
    }
}
