//! Error types for the AutoSVA pipeline.

use std::error::Error;
use std::fmt;

/// Errors produced while generating a formal testbench.
#[derive(Debug, Clone, PartialEq)]
pub enum AutosvaError {
    /// The RTL source failed to lex or parse.
    Parse(svparse::ParseError),
    /// An AutoSVA annotation line could not be understood.
    Annotation {
        /// Human-readable description of the problem.
        message: String,
        /// 1-based line number of the annotation within its source file, if
        /// known.
        line: Option<usize>,
    },
    /// The annotations were syntactically valid but semantically inconsistent
    /// (e.g. a `transid` defined on only one side of a transaction).
    Validation {
        /// Name of the offending transaction.
        transaction: String,
        /// Human-readable description of the inconsistency.
        message: String,
    },
    /// The requested module was not found in the parsed source.
    ModuleNotFound(String),
    /// No AutoSVA annotations were found in the source.
    NoAnnotations,
}

impl fmt::Display for AutosvaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutosvaError::Parse(e) => write!(f, "failed to parse RTL source: {e}"),
            AutosvaError::Annotation { message, line } => match line {
                Some(line) => write!(f, "invalid annotation at line {line}: {message}"),
                None => write!(f, "invalid annotation: {message}"),
            },
            AutosvaError::Validation {
                transaction,
                message,
            } => write!(f, "invalid transaction `{transaction}`: {message}"),
            AutosvaError::ModuleNotFound(name) => write!(f, "module `{name}` not found in source"),
            AutosvaError::NoAnnotations => {
                write!(f, "no AutoSVA annotations found in the source")
            }
        }
    }
}

impl AutosvaError {
    /// Formats the error against its originating `source` text, upgrading
    /// byte offsets to 1-based line/column positions where possible.
    ///
    /// [`fmt::Display`] must stay self-contained (the source text is not
    /// stored in the error), so parse errors display their byte span there;
    /// use this method when the source is at hand to get `line:column`
    /// diagnostics instead.
    pub fn render(&self, source: &str) -> String {
        match self {
            AutosvaError::Parse(e) => format!("failed to parse RTL source: {}", e.render(source)),
            other => other.to_string(),
        }
    }

    /// The 1-based source line the error points at, when one is known.
    pub fn line(&self) -> Option<usize> {
        match self {
            AutosvaError::Annotation { line, .. } => *line,
            _ => None,
        }
    }
}

impl Error for AutosvaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AutosvaError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<svparse::ParseError> for AutosvaError {
    fn from(e: svparse::ParseError) -> Self {
        AutosvaError::Parse(e)
    }
}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, AutosvaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = AutosvaError::Annotation {
            message: "bad suffix".into(),
            line: Some(12),
        };
        assert!(e.to_string().contains("line 12"));
        let e = AutosvaError::Validation {
            transaction: "lsu_load".into(),
            message: "transid on one side only".into(),
        };
        assert!(e.to_string().contains("lsu_load"));
        assert!(AutosvaError::NoAnnotations
            .to_string()
            .contains("annotations"));
        assert!(AutosvaError::ModuleNotFound("mmu".into())
            .to_string()
            .contains("mmu"));
    }

    #[test]
    fn render_upgrades_parse_errors_to_line_column() {
        let src = "module m (\ninput logic a$\n);\nendmodule";
        let pe = svparse::parse(src).unwrap_err();
        let ae: AutosvaError = pe.into();
        let rendered = ae.render(src);
        // The rendered form points at line 2; plain Display only has bytes.
        assert!(rendered.contains("2:"), "rendered: {rendered}");
        assert!(ae.to_string().contains("bytes"));
    }

    #[test]
    fn line_accessor() {
        let e = AutosvaError::Annotation {
            message: "bad".into(),
            line: Some(7),
        };
        assert_eq!(e.line(), Some(7));
        assert_eq!(AutosvaError::NoAnnotations.line(), None);
    }

    #[test]
    fn from_parse_error() {
        let pe = svparse::parse("module ;").unwrap_err();
        let ae: AutosvaError = pe.clone().into();
        assert_eq!(ae, AutosvaError::Parse(pe));
        assert!(Error::source(&ae).is_some());
    }
}
