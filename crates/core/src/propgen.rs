//! Property generation based on transaction attributes (Section III-B,
//! Table II of the paper).
//!
//! For every validated [`Transaction`] the generator produces:
//!
//! * auxiliary modeling code (handshake wires, symbolic transaction-ID
//!   variables, outstanding-transaction counters, data sampling registers),
//! * liveness, safety, stability, uniqueness, data-integrity and
//!   X-propagation properties with the assert/assume polarity dictated by the
//!   transaction direction,
//! * a cover point witnessing that the transaction can actually happen.
//!
//! The polarity rules follow Table II: attributes marked `*` in the paper
//! (`val`, `ack`, `transid`, `data`) are *asserted* for incoming transactions
//! and *assumed* for outgoing ones; `stable` and `transid_unique` have the
//! opposite polarity; `active` is always asserted.

use crate::annotation::{RelationDir, WidthSpec};
use crate::signals::{AuxSignal, DEFAULT_COUNTER_WIDTH};
use crate::sva::{Consequent, Directive, PropertyBody, PropertyClass, SvaProperty};
use crate::transaction::Transaction;
use svparse::ast::{BinaryOp, Expr, UnaryOp};

/// Options controlling property generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropgenOptions {
    /// Convert every assumption into an assertion (the paper's
    /// `ASSERT_INPUTS` parameter, used when verifying a submodule whose
    /// inputs are driven by real logic).
    pub assert_inputs: bool,
    /// Width in bits of the outstanding-transaction counters.
    pub counter_width: u32,
    /// Generate X-propagation assertions (guarded by the `XPROP` macro and
    /// only checked in simulation).
    pub xprop: bool,
}

impl Default for PropgenOptions {
    fn default() -> Self {
        PropgenOptions {
            assert_inputs: false,
            counter_width: DEFAULT_COUNTER_WIDTH,
            xprop: true,
        }
    }
}

/// The generated model for a single transaction: its auxiliary signals and
/// properties.
#[derive(Debug, Clone, PartialEq)]
pub struct TransactionModel {
    /// The transaction this model was generated from.
    pub transaction: Transaction,
    /// Auxiliary signals (wires, counters, symbolics, sample registers).
    pub aux: Vec<AuxSignal>,
    /// Generated properties.
    pub properties: Vec<SvaProperty>,
}

impl TransactionModel {
    /// Name of the outstanding-transaction counter, when one is generated.
    pub fn counter_name(&self) -> Option<String> {
        self.aux
            .iter()
            .find(|a| matches!(a.kind, crate::signals::AuxKind::Counter { .. }))
            .map(|a| a.name.clone())
    }
}

/// The complete generated formal-testbench model for a DUT: every
/// transaction's auxiliary signals (deduplicated by name) and properties.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FtModel {
    /// Per-transaction models.
    pub models: Vec<TransactionModel>,
}

impl FtModel {
    /// All auxiliary signals across transactions, deduplicated by name
    /// (interfaces shared by several transactions produce identical handshake
    /// wires).
    pub fn aux_signals(&self) -> Vec<&AuxSignal> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for model in &self.models {
            for aux in &model.aux {
                if seen.insert(aux.name.clone()) {
                    out.push(aux);
                }
            }
        }
        out
    }

    /// All generated properties in transaction order.
    pub fn properties(&self) -> Vec<&SvaProperty> {
        self.models
            .iter()
            .flat_map(|m| m.properties.iter())
            .collect()
    }

    /// Number of unique properties (by full name).
    pub fn unique_property_count(&self) -> usize {
        let names: std::collections::HashSet<String> =
            self.properties().iter().map(|p| p.full_name()).collect();
        names.len()
    }
}

/// Generates the full formal-testbench model for a set of transactions.
pub fn generate(transactions: &[Transaction], opts: &PropgenOptions) -> FtModel {
    FtModel {
        models: transactions
            .iter()
            .map(|t| generate_for_transaction(t, opts))
            .collect(),
    }
}

/// Directive for attributes asserted on incoming / assumed on outgoing
/// transactions (`val`, `ack`, `transid`, `data`).
fn forward_directive(dir: RelationDir) -> Directive {
    match dir {
        RelationDir::Incoming => Directive::Assert,
        RelationDir::Outgoing => Directive::Assume,
    }
}

/// Directive for attributes assumed on incoming / asserted on outgoing
/// transactions (`stable`, `transid_unique`).
fn reverse_directive(dir: RelationDir) -> Directive {
    match dir {
        RelationDir::Incoming => Directive::Assume,
        RelationDir::Outgoing => Directive::Assert,
    }
}

fn class_for(directive: Directive, asserted_class: PropertyClass) -> PropertyClass {
    // Liveness obligations that end up assumed act as environment fairness.
    if directive == Directive::Assume && asserted_class == PropertyClass::Liveness {
        PropertyClass::Fairness
    } else {
        asserted_class
    }
}

fn and(a: Expr, b: Expr) -> Expr {
    Expr::binary(BinaryOp::LogicalAnd, a, b)
}

fn or(a: Expr, b: Expr) -> Expr {
    Expr::binary(BinaryOp::LogicalOr, a, b)
}

fn not(a: Expr) -> Expr {
    Expr::unary(UnaryOp::LogicalNot, a)
}

fn eq(a: Expr, b: Expr) -> Expr {
    Expr::binary(BinaryOp::Eq, a, b)
}

fn gt_zero(name: &str) -> Expr {
    Expr::binary(BinaryOp::Gt, Expr::ident(name), Expr::number(0))
}

fn eq_zero(name: &str) -> Expr {
    Expr::binary(BinaryOp::Eq, Expr::ident(name), Expr::number(0))
}

/// Generates auxiliary signals and properties for one transaction.
pub fn generate_for_transaction(txn: &Transaction, opts: &PropgenOptions) -> TransactionModel {
    let mut aux = Vec::new();
    let mut properties = Vec::new();
    let tname = &txn.name;
    let has_response = txn.response.val.is_some();
    let tracks_id = txn.tracks_transid();

    // ----------------------------------------------------------------
    // Auxiliary signals
    // ----------------------------------------------------------------
    let p_hsk_name = format!("{}_hsk", txn.request.name);
    if let Some(hsk) = txn.request.handshake_expr() {
        aux.push(AuxSignal::wire(p_hsk_name.clone(), hsk));
    }
    let q_hsk_name = format!("{}_hsk", txn.response.name);
    if has_response {
        if let Some(hsk) = txn.response.handshake_expr() {
            aux.push(AuxSignal::wire(q_hsk_name.clone(), hsk));
        }
    }

    let symb_name = format!("symb_{tname}_transid");
    if tracks_id {
        let width = txn
            .request
            .transid
            .as_ref()
            .and_then(|t| t.width.clone())
            .or_else(|| txn.response.transid.as_ref().and_then(|t| t.width.clone()));
        aux.push(AuxSignal::symbolic(symb_name.clone(), width));
    }

    let set_name = format!("{tname}_set");
    let response_name = format!("{tname}_response");
    let sampled_name = format!("{tname}_sampled");
    let data_sampled_name = format!("{tname}_data_sampled");

    if has_response {
        // `set`: a tracked request handshake this cycle.
        let mut set_expr = Expr::ident(p_hsk_name.clone());
        if tracks_id {
            let req_id = txn
                .request
                .transid
                .as_ref()
                .expect("tracks_id")
                .expr
                .clone();
            set_expr = and(set_expr, eq(req_id, Expr::ident(symb_name.clone())));
        }
        aux.push(AuxSignal::wire(set_name.clone(), set_expr));

        // `response`: a tracked response handshake this cycle.
        let mut resp_expr = Expr::ident(q_hsk_name.clone());
        if tracks_id {
            let res_id = txn
                .response
                .transid
                .as_ref()
                .expect("tracks_id")
                .expr
                .clone();
            resp_expr = and(resp_expr, eq(res_id, Expr::ident(symb_name.clone())));
        }
        aux.push(AuxSignal::wire(response_name.clone(), resp_expr));

        // Outstanding-transaction counter.
        aux.push(AuxSignal::counter(
            sampled_name.clone(),
            opts.counter_width,
            Expr::ident(set_name.clone()),
            Expr::ident(response_name.clone()),
        ));

        if txn.checks_data() {
            let req_data = txn.request.data.as_ref().expect("checks_data");
            aux.push(AuxSignal::sample(
                data_sampled_name.clone(),
                req_data.width.clone(),
                Expr::ident(set_name.clone()),
                req_data.expr.clone(),
            ));
        }
    }

    // ----------------------------------------------------------------
    // Cover: the transaction can actually happen.  Zero-latency responses
    // never raise the outstanding counter, so the cover also accepts a
    // request handshake in the current cycle.
    // ----------------------------------------------------------------
    let cover_body = if has_response {
        PropertyBody::Invariant(or(Expr::ident(set_name.clone()), gt_zero(&sampled_name)))
    } else {
        PropertyBody::Invariant(Expr::ident(p_hsk_name.clone()))
    };
    properties.push(SvaProperty {
        name: format!("{tname}_request_happens"),
        directive: Directive::Cover,
        class: PropertyClass::Cover,
        body: cover_body,
        xprop_only: false,
        transaction: tname.clone(),
    });

    // ----------------------------------------------------------------
    // `ack` — request is eventually accepted (or dropped when no `stable`
    // payload is declared).
    // ----------------------------------------------------------------
    if let (Some(val), Some(ack)) = (&txn.request.val, &txn.request.ack) {
        let directive = forward_directive(txn.dir);
        let target = if txn.request.stable.is_some() {
            ack.expr.clone()
        } else {
            or(not(val.expr.clone()), ack.expr.clone())
        };
        properties.push(SvaProperty {
            name: format!("{tname}_hsk_or_drop"),
            directive,
            class: class_for(directive, PropertyClass::Liveness),
            body: PropertyBody::Implication {
                antecedent: val.expr.clone(),
                consequent: Consequent::Eventually(target),
                non_overlap: false,
            },
            xprop_only: false,
            transaction: tname.clone(),
        });
    }
    // Response-side handshake: the party accepting the response is the
    // opposite of the one accepting the request.
    if let (Some(val), Some(ack)) = (&txn.response.val, &txn.response.ack) {
        let directive = forward_directive(flip(txn.dir));
        let target = if txn.response.stable.is_some() {
            ack.expr.clone()
        } else {
            or(not(val.expr.clone()), ack.expr.clone())
        };
        properties.push(SvaProperty {
            name: format!("{tname}_response_hsk_or_drop"),
            directive,
            class: class_for(directive, PropertyClass::Liveness),
            body: PropertyBody::Implication {
                antecedent: val.expr.clone(),
                consequent: Consequent::Eventually(target),
                non_overlap: false,
            },
            xprop_only: false,
            transaction: tname.clone(),
        });
    }

    // ----------------------------------------------------------------
    // `val` — every request eventually gets a response, and every response
    // had a request.
    // ----------------------------------------------------------------
    if has_response {
        let directive = forward_directive(txn.dir);
        properties.push(SvaProperty {
            name: format!("{tname}_eventual_response"),
            directive,
            class: class_for(directive, PropertyClass::Liveness),
            body: PropertyBody::Implication {
                antecedent: Expr::ident(set_name.clone()),
                consequent: Consequent::Eventually(Expr::ident(response_name.clone())),
                non_overlap: false,
            },
            xprop_only: false,
            transaction: tname.clone(),
        });
        properties.push(SvaProperty {
            name: format!("{tname}_had_a_request"),
            directive,
            class: PropertyClass::Safety,
            body: PropertyBody::Implication {
                antecedent: Expr::ident(response_name.clone()),
                consequent: Consequent::Expr(or(
                    Expr::ident(set_name.clone()),
                    gt_zero(&sampled_name),
                )),
                non_overlap: false,
            },
            xprop_only: false,
            transaction: tname.clone(),
        });
    }

    // ----------------------------------------------------------------
    // `stable` — payload held until acknowledged.
    // ----------------------------------------------------------------
    if let (Some(val), Some(ack), Some(stable)) =
        (&txn.request.val, &txn.request.ack, &txn.request.stable)
    {
        let directive = reverse_directive(txn.dir);
        properties.push(SvaProperty {
            name: format!("{tname}_stability"),
            directive,
            class: PropertyClass::Stability,
            body: PropertyBody::Implication {
                antecedent: and(val.expr.clone(), not(ack.expr.clone())),
                consequent: Consequent::Stable(stable.expr.clone()),
                non_overlap: true,
            },
            xprop_only: false,
            transaction: tname.clone(),
        });
    }
    if let (Some(val), Some(ack), Some(stable)) =
        (&txn.response.val, &txn.response.ack, &txn.response.stable)
    {
        let directive = reverse_directive(flip(txn.dir));
        properties.push(SvaProperty {
            name: format!("{tname}_response_stability"),
            directive,
            class: PropertyClass::Stability,
            body: PropertyBody::Implication {
                antecedent: and(val.expr.clone(), not(ack.expr.clone())),
                consequent: Consequent::Stable(stable.expr.clone()),
                non_overlap: true,
            },
            xprop_only: false,
            transaction: tname.clone(),
        });
    }

    // ----------------------------------------------------------------
    // `transid_unique` — at most one outstanding transaction per ID.
    // ----------------------------------------------------------------
    if (txn.request.transid_unique || txn.response.transid_unique) && has_response && tracks_id {
        let directive = reverse_directive(txn.dir);
        properties.push(SvaProperty {
            name: format!("{tname}_transid_unique"),
            directive,
            class: PropertyClass::Uniqueness,
            body: PropertyBody::Implication {
                antecedent: Expr::ident(set_name.clone()),
                consequent: Consequent::Expr(eq_zero(&sampled_name)),
                non_overlap: false,
            },
            xprop_only: false,
            transaction: tname.clone(),
        });
    }

    // ----------------------------------------------------------------
    // `data` — response data matches the (sampled) request data.
    // ----------------------------------------------------------------
    if has_response && txn.checks_data() {
        let directive = forward_directive(txn.dir);
        let req_data = txn.request.data.as_ref().expect("checks_data").expr.clone();
        let res_data = txn
            .response
            .data
            .as_ref()
            .expect("checks_data")
            .expr
            .clone();
        // If the request and response handshakes coincide (zero-latency
        // response) the data is compared directly; otherwise against the
        // sampling register.
        let expected = Expr::Ternary {
            cond: Box::new(and(Expr::ident(set_name.clone()), eq_zero(&sampled_name))),
            then_expr: Box::new(req_data),
            else_expr: Box::new(Expr::ident(data_sampled_name.clone())),
        };
        properties.push(SvaProperty {
            name: format!("{tname}_data_integrity"),
            directive,
            class: PropertyClass::DataIntegrity,
            body: PropertyBody::Implication {
                antecedent: Expr::ident(response_name.clone()),
                consequent: Consequent::Expr(eq(res_data, expected)),
                non_overlap: false,
            },
            xprop_only: false,
            transaction: tname.clone(),
        });
    }

    // ----------------------------------------------------------------
    // `active` — asserted while a transaction is outstanding.
    // ----------------------------------------------------------------
    for (side, suffix) in [(&txn.request, "request"), (&txn.response, "response")] {
        if let Some(active) = &side.active {
            if has_response {
                properties.push(SvaProperty {
                    name: format!("{tname}_{suffix}_active"),
                    directive: Directive::Assert,
                    class: PropertyClass::Safety,
                    body: PropertyBody::Implication {
                        antecedent: gt_zero(&sampled_name),
                        consequent: Consequent::Expr(active.expr.clone()),
                        non_overlap: false,
                    },
                    xprop_only: false,
                    transaction: tname.clone(),
                });
            }
        }
    }

    // ----------------------------------------------------------------
    // X-propagation assertions (simulation only).
    // ----------------------------------------------------------------
    if opts.xprop {
        for (side, suffix) in [(&txn.request, "request"), (&txn.response, "response")] {
            if let Some(val) = &side.val {
                let payload: Vec<Expr> = side
                    .payload_signals()
                    .iter()
                    .map(|s| s.expr.clone())
                    .collect();
                if payload.is_empty() {
                    continue;
                }
                let concat = if payload.len() == 1 {
                    payload.into_iter().next().expect("len checked")
                } else {
                    Expr::Concat(payload)
                };
                properties.push(SvaProperty {
                    name: format!("{tname}_{suffix}_xprop"),
                    directive: Directive::Assert,
                    class: PropertyClass::Xprop,
                    body: PropertyBody::Implication {
                        antecedent: val.expr.clone(),
                        consequent: Consequent::NotUnknown(concat),
                        non_overlap: false,
                    },
                    xprop_only: true,
                    transaction: tname.clone(),
                });
            }
        }
    }

    // ----------------------------------------------------------------
    // ASSERT_INPUTS: every assumption becomes an assertion.
    // ----------------------------------------------------------------
    if opts.assert_inputs {
        properties = properties.into_iter().map(|p| p.asserted()).collect();
    }

    TransactionModel {
        transaction: txn.clone(),
        aux,
        properties,
    }
}

fn flip(dir: RelationDir) -> RelationDir {
    match dir {
        RelationDir::Incoming => RelationDir::Outgoing,
        RelationDir::Outgoing => RelationDir::Incoming,
    }
}

/// Returns the width specification of a counter with `bits` bits.
pub fn counter_width_spec(bits: u32) -> WidthSpec {
    WidthSpec {
        msb: Expr::number(u128::from(bits.saturating_sub(1))),
        lsb: Expr::number(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::parse_annotations;
    use crate::transaction::build_transactions;
    use svparse::parse_with_comments;

    fn model_for(src: &str, module: &str, opts: &PropgenOptions) -> FtModel {
        let (file, comments) = parse_with_comments(src).unwrap();
        let module = file.module(module).unwrap();
        let block = parse_annotations(&comments, module).unwrap();
        let txns = build_transactions(&block).unwrap();
        generate(&txns, opts)
    }

    const LSU: &str = r#"
/*AUTOSVA
lsu_load: lsu_req -in> lsu_res
lsu_req_val = lsu_valid_i
lsu_req_rdy = lsu_ready_o
[2:0] lsu_req_transid = trans_id_i
[4:0] lsu_req_stable = {trans_id_i, fu_i}
lsu_res_val = load_valid_o
[2:0] lsu_res_transid = load_trans_id_o
*/
module lsu (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic lsu_valid_i,
  input  logic [2:0] trans_id_i,
  input  logic [1:0] fu_i,
  output logic lsu_ready_o,
  output logic load_valid_o,
  output logic [2:0] load_trans_id_o
);
endmodule
"#;

    fn property<'a>(ft: &'a FtModel, name: &str) -> &'a SvaProperty {
        ft.properties()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("property `{name}` not generated"))
    }

    #[test]
    fn lsu_incoming_generates_figure2_properties() {
        let ft = model_for(LSU, "lsu", &PropgenOptions::default());
        // Figure 2 of the paper: cover, stability assume, hsk-or-drop assert,
        // eventual-response assert, had-a-request assert.
        let cover = property(&ft, "lsu_load_request_happens");
        assert_eq!(cover.directive, Directive::Cover);

        let stability = property(&ft, "lsu_load_stability");
        assert_eq!(stability.directive, Directive::Assume);
        assert_eq!(stability.class, PropertyClass::Stability);
        match &stability.body {
            PropertyBody::Implication { non_overlap, .. } => assert!(*non_overlap),
            other => panic!("unexpected body {other:?}"),
        }

        let hsk = property(&ft, "lsu_load_hsk_or_drop");
        assert_eq!(hsk.directive, Directive::Assert);
        assert_eq!(hsk.class, PropertyClass::Liveness);

        let eventual = property(&ft, "lsu_load_eventual_response");
        assert_eq!(eventual.directive, Directive::Assert);
        assert_eq!(eventual.class, PropertyClass::Liveness);

        let had = property(&ft, "lsu_load_had_a_request");
        assert_eq!(had.directive, Directive::Assert);
        assert_eq!(had.class, PropertyClass::Safety);
    }

    #[test]
    fn lsu_aux_signals_generated() {
        let ft = model_for(LSU, "lsu", &PropgenOptions::default());
        let aux_names: Vec<&str> = ft.aux_signals().iter().map(|a| a.name.as_str()).collect();
        assert!(aux_names.contains(&"lsu_req_hsk"));
        assert!(aux_names.contains(&"lsu_res_hsk"));
        assert!(aux_names.contains(&"symb_lsu_load_transid"));
        assert!(aux_names.contains(&"lsu_load_set"));
        assert!(aux_names.contains(&"lsu_load_response"));
        assert!(aux_names.contains(&"lsu_load_sampled"));
        // No data attribute, so no sampling register.
        assert!(!aux_names.contains(&"lsu_load_data_sampled"));
    }

    #[test]
    fn outgoing_transaction_flips_polarity() {
        let src = r#"
/*AUTOSVA
ptw_dcache: ptw_req -out> dcache_res
ptw_req_val = req_o
ptw_req_ack = gnt_i
dcache_res_val = rvalid_i
*/
module ptw (input logic clk_i, input logic rst_ni, output logic req_o, input logic gnt_i, input logic rvalid_i);
endmodule
"#;
        let ft = model_for(src, "ptw", &PropgenOptions::default());
        // The environment must eventually grant and respond: assumptions.
        assert_eq!(
            property(&ft, "ptw_dcache_hsk_or_drop").directive,
            Directive::Assume
        );
        assert_eq!(
            property(&ft, "ptw_dcache_hsk_or_drop").class,
            PropertyClass::Fairness
        );
        assert_eq!(
            property(&ft, "ptw_dcache_eventual_response").directive,
            Directive::Assume
        );
        // The DUT must not emit more requests than responses it got... the
        // response-had-a-request check is also assumed on outgoing.
        assert_eq!(
            property(&ft, "ptw_dcache_had_a_request").directive,
            Directive::Assume
        );
    }

    #[test]
    fn assert_inputs_turns_assumes_into_asserts() {
        let src = r#"
/*AUTOSVA
t: req -out> res
req_val = a
req_ack = b
res_val = c
*/
module m (input logic clk_i, input logic rst_ni, output logic a, input logic b, input logic c);
endmodule
"#;
        let opts = PropgenOptions {
            assert_inputs: true,
            ..PropgenOptions::default()
        };
        let ft = model_for(src, "m", &opts);
        assert!(ft
            .properties()
            .iter()
            .all(|p| p.directive != Directive::Assume));
    }

    #[test]
    fn data_integrity_generated_with_sampling_register() {
        let src = r#"
/*AUTOSVA
q_txn: push -in> pop
push_val = push_valid
push_ack = push_ready
[1:0] push_transid = push_id
[7:0] push_data = push_payload
pop_val = pop_valid
[1:0] pop_transid = pop_id
[7:0] pop_data = pop_payload
*/
module q (
  input logic clk_i, input logic rst_ni,
  input logic push_valid, output logic push_ready,
  input logic [1:0] push_id, input logic [7:0] push_payload,
  output logic pop_valid, output logic [1:0] pop_id, output logic [7:0] pop_payload
);
endmodule
"#;
        let ft = model_for(src, "q", &PropgenOptions::default());
        let aux_names: Vec<&str> = ft.aux_signals().iter().map(|a| a.name.as_str()).collect();
        assert!(aux_names.contains(&"q_txn_data_sampled"));
        let integrity = property(&ft, "q_txn_data_integrity");
        assert_eq!(integrity.directive, Directive::Assert);
        assert_eq!(integrity.class, PropertyClass::DataIntegrity);
    }

    #[test]
    fn transid_unique_generated_with_reverse_polarity() {
        let src = r#"
/*AUTOSVA
t: req -in> res
req_val = a
[1:0] req_transid = id_i
req_transid_unique = 1'b1
res_val = b
[1:0] res_transid = id_o
*/
module m (input logic clk_i, input logic rst_ni, input logic a, input logic [1:0] id_i, output logic b, output logic [1:0] id_o);
endmodule
"#;
        let ft = model_for(src, "m", &PropgenOptions::default());
        let unique = property(&ft, "t_transid_unique");
        // Incoming: the environment guarantees uniqueness => assumption.
        assert_eq!(unique.directive, Directive::Assume);
        assert_eq!(unique.class, PropertyClass::Uniqueness);
    }

    #[test]
    fn active_attribute_always_asserted() {
        let src = r#"
/*AUTOSVA
dtlb_ptw: dtlb -in> ptw_update
dtlb_active = ptw_active_o
dtlb_val = dtlb_access_i && dtlb_miss_i
dtlb_ack = !ptw_active_o
ptw_update_val = ptw_update_valid_o
*/
module ptw (
  input logic clk_i, input logic rst_ni,
  input logic dtlb_access_i, input logic dtlb_miss_i,
  output logic ptw_active_o, output logic ptw_update_valid_o
);
endmodule
"#;
        let ft = model_for(src, "ptw", &PropgenOptions::default());
        let active = property(&ft, "dtlb_ptw_request_active");
        assert_eq!(active.directive, Directive::Assert);
    }

    #[test]
    fn xprop_assertions_are_guarded() {
        let ft = model_for(LSU, "lsu", &PropgenOptions::default());
        let xprops: Vec<_> = ft
            .properties()
            .into_iter()
            .filter(|p| p.class == PropertyClass::Xprop)
            .collect();
        assert!(!xprops.is_empty());
        assert!(xprops.iter().all(|p| p.xprop_only));
        let no_xprop = model_for(
            LSU,
            "lsu",
            &PropgenOptions {
                xprop: false,
                ..PropgenOptions::default()
            },
        );
        assert!(no_xprop
            .properties()
            .iter()
            .all(|p| p.class != PropertyClass::Xprop));
    }

    #[test]
    fn request_only_transaction_still_covers() {
        let src = r#"
/*AUTOSVA
t: req -in> res
req_val = a
req_ack = g
*/
module m (input logic clk_i, input logic rst_ni, input logic a, output logic g);
endmodule
"#;
        let ft = model_for(src, "m", &PropgenOptions::default());
        // No response `val`: no counters, but the handshake liveness and the
        // cover point still exist.
        assert!(property(&ft, "t_request_happens").class == PropertyClass::Cover);
        assert!(ft.properties().iter().any(|p| p.name == "t_hsk_or_drop"));
        assert!(ft
            .properties()
            .iter()
            .all(|p| p.name != "t_eventual_response"));
        assert!(ft.aux_signals().iter().all(|a| a.name != "t_sampled"));
    }

    #[test]
    fn unique_property_count_counts_names_once() {
        let ft = model_for(LSU, "lsu", &PropgenOptions::default());
        assert_eq!(ft.unique_property_count(), ft.properties().len());
        assert!(ft.unique_property_count() >= 6);
    }

    #[test]
    fn stable_without_drop_uses_strict_ack_target() {
        // With a `stable` payload declared, the request cannot be dropped:
        // the liveness target is the ack itself.
        let ft = model_for(LSU, "lsu", &PropgenOptions::default());
        let hsk = property(&ft, "lsu_load_hsk_or_drop");
        match &hsk.body {
            PropertyBody::Implication { consequent, .. } => match consequent {
                Consequent::Eventually(e) => {
                    assert_eq!(svparse::pretty::print_expr(e), "lsu_ready_o");
                }
                other => panic!("unexpected consequent {other:?}"),
            },
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn counter_width_spec_bits() {
        assert_eq!(counter_width_spec(4).const_width(), Some(4));
        assert_eq!(counter_width_spec(1).const_width(), Some(1));
    }
}
