//! `autosva` — automatic generation of SVA formal testbenches for RTL module
//! interactions.
//!
//! This crate reproduces the AutoSVA framework (Orenes-Vera et al., DAC
//! 2021): given an RTL module whose interface-declaration section carries
//! AutoSVA annotations, it generates a complete formal testbench —
//! SystemVerilog Assertions verifying the *liveness* and *safety* of the
//! module's transactions, the auxiliary modeling code those assertions need,
//! a bind file, and tool configuration for JasperGold, SymbiYosys, or the
//! SAT-based model checker bundled in the `autosva-formal` crate.
//!
//! # The annotation language
//!
//! A transaction relates a request interface (P) to a response interface (Q)
//! with a temporal implication.  The designer annotates the RTL with comments
//! such as (Fig. 3 of the paper):
//!
//! ```text
//! /*AUTOSVA
//! lsu_load: lsu_req -in> lsu_res
//! lsu_req_val = lsu_valid_i && fu_data_i.fu == LOAD
//! lsu_req_rdy = lsu_ready_o
//! [TRANS_ID_BITS-1:0] lsu_req_transid = fu_data_i.trans_id
//! lsu_res_val = load_valid_o
//! [TRANS_ID_BITS-1:0] lsu_res_transid = load_trans_id_o
//! */
//! ```
//!
//! See [`annotation`] for the grammar and [`propgen`] for the properties each
//! attribute produces.
//!
//! # Quick start
//!
//! ```
//! use autosva::{generate_ft, AutosvaOptions};
//!
//! let rtl = "\
//! /*AUTOSVA
//! req_txn: req -in> res
//! */
//! module adapter (
//!   input  logic clk_i,
//!   input  logic rst_ni,
//!   input  logic req_val,
//!   output logic req_ack,
//!   output logic res_val
//! );
//! endmodule";
//!
//! let testbench = generate_ft(rtl, &AutosvaOptions::default())?;
//! println!("{}", testbench.property_file);
//! assert!(testbench.stats().properties >= 3);
//! # Ok::<(), autosva::AutosvaError>(())
//! ```
//!
//! # Crate layout
//!
//! | module | pipeline step (Fig. 5) |
//! |--------|------------------------|
//! | [`annotation`] | step 1 — parse annotations and interface signals |
//! | [`transaction`] | step 2 — build and validate transaction objects |
//! | [`signals`] | step 3 — generate auxiliary signals (symbolics, counters) |
//! | [`propgen`] | step 4 — generate liveness/safety properties (Table II) |
//! | [`emit`], [`tools`] | step 5 — render property/bind files and tool setup |
//! | [`pipeline`] | the end-to-end driver |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod annotation;
pub mod emit;
pub mod error;
pub mod pipeline;
pub mod propgen;
pub mod signals;
pub mod sva;
pub mod tools;
pub mod transaction;

pub use annotation::{AttributeSuffix, RelationDir};
pub use error::AutosvaError;
pub use pipeline::{
    generate_ft, AutosvaOptions, FormalTestbench, FtStats, SubmoduleLink, SubmoduleMode,
};
pub use propgen::{FtModel, PropgenOptions, TransactionModel};
pub use signals::{AuxKind, AuxSignal, ClockingContext};
pub use sva::{Consequent, Directive, PropertyBody, PropertyClass, SvaProperty};
pub use tools::{FormalTool, ToolFile};
pub use transaction::{InterfaceSide, SignalRef, Transaction};
