//! SystemVerilog Assertion (SVA) property representation and rendering.
//!
//! AutoSVA generates a restricted, well-defined family of SVA properties
//! (Table II of the paper): invariants, single-implication properties with
//! optional `$stable`/`s_eventually` consequents, and cover points.  The
//! structured representation here is consumed directly by the formal
//! substrate (`autosva-formal`) and rendered to SVA text by
//! [`render_property`] for use with external tools.

use std::fmt;
use svparse::ast::Expr;
use svparse::pretty::print_expr;

/// The SVA directive of a property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Directive {
    /// `assert property (...)` — the design must satisfy this.
    Assert,
    /// `assume property (...)` — the environment is constrained by this.
    Assume,
    /// `cover property (...)` — reachability check.
    Cover,
}

impl Directive {
    /// The property-name prefix the paper uses for each directive
    /// (`as__`, `am__`, `co__`).
    pub fn name_prefix(&self) -> &'static str {
        match self {
            Directive::Assert => "as__",
            Directive::Assume => "am__",
            Directive::Cover => "co__",
        }
    }

    /// The SVA keyword.
    pub fn keyword(&self) -> &'static str {
        match self {
            Directive::Assert => "assert",
            Directive::Assume => "assume",
            Directive::Cover => "cover",
        }
    }
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Classification of a generated property, used for reporting and for the
/// formal engine to pick the right checking algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyClass {
    /// Something good eventually happens (requires liveness checking).
    Liveness,
    /// Nothing bad ever happens (safety/invariant checking).
    Safety,
    /// Request payload is stable until acknowledged.
    Stability,
    /// At most one outstanding transaction per ID.
    Uniqueness,
    /// Response data matches request data.
    DataIntegrity,
    /// Environment fairness (assumed liveness on outgoing interfaces).
    Fairness,
    /// X-propagation check (simulation only).
    Xprop,
    /// Reachability cover point.
    Cover,
}

impl fmt::Display for PropertyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PropertyClass::Liveness => "liveness",
            PropertyClass::Safety => "safety",
            PropertyClass::Stability => "stability",
            PropertyClass::Uniqueness => "uniqueness",
            PropertyClass::DataIntegrity => "data-integrity",
            PropertyClass::Fairness => "fairness",
            PropertyClass::Xprop => "x-propagation",
            PropertyClass::Cover => "cover",
        };
        f.write_str(s)
    }
}

/// The consequent of an implication property.
#[derive(Debug, Clone, PartialEq)]
pub enum Consequent {
    /// A plain Boolean expression that must hold.
    Expr(Expr),
    /// `$stable({expr})` — the expression keeps its previous value.
    Stable(Expr),
    /// `s_eventually(expr)` — the expression must eventually hold (strong
    /// eventuality).
    Eventually(Expr),
    /// `!$isunknown(expr)` — no X bits (simulation-only check).
    NotUnknown(Expr),
}

impl Consequent {
    /// The underlying expression.
    pub fn expr(&self) -> &Expr {
        match self {
            Consequent::Expr(e)
            | Consequent::Stable(e)
            | Consequent::Eventually(e)
            | Consequent::NotUnknown(e) => e,
        }
    }
}

/// The temporal shape of a property.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyBody {
    /// A plain invariant expression checked every cycle.
    Invariant(Expr),
    /// `antecedent |-> consequent` (or `|=>` when `non_overlap` is true).
    Implication {
        /// Enabling condition.
        antecedent: Expr,
        /// Obligation once enabled.
        consequent: Consequent,
        /// `true` renders `|=>` (consequent checked the following cycle).
        non_overlap: bool,
    },
}

/// A single generated SVA property.
#[derive(Debug, Clone, PartialEq)]
pub struct SvaProperty {
    /// Property label (without the directive prefix), e.g.
    /// `lsu_load_eventual_response`.
    pub name: String,
    /// Assert / assume / cover.
    pub directive: Directive,
    /// Classification used for reporting and engine selection.
    pub class: PropertyClass,
    /// Temporal shape.
    pub body: PropertyBody,
    /// `true` if the property is only meaningful in simulation and must be
    /// guarded by the `XPROP` macro.
    pub xprop_only: bool,
    /// Name of the transaction this property belongs to.
    pub transaction: String,
}

impl SvaProperty {
    /// The full label including the directive prefix, e.g.
    /// `as__lsu_load_eventual_response`.
    pub fn full_name(&self) -> String {
        format!("{}{}", self.directive.name_prefix(), self.name)
    }

    /// Returns a copy with assumptions converted into assertions, which is
    /// what the `ASSERT_INPUTS` parameter of the paper does for submodule
    /// verification.
    pub fn asserted(&self) -> SvaProperty {
        let mut p = self.clone();
        if p.directive == Directive::Assume {
            p.directive = Directive::Assert;
        }
        p
    }
}

/// Renders the body of a property as SVA text (without the directive).
pub fn render_body(body: &PropertyBody) -> String {
    match body {
        PropertyBody::Invariant(e) => print_expr(e),
        PropertyBody::Implication {
            antecedent,
            consequent,
            non_overlap,
        } => {
            let arrow = if *non_overlap { "|=>" } else { "|->" };
            let rhs = match consequent {
                Consequent::Expr(e) => print_expr(e),
                Consequent::Stable(e) => format!("$stable({})", print_expr(e)),
                Consequent::Eventually(e) => format!("s_eventually({})", print_expr(e)),
                Consequent::NotUnknown(e) => format!("!$isunknown({})", print_expr(e)),
            };
            format!("{} {arrow} {rhs}", print_expr(antecedent))
        }
    }
}

/// Renders a full labelled property statement, e.g.
///
/// ```text
/// as__lsu_load_eventual_response: assert property (lsu_load_set |-> s_eventually(lsu_load_response));
/// ```
///
/// The clocking and reset context is provided by a surrounding
/// `default clocking`/`default disable iff` block emitted by the property
/// file writer.
pub fn render_property(prop: &SvaProperty) -> String {
    let stmt = format!(
        "{}: {} property ({});",
        prop.full_name(),
        prop.directive.keyword(),
        render_body(&prop.body)
    );
    if prop.xprop_only {
        format!("`ifdef XPROP\n  {stmt}\n`endif")
    } else {
        stmt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svparse::ast::BinaryOp;

    fn sample_property() -> SvaProperty {
        SvaProperty {
            name: "lsu_load_eventual_response".into(),
            directive: Directive::Assert,
            class: PropertyClass::Liveness,
            body: PropertyBody::Implication {
                antecedent: Expr::ident("lsu_load_set"),
                consequent: Consequent::Eventually(Expr::ident("lsu_load_response")),
                non_overlap: false,
            },
            xprop_only: false,
            transaction: "lsu_load".into(),
        }
    }

    #[test]
    fn render_liveness_property() {
        let p = sample_property();
        assert_eq!(
            render_property(&p),
            "as__lsu_load_eventual_response: assert property (lsu_load_set |-> s_eventually(lsu_load_response));"
        );
    }

    #[test]
    fn render_stability_assume() {
        let p = SvaProperty {
            name: "lsu_load_stability".into(),
            directive: Directive::Assume,
            class: PropertyClass::Stability,
            body: PropertyBody::Implication {
                antecedent: Expr::binary(
                    BinaryOp::LogicalAnd,
                    Expr::ident("lsu_req_val"),
                    Expr::unary(
                        svparse::ast::UnaryOp::LogicalNot,
                        Expr::ident("lsu_req_ack"),
                    ),
                ),
                consequent: Consequent::Stable(Expr::ident("lsu_req_stable")),
                non_overlap: true,
            },
            xprop_only: false,
            transaction: "lsu_load".into(),
        };
        let text = render_property(&p);
        assert!(text.starts_with("am__lsu_load_stability: assume property ("));
        assert!(text.contains("|=> $stable(lsu_req_stable)"));
    }

    #[test]
    fn render_cover_invariant() {
        let p = SvaProperty {
            name: "lsu_load_request_happens".into(),
            directive: Directive::Cover,
            class: PropertyClass::Cover,
            body: PropertyBody::Invariant(Expr::binary(
                BinaryOp::Gt,
                Expr::ident("lsu_load_sampled"),
                Expr::number(0),
            )),
            xprop_only: false,
            transaction: "lsu_load".into(),
        };
        assert_eq!(
            render_property(&p),
            "co__lsu_load_request_happens: cover property ((lsu_load_sampled > 0));"
        );
    }

    #[test]
    fn xprop_guard() {
        let p = SvaProperty {
            name: "req_xprop".into(),
            directive: Directive::Assert,
            class: PropertyClass::Xprop,
            body: PropertyBody::Implication {
                antecedent: Expr::ident("req_val"),
                consequent: Consequent::NotUnknown(Expr::ident("req_data")),
                non_overlap: false,
            },
            xprop_only: true,
            transaction: "t".into(),
        };
        let text = render_property(&p);
        assert!(text.starts_with("`ifdef XPROP"));
        assert!(text.contains("!$isunknown(req_data)"));
        assert!(text.ends_with("`endif"));
    }

    #[test]
    fn asserted_flips_assume_only() {
        let mut p = sample_property();
        p.directive = Directive::Assume;
        assert_eq!(p.asserted().directive, Directive::Assert);
        let c = sample_property();
        assert_eq!(c.asserted().directive, Directive::Assert);
        let mut cover = sample_property();
        cover.directive = Directive::Cover;
        assert_eq!(cover.asserted().directive, Directive::Cover);
    }

    #[test]
    fn directive_prefixes() {
        assert_eq!(Directive::Assert.name_prefix(), "as__");
        assert_eq!(Directive::Assume.name_prefix(), "am__");
        assert_eq!(Directive::Cover.name_prefix(), "co__");
        assert_eq!(Directive::Assume.to_string(), "assume");
    }

    #[test]
    fn class_display() {
        assert_eq!(PropertyClass::Liveness.to_string(), "liveness");
        assert_eq!(PropertyClass::DataIntegrity.to_string(), "data-integrity");
    }

    #[test]
    fn consequent_expr_accessor() {
        let c = Consequent::Eventually(Expr::ident("x"));
        assert_eq!(c.expr().as_ident(), Some("x"));
    }
}
