//! Abstract syntax tree for the SystemVerilog subset.
//!
//! The tree is deliberately small: it covers module headers (parameters and
//! ports), net/variable declarations, continuous assignments, procedural
//! `always` blocks, module instantiations and the expression language needed
//! by the AutoSVA front end and the formal substrate.

use crate::span::Span;
use crate::token::NumberLit;
use std::fmt;

/// A parsed source file: a list of top-level items.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceFile {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl SourceFile {
    /// Returns the first module with the given name, if any.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.items.iter().find_map(|item| match item {
            Item::Module(m) if m.name == name => Some(m),
            _ => None,
        })
    }

    /// Iterates over all modules in the file.
    pub fn modules(&self) -> impl Iterator<Item = &Module> {
        self.items.iter().filter_map(|item| match item {
            Item::Module(m) => Some(m),
            _ => None,
        })
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A `module ... endmodule` definition.
    Module(Module),
    /// A `package ... endpackage` definition (contents limited to parameters
    /// and typedefs).
    Package(Package),
    /// A stray `typedef` at file scope.
    Typedef(Typedef),
}

/// A `package` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Package {
    /// Package name.
    pub name: String,
    /// `parameter`/`localparam` declarations inside the package.
    pub params: Vec<ParamDecl>,
    /// Typedefs inside the package.
    pub typedefs: Vec<Typedef>,
    /// Span of the whole package.
    pub span: Span,
}

/// A `typedef` declaration.  Only enum/struct/vector aliases are supported.
#[derive(Debug, Clone, PartialEq)]
pub struct Typedef {
    /// New type name.
    pub name: String,
    /// The aliased type.
    pub ty: DataType,
    /// Span of the whole typedef.
    pub span: Span,
}

/// A module definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Parameter-port list (`#(parameter ...)`).
    pub params: Vec<ParamDecl>,
    /// ANSI port declarations.
    pub ports: Vec<Port>,
    /// Body items (declarations, assigns, always blocks, instances).
    pub items: Vec<ModuleItem>,
    /// Span of the whole module.
    pub span: Span,
    /// Byte offset at which the port list ends (closing `)` of the header);
    /// useful for locating the "interface declaration section".
    pub header_end: usize,
}

impl Module {
    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Looks up a parameter (from the header) by name.
    pub fn param(&self, name: &str) -> Option<&ParamDecl> {
        self.params.iter().find(|p| p.name == name)
    }
}

/// A parameter or localparam declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// `true` for `localparam`.
    pub is_local: bool,
    /// Declared type, when one was written.
    pub ty: Option<DataType>,
    /// Default / assigned value.
    pub value: Option<Expr>,
    /// Source span.
    pub span: Span,
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout`
    Inout,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::Input => "input",
            Direction::Output => "output",
            Direction::Inout => "inout",
        })
    }
}

/// An ANSI-style port declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Port direction.
    pub direction: Direction,
    /// Declared data type (including packed dimensions).
    pub ty: DataType,
    /// Port name.
    pub name: String,
    /// Unpacked dimensions following the name, e.g. `[0:3]`.
    pub unpacked_dims: Vec<Range>,
    /// Source span of the declaration.
    pub span: Span,
    /// 1-based source line of the declaration (used to associate AutoSVA
    /// annotations, which are line-oriented).
    pub line: usize,
}

/// The scalar/vector kind of a data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NetKind {
    /// `logic` (default when no keyword is written).
    #[default]
    Logic,
    /// `wire`
    Wire,
    /// `reg`
    Reg,
    /// `bit`
    Bit,
    /// `integer` / `int`
    Integer,
    /// A named (user-defined) type, e.g. a struct typedef.
    Named,
    /// A `struct packed { ... }` type; fields in [`DataType::struct_fields`].
    Struct,
    /// An `enum [base] { ... }` type; members in [`DataType::enum_members`].
    Enum,
}

/// One field of a `struct packed` type.
#[derive(Debug, Clone, PartialEq)]
pub struct StructField {
    /// Field type (vectors and named types; nested anonymous structs are not
    /// supported).
    pub ty: DataType,
    /// Field name.
    pub name: String,
}

/// One member of an `enum` type.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumMember {
    /// Member name.
    pub name: String,
    /// Explicit value, when one was written (`LOAD = 1`).
    pub value: Option<Expr>,
}

/// A data type: net kind, optional signedness, packed dimensions, and a name
/// for user-defined types.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataType {
    /// Net/variable kind.
    pub kind: NetKind,
    /// Name of a user-defined type when `kind == NetKind::Named`, possibly
    /// package-scoped (e.g. `riscv::xlen_t`).
    pub type_name: Option<String>,
    /// `true` if declared `signed`.
    pub signed: bool,
    /// Packed dimensions, outermost first.  For `kind == NetKind::Enum` these
    /// are the dimensions of the explicit base type (`enum logic [1:0]`).
    pub packed_dims: Vec<Range>,
    /// Fields of a `struct packed` body, MSB-first as written (only for
    /// `kind == NetKind::Struct`).
    pub struct_fields: Vec<StructField>,
    /// Members of an `enum` body (only for `kind == NetKind::Enum`).
    pub enum_members: Vec<EnumMember>,
}

impl DataType {
    /// A plain 1-bit `logic` type.
    pub fn logic() -> Self {
        DataType::default()
    }

    /// A packed `logic [msb:lsb]` vector type.
    pub fn logic_vector(msb: Expr, lsb: Expr) -> Self {
        DataType {
            packed_dims: vec![Range { msb, lsb }],
            ..DataType::default()
        }
    }
}

/// A `[msb:lsb]` range.
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    /// Most-significant bound expression.
    pub msb: Expr,
    /// Least-significant bound expression.
    pub lsb: Expr,
}

/// An item inside a module body.
#[derive(Debug, Clone, PartialEq)]
pub enum ModuleItem {
    /// A net or variable declaration (`wire`, `logic`, `reg`, ...), possibly
    /// with an initializer.
    Decl(NetDecl),
    /// A `parameter`/`localparam` inside the body.
    Param(ParamDecl),
    /// A continuous assignment `assign lhs = rhs;`.
    ContinuousAssign(Assign),
    /// A procedural block (`always_ff`, `always_comb`, `always`, `initial`).
    Always(AlwaysBlock),
    /// A module instantiation.
    Instance(Instance),
    /// A typedef inside the module body.
    Typedef(Typedef),
}

/// A net or variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetDecl {
    /// Declared type.
    pub ty: DataType,
    /// Declared names (a single declaration may declare several nets).
    pub names: Vec<DeclName>,
    /// Source span.
    pub span: Span,
}

/// One declarator within a [`NetDecl`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeclName {
    /// Net name.
    pub name: String,
    /// Unpacked dimensions.
    pub unpacked_dims: Vec<Range>,
    /// Optional initializer (`wire x = a & b;`).
    pub init: Option<Expr>,
}

/// A continuous or procedural assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// Left-hand side (an lvalue expression).
    pub lhs: Expr,
    /// Right-hand side.
    pub rhs: Expr,
    /// Source span.
    pub span: Span,
}

/// The flavour of a procedural block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlwaysKind {
    /// `always_ff`
    Ff,
    /// `always_comb`
    Comb,
    /// Plain `always`
    Plain,
    /// `initial`
    Initial,
}

/// An event in a sensitivity list, e.g. `posedge clk_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct EventExpr {
    /// Edge selector: `Some(true)` for posedge, `Some(false)` for negedge,
    /// `None` for level sensitivity.
    pub posedge: Option<bool>,
    /// The signal expression.
    pub signal: Expr,
}

/// A procedural block.
#[derive(Debug, Clone, PartialEq)]
pub struct AlwaysBlock {
    /// Which kind of block this is.
    pub kind: AlwaysKind,
    /// Sensitivity list (empty for `always_comb`, `initial`, or `@*`).
    pub sensitivity: Vec<EventExpr>,
    /// The block body.
    pub body: Stmt,
    /// Source span.
    pub span: Span,
}

/// A module instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Name of the instantiated module.
    pub module_name: String,
    /// Instance name.
    pub instance_name: String,
    /// Parameter overrides `#(.N(4))`.
    pub param_overrides: Vec<Connection>,
    /// Port connections `.clk(clk_i)`.
    pub connections: Vec<Connection>,
    /// Source span.
    pub span: Span,
}

/// A named connection `.port(expr)`; `expr` is `None` for unconnected ports.
#[derive(Debug, Clone, PartialEq)]
pub struct Connection {
    /// Formal (port or parameter) name.
    pub name: String,
    /// Actual expression, if connected.
    pub expr: Option<Expr>,
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `begin ... end`
    Block(Vec<Stmt>),
    /// Blocking assignment `lhs = rhs;`
    Blocking(Assign),
    /// Non-blocking assignment `lhs <= rhs;`
    NonBlocking(Assign),
    /// `if (cond) then_stmt [else else_stmt]`
    If {
        /// Condition expression.
        cond: Expr,
        /// Statement executed when the condition is true.
        then_branch: Box<Stmt>,
        /// Statement executed otherwise, if present.
        else_branch: Option<Box<Stmt>>,
    },
    /// `case (subject) items endcase`
    Case {
        /// Case subject expression.
        subject: Expr,
        /// Case items in source order.
        items: Vec<CaseItem>,
    },
    /// An empty statement `;`
    Empty,
}

/// One arm of a `case` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseItem {
    /// Match labels; empty for the `default` arm.
    pub labels: Vec<Expr>,
    /// `true` if this is the `default` arm.
    pub is_default: bool,
    /// Body statement.
    pub body: Stmt,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `!`
    LogicalNot,
    /// `~`
    BitwiseNot,
    /// `-`
    Negate,
    /// `+` (no-op)
    Plus,
    /// `&` reduction
    ReduceAnd,
    /// `|` reduction
    ReduceOr,
    /// `^` reduction
    ReduceXor,
    /// `~&` reduction
    ReduceNand,
    /// `~|` reduction
    ReduceNor,
    /// `~^` reduction
    ReduceXnor,
}

impl UnaryOp {
    /// Canonical source spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            UnaryOp::LogicalNot => "!",
            UnaryOp::BitwiseNot => "~",
            UnaryOp::Negate => "-",
            UnaryOp::Plus => "+",
            UnaryOp::ReduceAnd => "&",
            UnaryOp::ReduceOr => "|",
            UnaryOp::ReduceXor => "^",
            UnaryOp::ReduceNand => "~&",
            UnaryOp::ReduceNor => "~|",
            UnaryOp::ReduceXnor => "~^",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    LogicalAnd,
    LogicalOr,
    BitAnd,
    BitOr,
    BitXor,
    BitXnor,
    Eq,
    Ne,
    CaseEq,
    CaseNe,
    Lt,
    Le,
    Gt,
    Ge,
    Shl,
    Shr,
    AShr,
}

impl BinaryOp {
    /// Canonical source spelling.
    pub fn as_str(&self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Pow => "**",
            LogicalAnd => "&&",
            LogicalOr => "||",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            BitXnor => "~^",
            Eq => "==",
            Ne => "!=",
            CaseEq => "===",
            CaseNe => "!==",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Shl => "<<",
            Shr => ">>",
            AShr => ">>>",
        }
    }

    /// Binding power used by the precedence-climbing parser; higher binds
    /// tighter.
    pub fn precedence(&self) -> u8 {
        use BinaryOp::*;
        match self {
            Pow => 12,
            Mul | Div | Mod => 11,
            Add | Sub => 10,
            Shl | Shr | AShr => 9,
            Lt | Le | Gt | Ge => 8,
            Eq | Ne | CaseEq | CaseNe => 7,
            BitAnd => 6,
            BitXor | BitXnor => 5,
            BitOr => 4,
            LogicalAnd => 3,
            LogicalOr => 2,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A simple or hierarchical identifier (`a`, `pkg::X`).
    Ident(String),
    /// A numeric literal.
    Number(NumberLit),
    /// A string literal.
    Str(String),
    /// A macro usage `` `NAME ``.
    Macro(String),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Conditional `cond ? t : f`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
    },
    /// Bit or element select `base[index]`.
    Index {
        /// Base expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Part select `base[msb:lsb]`.
    RangeSelect {
        /// Base expression.
        base: Box<Expr>,
        /// Most-significant bound.
        msb: Box<Expr>,
        /// Least-significant bound.
        lsb: Box<Expr>,
    },
    /// Struct member access `base.member`.
    Member {
        /// Base expression.
        base: Box<Expr>,
        /// Member name.
        member: String,
    },
    /// Concatenation `{a, b, c}`.
    Concat(Vec<Expr>),
    /// Replication `{n{expr}}`.
    Replicate {
        /// Replication count.
        count: Box<Expr>,
        /// Replicated value.
        value: Box<Expr>,
    },
    /// Function or system-function call.
    Call {
        /// Function name (`$stable`, `$clog2`, user functions).
        name: String,
        /// `true` if this was a `$`-prefixed system call.
        is_system: bool,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// A plain identifier expression.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// An unsigned integer literal expression.
    pub fn number(value: u128) -> Expr {
        Expr::Number(NumberLit::decimal(value))
    }

    /// Builds `lhs op rhs`.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Builds `op operand`.
    pub fn unary(op: UnaryOp, operand: Expr) -> Expr {
        Expr::Unary {
            op,
            operand: Box::new(operand),
        }
    }

    /// Returns the identifier name if this expression is a bare identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Expr::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Collects every identifier referenced anywhere in the expression.
    pub fn referenced_idents(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out
    }

    fn collect_idents(&self, out: &mut Vec<String>) {
        match self {
            Expr::Ident(s) => out.push(s.clone()),
            Expr::Number(_) | Expr::Str(_) | Expr::Macro(_) => {}
            Expr::Unary { operand, .. } => operand.collect_idents(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_idents(out);
                rhs.collect_idents(out);
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                cond.collect_idents(out);
                then_expr.collect_idents(out);
                else_expr.collect_idents(out);
            }
            Expr::Index { base, index } => {
                base.collect_idents(out);
                index.collect_idents(out);
            }
            Expr::RangeSelect { base, msb, lsb } => {
                base.collect_idents(out);
                msb.collect_idents(out);
                lsb.collect_idents(out);
            }
            Expr::Member { base, .. } => base.collect_idents(out),
            Expr::Concat(parts) => {
                for p in parts {
                    p.collect_idents(out);
                }
            }
            Expr::Replicate { count, value } => {
                count.collect_idents(out);
                value.collect_idents(out);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_idents(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders() {
        let e = Expr::binary(BinaryOp::Add, Expr::ident("a"), Expr::number(1));
        match e {
            Expr::Binary { op, lhs, rhs } => {
                assert_eq!(op, BinaryOp::Add);
                assert_eq!(lhs.as_ident(), Some("a"));
                assert!(matches!(*rhs, Expr::Number(_)));
            }
            _ => panic!("not a binary expression"),
        }
    }

    #[test]
    fn referenced_idents_walks_tree() {
        let e = Expr::Ternary {
            cond: Box::new(Expr::ident("sel")),
            then_expr: Box::new(Expr::binary(
                BinaryOp::BitAnd,
                Expr::ident("a"),
                Expr::ident("b"),
            )),
            else_expr: Box::new(Expr::Concat(vec![Expr::ident("c"), Expr::number(0)])),
        };
        let ids = e.referenced_idents();
        assert_eq!(ids, vec!["sel", "a", "b", "c"]);
    }

    #[test]
    fn precedence_ordering() {
        assert!(BinaryOp::Mul.precedence() > BinaryOp::Add.precedence());
        assert!(BinaryOp::Add.precedence() > BinaryOp::Shl.precedence());
        assert!(BinaryOp::BitAnd.precedence() > BinaryOp::BitOr.precedence());
        assert!(BinaryOp::LogicalAnd.precedence() > BinaryOp::LogicalOr.precedence());
    }

    #[test]
    fn source_file_module_lookup() {
        let m = Module {
            name: "foo".into(),
            params: vec![],
            ports: vec![],
            items: vec![],
            span: Span::dummy(),
            header_end: 0,
        };
        let f = SourceFile {
            items: vec![Item::Module(m)],
        };
        assert!(f.module("foo").is_some());
        assert!(f.module("bar").is_none());
        assert_eq!(f.modules().count(), 1);
    }

    #[test]
    fn direction_display() {
        assert_eq!(Direction::Input.to_string(), "input");
        assert_eq!(Direction::Output.to_string(), "output");
    }

    #[test]
    fn data_type_constructors() {
        let t = DataType::logic();
        assert!(t.packed_dims.is_empty());
        let v = DataType::logic_vector(Expr::number(7), Expr::number(0));
        assert_eq!(v.packed_dims.len(), 1);
    }
}
