//! Hand-written lexer for the SystemVerilog subset.
//!
//! The lexer produces a flat [`Token`] stream and preserves comments as
//! trivia (see [`LexOutput::comments`]) because AutoSVA annotations are
//! written inside comments in the interface-declaration section of a module.

use crate::error::{ParseError, ParseErrorKind, Result};
use crate::span::Span;
use crate::token::{Comment, CommentStyle, Keyword, NumberLit, Punct, Token, TokenKind};

/// The result of lexing a source file: tokens plus comment trivia.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexOutput {
    /// All tokens, terminated by a single [`TokenKind::Eof`] token.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments.
///
/// # Errors
///
/// Returns a [`ParseError`] on unexpected characters, unterminated comments
/// or strings, and malformed number literals.
///
/// # Examples
///
/// ```
/// use svparse::lexer::lex;
///
/// let out = lex("module m; endmodule")?;
/// assert!(out.tokens.len() > 3);
/// # Ok::<(), svparse::error::ParseError>(())
/// ```
pub fn lex(source: &str) -> Result<LexOutput> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
            comments: Vec::new(),
        }
    }

    fn run(mut self) -> Result<LexOutput> {
        while self.pos < self.bytes.len() {
            self.next_token()?;
        }
        let end = self.src.len();
        self.tokens
            .push(Token::new(TokenKind::Eof, Span::new(end, end)));
        Ok(LexOutput {
            tokens: self.tokens,
            comments: self.comments,
        })
    }

    fn peek(&self) -> u8 {
        *self.bytes.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.bytes.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        if b == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
        b
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens
            .push(Token::new(kind, Span::new(start, self.pos)));
    }

    fn next_token(&mut self) -> Result<()> {
        let start = self.pos;
        let c = self.peek();
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                self.bump();
                Ok(())
            }
            b'/' if self.peek2() == b'/' => self.line_comment(),
            b'/' if self.peek2() == b'*' => self.block_comment(),
            b'"' => self.string_lit(start),
            b'`' => self.directive(start),
            b'$' => self.system_ident(start),
            b'\\' => self.escaped_ident(start),
            b'0'..=b'9' => self.number(start),
            b'\'' => self.apostrophe(start),
            c if c.is_ascii_alphabetic() || c == b'_' => self.ident_or_keyword(start),
            _ if c.is_ascii_punctuation() => self.punct(start),
            _ => {
                let ch = self.src[self.pos..].chars().next().unwrap_or('\u{FFFD}');
                Err(ParseError::new(
                    ParseErrorKind::UnexpectedChar(ch),
                    Span::new(start, start + ch.len_utf8()),
                ))
            }
        }
    }

    fn line_comment(&mut self) -> Result<()> {
        let start = self.pos;
        let line = self.line;
        self.bump();
        self.bump();
        let text_start = self.pos;
        while self.pos < self.bytes.len() && self.peek() != b'\n' {
            self.bump();
        }
        self.comments.push(Comment {
            text: self.src[text_start..self.pos].to_string(),
            span: Span::new(start, self.pos),
            line,
            style: CommentStyle::Line,
        });
        Ok(())
    }

    fn block_comment(&mut self) -> Result<()> {
        let start = self.pos;
        let line = self.line;
        self.bump();
        self.bump();
        let text_start = self.pos;
        loop {
            if self.pos >= self.bytes.len() {
                return Err(ParseError::new(
                    ParseErrorKind::UnterminatedComment,
                    Span::new(start, self.pos),
                ));
            }
            if self.peek() == b'*' && self.peek2() == b'/' {
                let text_end = self.pos;
                self.bump();
                self.bump();
                self.comments.push(Comment {
                    text: self.src[text_start..text_end].to_string(),
                    span: Span::new(start, self.pos),
                    line,
                    style: CommentStyle::Block,
                });
                return Ok(());
            }
            self.bump();
        }
    }

    fn string_lit(&mut self, start: usize) -> Result<()> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            if self.pos >= self.bytes.len() {
                return Err(ParseError::new(
                    ParseErrorKind::UnterminatedString,
                    Span::new(start, self.pos),
                ));
            }
            let c = self.bump();
            match c {
                b'"' => break,
                b'\\' => {
                    let esc = self.bump();
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'\\' => '\\',
                        b'"' => '"',
                        other => other as char,
                    });
                }
                other => out.push(other as char),
            }
        }
        self.push(TokenKind::Str(out), start);
        Ok(())
    }

    fn directive(&mut self, start: usize) -> Result<()> {
        self.bump(); // backtick
        let name_start = self.pos;
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.bump();
        }
        let name = self.src[name_start..self.pos].to_string();
        self.push(TokenKind::Directive(name), start);
        Ok(())
    }

    fn system_ident(&mut self, start: usize) -> Result<()> {
        self.bump(); // dollar
        let name_start = self.pos;
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.bump();
        }
        let name = self.src[name_start..self.pos].to_string();
        self.push(TokenKind::SystemIdent(name), start);
        Ok(())
    }

    fn escaped_ident(&mut self, start: usize) -> Result<()> {
        self.bump(); // backslash
        let name_start = self.pos;
        while self.pos < self.bytes.len() && !self.peek().is_ascii_whitespace() {
            self.bump();
        }
        let name = self.src[name_start..self.pos].to_string();
        self.push(TokenKind::Ident(name), start);
        Ok(())
    }

    fn ident_or_keyword(&mut self, start: usize) -> Result<()> {
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        let kind = match Keyword::from_str(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_string()),
        };
        self.push(kind, start);
        Ok(())
    }

    /// Handles `'0`, `'1`, `'x`, `'z`, `'{` (assignment pattern brace) and the
    /// based-literal form `'h3F` without a preceding size.
    fn apostrophe(&mut self, start: usize) -> Result<()> {
        self.bump(); // '
        let c = self.peek();
        match c {
            b'0' | b'1' => {
                self.bump();
                let value = if c == b'0' { 0 } else { u128::MAX };
                self.push(
                    TokenKind::Number(NumberLit {
                        text: self.src[start..self.pos].to_string(),
                        width: None,
                        value: Some(value),
                        is_unbased: true,
                    }),
                    start,
                );
                Ok(())
            }
            b'x' | b'X' | b'z' | b'Z' => {
                self.bump();
                self.push(
                    TokenKind::Number(NumberLit {
                        text: self.src[start..self.pos].to_string(),
                        width: None,
                        value: None,
                        is_unbased: true,
                    }),
                    start,
                );
                Ok(())
            }
            b'b' | b'B' | b'h' | b'H' | b'd' | b'D' | b'o' | b'O' | b's' | b'S' => {
                self.based_literal(start, None)
            }
            _ => {
                // A bare apostrophe: used in casts like `1'b0` handled above,
                // or assignment patterns `'{...}`.  Emit as punctuation.
                self.push(TokenKind::Punct(Punct::Apostrophe), start);
                Ok(())
            }
        }
    }

    fn number(&mut self, start: usize) -> Result<()> {
        // Leading decimal digits (may be a width prefix for a based literal).
        while self.peek().is_ascii_digit() || self.peek() == b'_' {
            self.bump();
        }
        let dec_text: String = self.src[start..self.pos]
            .chars()
            .filter(|c| *c != '_')
            .collect();
        if self.peek() == b'\'' {
            let width: u32 = dec_text.parse().map_err(|_| {
                ParseError::new(
                    ParseErrorKind::MalformedNumber(dec_text.clone()),
                    Span::new(start, self.pos),
                )
            })?;
            self.bump(); // '
            return self.based_literal(start, Some(width));
        }
        let value: u128 = dec_text.parse().map_err(|_| {
            ParseError::new(
                ParseErrorKind::MalformedNumber(dec_text.clone()),
                Span::new(start, self.pos),
            )
        })?;
        self.push(
            TokenKind::Number(NumberLit {
                text: self.src[start..self.pos].to_string(),
                width: None,
                value: Some(value),
                is_unbased: false,
            }),
            start,
        );
        Ok(())
    }

    /// Parses the `<base><digits>` part of a based literal.  `self.pos` must
    /// point at the base character; the size prefix and apostrophe have
    /// already been consumed.
    fn based_literal(&mut self, start: usize, width: Option<u32>) -> Result<()> {
        let mut base_char = self.bump().to_ascii_lowercase();
        // Optional signed designator: 8'sd5
        if base_char == b's' {
            base_char = self.bump().to_ascii_lowercase();
        }
        let radix = match base_char {
            b'b' => 2,
            b'o' => 8,
            b'd' => 10,
            b'h' => 16,
            other => {
                return Err(ParseError::new(
                    ParseErrorKind::MalformedNumber(format!("bad base `{}`", other as char)),
                    Span::new(start, self.pos),
                ))
            }
        };
        // Skip whitespace between base and digits (legal in SV).
        while self.peek() == b' ' {
            self.bump();
        }
        let digits_start = self.pos;
        let mut has_xz = false;
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' || self.peek() == b'?' {
            let c = self.peek().to_ascii_lowercase();
            if matches!(c, b'x' | b'z' | b'?') {
                has_xz = true;
            }
            self.bump();
        }
        let digits: String = self.src[digits_start..self.pos]
            .chars()
            .filter(|c| *c != '_')
            .collect();
        if digits.is_empty() {
            return Err(ParseError::new(
                ParseErrorKind::MalformedNumber("missing digits".into()),
                Span::new(start, self.pos),
            ));
        }
        let value = if has_xz {
            None
        } else {
            Some(u128::from_str_radix(&digits, radix).map_err(|_| {
                ParseError::new(
                    ParseErrorKind::MalformedNumber(digits.clone()),
                    Span::new(start, self.pos),
                )
            })?)
        };
        self.push(
            TokenKind::Number(NumberLit {
                text: self.src[start..self.pos].to_string(),
                width,
                value,
                is_unbased: false,
            }),
            start,
        );
        Ok(())
    }

    fn punct(&mut self, start: usize) -> Result<()> {
        use Punct::*;
        let c = self.bump();
        let kind = match c {
            b'(' => LParen,
            b')' => RParen,
            b'[' => LBracket,
            b']' => RBracket,
            b'{' => LBrace,
            b'}' => RBrace,
            b';' => Semicolon,
            b',' => Comma,
            b'.' => Dot,
            b'#' => Hash,
            b'@' => At,
            b'?' => Question,
            b':' => {
                if self.peek() == b':' {
                    self.bump();
                    ColonColon
                } else {
                    Colon
                }
            }
            b'+' => {
                if self.peek() == b'+' {
                    self.bump();
                    PlusPlus
                } else if self.peek() == b'=' {
                    self.bump();
                    PlusEq
                } else {
                    Plus
                }
            }
            b'-' => {
                if self.peek() == b'>' {
                    self.bump();
                    Implies
                } else if self.peek() == b'-' {
                    self.bump();
                    MinusMinus
                } else if self.peek() == b'=' {
                    self.bump();
                    MinusEq
                } else {
                    Minus
                }
            }
            b'*' => {
                if self.peek() == b'*' {
                    self.bump();
                    DoubleStar
                } else {
                    Star
                }
            }
            b'/' => Slash,
            b'%' => Percent,
            b'!' => {
                if self.peek() == b'=' {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        BangEqEq
                    } else {
                        BangEq
                    }
                } else {
                    Bang
                }
            }
            b'~' => match self.peek() {
                b'^' => {
                    self.bump();
                    TildeCaret
                }
                b'&' => {
                    self.bump();
                    TildeAmp
                }
                b'|' => {
                    self.bump();
                    TildePipe
                }
                _ => Tilde,
            },
            b'&' => {
                if self.peek() == b'&' {
                    self.bump();
                    AmpAmp
                } else {
                    Amp
                }
            }
            b'|' => match self.peek() {
                b'|' => {
                    self.bump();
                    PipePipe
                }
                b'-' if self.bytes.get(self.pos + 1) == Some(&b'>') => {
                    self.bump();
                    self.bump();
                    OverlapImpl
                }
                b'=' if self.bytes.get(self.pos + 1) == Some(&b'>') => {
                    self.bump();
                    self.bump();
                    NonOverlapImpl
                }
                _ => Pipe,
            },
            b'^' => Caret,
            b'=' => {
                if self.peek() == b'=' {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        EqEqEq
                    } else {
                        EqEq
                    }
                } else {
                    Eq
                }
            }
            b'<' => {
                if self.peek() == b'=' {
                    self.bump();
                    LeArrow
                } else if self.peek() == b'<' {
                    self.bump();
                    Shl
                } else {
                    Lt
                }
            }
            b'>' => {
                if self.peek() == b'=' {
                    self.bump();
                    GtEq
                } else if self.peek() == b'>' {
                    self.bump();
                    if self.peek() == b'>' {
                        self.bump();
                        AShr
                    } else {
                        Shr
                    }
                } else {
                    Gt
                }
            }
            other => {
                return Err(ParseError::new(
                    ParseErrorKind::UnexpectedChar(other as char),
                    Span::new(start, self.pos),
                ))
            }
        };
        self.push(TokenKind::Punct(kind), start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .unwrap()
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lex_module_header() {
        let ks = kinds("module lsu (input logic clk_i);");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Module));
        assert_eq!(ks[1], TokenKind::Ident("lsu".into()));
        assert!(ks.contains(&TokenKind::Keyword(Keyword::Input)));
        assert!(ks.contains(&TokenKind::Ident("clk_i".into())));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn lex_numbers() {
        let ks = kinds("8'hFF 4'b1010 42 '0 '1 16'd100 2'sb11");
        let nums: Vec<NumberLit> = ks
            .into_iter()
            .filter_map(|k| match k {
                TokenKind::Number(n) => Some(n),
                _ => None,
            })
            .collect();
        assert_eq!(nums.len(), 7);
        assert_eq!(nums[0].value, Some(0xFF));
        assert_eq!(nums[0].width, Some(8));
        assert_eq!(nums[1].value, Some(0b1010));
        assert_eq!(nums[2].value, Some(42));
        assert_eq!(nums[3].value, Some(0));
        assert!(nums[3].is_unbased);
        assert_eq!(nums[4].value, Some(u128::MAX));
        assert_eq!(nums[5].value, Some(100));
        assert_eq!(nums[6].value, Some(3));
    }

    #[test]
    fn lex_x_literal_has_no_value() {
        let ks = kinds("4'bxx10");
        match &ks[0] {
            TokenKind::Number(n) => assert_eq!(n.value, None),
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn lex_comments_preserved() {
        let out = lex("wire a; // hello\n/*AUTOSVA\nfoo\n*/ wire b;").unwrap();
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].text, " hello");
        assert_eq!(out.comments[0].style, CommentStyle::Line);
        assert!(out.comments[1].text.starts_with("AUTOSVA"));
        assert_eq!(out.comments[1].style, CommentStyle::Block);
        assert_eq!(out.comments[1].line, 2);
    }

    #[test]
    fn lex_operators() {
        let ks = kinds("a |-> b |=> c -> d <= e == f !== g >>> 2");
        assert!(ks.contains(&TokenKind::Punct(Punct::OverlapImpl)));
        assert!(ks.contains(&TokenKind::Punct(Punct::NonOverlapImpl)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Implies)));
        assert!(ks.contains(&TokenKind::Punct(Punct::LeArrow)));
        assert!(ks.contains(&TokenKind::Punct(Punct::EqEq)));
        assert!(ks.contains(&TokenKind::Punct(Punct::BangEqEq)));
        assert!(ks.contains(&TokenKind::Punct(Punct::AShr)));
    }

    #[test]
    fn lex_system_and_directive() {
        let ks = kinds("$stable(x) `TRANS_ID");
        assert_eq!(ks[0], TokenKind::SystemIdent("stable".into()));
        assert!(ks.contains(&TokenKind::Directive("TRANS_ID".into())));
    }

    #[test]
    fn lex_string_literals() {
        let ks = kinds(r#""hello \"world\"" "#);
        assert_eq!(ks[0], TokenKind::Str("hello \"world\"".into()));
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let err = lex("/* oops").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnterminatedComment);
    }

    #[test]
    fn unterminated_string_errors() {
        let err = lex("\"oops").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnterminatedString);
    }

    #[test]
    fn scoped_name_tokens() {
        let ks = kinds("riscv::VLEN");
        assert_eq!(ks[0], TokenKind::Ident("riscv".into()));
        assert_eq!(ks[1], TokenKind::Punct(Punct::ColonColon));
        assert_eq!(ks[2], TokenKind::Ident("VLEN".into()));
    }

    #[test]
    fn spans_are_accurate() {
        let out = lex("wire abc;").unwrap();
        let abc = &out.tokens[1];
        assert_eq!(abc.span.slice("wire abc;"), "abc");
    }

    #[test]
    fn struct_member_access() {
        let ks = kinds("fu_data_i.trans_id");
        assert_eq!(ks[0], TokenKind::Ident("fu_data_i".into()));
        assert_eq!(ks[1], TokenKind::Punct(Punct::Dot));
        assert_eq!(ks[2], TokenKind::Ident("trans_id".into()));
    }

    #[test]
    fn empty_input_is_just_eof() {
        let out = lex("").unwrap();
        assert_eq!(out.tokens.len(), 1);
        assert_eq!(out.tokens[0].kind, TokenKind::Eof);
        assert!(out.comments.is_empty());
    }
}
