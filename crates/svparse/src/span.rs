//! Source locations and spans.
//!
//! Every token and AST node produced by this crate carries a [`Span`] that
//! points back into the original source text.  Spans are byte offsets, with
//! helpers to recover 1-based line/column numbers for diagnostics.

use std::fmt;

/// A half-open byte range `[start, end)` into a source string.
///
/// # Examples
///
/// ```
/// use svparse::span::Span;
///
/// let span = Span::new(4, 9);
/// assert_eq!(span.len(), 5);
/// assert!(!span.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a new span from byte offsets.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(end >= start, "span end must not precede start");
        Span { start, end }
    }

    /// A zero-length span at offset zero, used for synthesized nodes.
    pub fn dummy() -> Self {
        Span { start: 0, end: 0 }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` if the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns the smallest span covering both `self` and `other`.
    ///
    /// # Examples
    ///
    /// ```
    /// use svparse::span::Span;
    /// let a = Span::new(2, 5);
    /// let b = Span::new(8, 10);
    /// assert_eq!(a.join(b), Span::new(2, 10));
    /// ```
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Extracts the text covered by this span from `source`.
    ///
    /// Returns an empty string if the span is out of bounds.
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position, derived from a [`Span`] and source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in bytes, not display width).
    pub column: usize,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Computes the 1-based line and column of a byte offset in `source`.
///
/// Offsets past the end of the text are clamped to the final position.
///
/// # Examples
///
/// ```
/// use svparse::span::{line_col, LineCol};
/// let src = "module m;\nendmodule\n";
/// assert_eq!(line_col(src, 0), LineCol { line: 1, column: 1 });
/// assert_eq!(line_col(src, 10), LineCol { line: 2, column: 1 });
/// ```
pub fn line_col(source: &str, offset: usize) -> LineCol {
    let offset = offset.min(source.len());
    let mut line = 1;
    let mut col = 1;
    for (i, ch) in source.char_indices() {
        if i >= offset {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    LineCol { line, column: col }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_spans() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.join(b), Span::new(3, 12));
        assert_eq!(b.join(a), Span::new(3, 12));
    }

    #[test]
    fn slice_in_bounds() {
        let src = "hello world";
        assert_eq!(Span::new(6, 11).slice(src), "world");
    }

    #[test]
    fn slice_out_of_bounds_is_empty() {
        let src = "abc";
        assert_eq!(Span::new(2, 10).slice(src), "");
    }

    #[test]
    fn line_col_basic() {
        let src = "a\nbb\nccc";
        assert_eq!(line_col(src, 0), LineCol { line: 1, column: 1 });
        assert_eq!(line_col(src, 2), LineCol { line: 2, column: 1 });
        assert_eq!(line_col(src, 3), LineCol { line: 2, column: 2 });
        assert_eq!(line_col(src, 5), LineCol { line: 3, column: 1 });
    }

    #[test]
    fn line_col_clamps() {
        let src = "xyz";
        assert_eq!(line_col(src, 100), LineCol { line: 1, column: 4 });
    }

    #[test]
    #[should_panic]
    fn reversed_span_panics() {
        let _ = Span::new(5, 2);
    }

    #[test]
    fn dummy_is_empty() {
        assert!(Span::dummy().is_empty());
        assert_eq!(Span::dummy().len(), 0);
    }
}
