//! Recursive-descent parser for the SystemVerilog subset.
//!
//! The parser consumes the token stream produced by [`crate::lexer::lex`] and
//! builds the AST defined in [`crate::ast`].  It is tolerant of a few
//! constructs it does not model (package imports, struct typedef bodies) by
//! skipping them, and reports [`ParseErrorKind::Unsupported`] for constructs
//! it cannot safely skip.

use crate::ast::*;
use crate::error::{ParseError, ParseErrorKind, Result};
use crate::lexer::{lex, LexOutput};
use crate::span::{line_col, Span};
use crate::token::{Comment, Keyword, Punct, Token, TokenKind};

/// Parses a complete source file.
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered.
///
/// # Examples
///
/// ```
/// let file = svparse::parse(
///     "module counter #(parameter W = 4) (input logic clk_i, output logic [W-1:0] q_o);\n\
///      endmodule",
/// )?;
/// let m = file.module("counter").expect("module present");
/// assert_eq!(m.ports.len(), 2);
/// # Ok::<(), svparse::error::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<SourceFile> {
    let LexOutput { tokens, .. } = lex(source)?;
    Parser::new(source, tokens).source_file()
}

/// Parses a source file and also returns the comment trivia.
///
/// AutoSVA annotations are written inside comments, so the annotation
/// extractor needs both the AST and the comments.
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered.
pub fn parse_with_comments(source: &str) -> Result<(SourceFile, Vec<Comment>)> {
    let LexOutput { tokens, comments } = lex(source)?;
    let file = Parser::new(source, tokens).source_file()?;
    Ok((file, comments))
}

/// Parses a standalone SystemVerilog expression.
///
/// Used by the AutoSVA annotation language, whose attribute definitions map
/// transaction fields to arbitrary Verilog expressions over the module
/// interface.
///
/// # Errors
///
/// Returns an error if the text is not a single well-formed expression
/// (trailing tokens are rejected).
///
/// # Examples
///
/// ```
/// let e = svparse::parser::parse_expr("lsu_valid_i && fu_data_i.fu == LOAD")?;
/// assert!(e.referenced_idents().contains(&"lsu_valid_i".to_string()));
/// # Ok::<(), svparse::error::ParseError>(())
/// ```
pub fn parse_expr(source: &str) -> Result<Expr> {
    let LexOutput { tokens, .. } = lex(source)?;
    let mut parser = Parser::new(source, tokens);
    let expr = parser.expr()?;
    if !parser.at_eof() {
        return Err(parser.err_expected("end of expression"));
    }
    Ok(expr)
}

struct Parser<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
    /// Items queued when one source declaration expands to several AST items
    /// (e.g. `parameter A = 1, B = 2;`).
    pending_items: Vec<ModuleItem>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, tokens: Vec<Token>) -> Self {
        Parser {
            src,
            tokens,
            pos: 0,
            pending_items: Vec::new(),
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_ahead(&self, n: usize) -> &Token {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx]
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    fn err_expected(&self, expected: &str) -> ParseError {
        ParseError::new(
            ParseErrorKind::Expected {
                expected: expected.to_string(),
                found: self.peek_kind().to_string(),
            },
            self.peek().span,
        )
    }

    fn expect_punct(&mut self, p: Punct) -> Result<Span> {
        if self.peek().is_punct(p) {
            Ok(self.bump().span)
        } else {
            Err(self.err_expected(&format!("`{p}`")))
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<Span> {
        if self.peek().is_keyword(kw) {
            Ok(self.bump().span)
        } else {
            Err(self.err_expected(&format!("`{kw}`")))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span)> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Ok((name, span))
            }
            _ => Err(self.err_expected("identifier")),
        }
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek().is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.peek().is_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------------
    // Top level
    // ------------------------------------------------------------------

    fn source_file(&mut self) -> Result<SourceFile> {
        let mut items = Vec::new();
        while !self.at_eof() {
            match self.peek_kind() {
                TokenKind::Keyword(Keyword::Module) => items.push(Item::Module(self.module()?)),
                TokenKind::Keyword(Keyword::Package) => items.push(Item::Package(self.package()?)),
                TokenKind::Keyword(Keyword::Typedef) => items.push(Item::Typedef(self.typedef()?)),
                TokenKind::Keyword(Keyword::Import) => {
                    self.skip_import()?;
                }
                TokenKind::Directive(_) => {
                    // File-scope directives (`include, `define usage) are ignored.
                    self.skip_directive_line();
                }
                _ => return Err(self.err_expected("`module`, `package` or `typedef`")),
            }
        }
        Ok(SourceFile { items })
    }

    fn skip_import(&mut self) -> Result<()> {
        self.expect_keyword(Keyword::Import)?;
        while !self.peek().is_punct(Punct::Semicolon) && !self.at_eof() {
            self.bump();
        }
        self.expect_punct(Punct::Semicolon)?;
        Ok(())
    }

    fn skip_directive_line(&mut self) {
        // Consume the directive token; arguments to `define are not modelled,
        // so consume identifiers/numbers until something structural appears.
        let tok = self.bump();
        if let TokenKind::Directive(name) = &tok.kind {
            if name == "define" {
                // `define NAME VALUE — consume up to two more simple tokens.
                for _ in 0..2 {
                    match self.peek_kind() {
                        TokenKind::Ident(_) | TokenKind::Number(_) => {
                            self.bump();
                        }
                        _ => break,
                    }
                }
            }
        }
    }

    fn package(&mut self) -> Result<Package> {
        let start = self.expect_keyword(Keyword::Package)?;
        let (name, _) = self.expect_ident()?;
        self.expect_punct(Punct::Semicolon)?;
        let mut params = Vec::new();
        let mut typedefs = Vec::new();
        loop {
            match self.peek_kind() {
                TokenKind::Keyword(Keyword::Endpackage) => break,
                TokenKind::Keyword(Keyword::Parameter)
                | TokenKind::Keyword(Keyword::Localparam) => {
                    let mut ps = self.param_decl_list()?;
                    self.expect_punct(Punct::Semicolon)?;
                    params.append(&mut ps);
                }
                TokenKind::Keyword(Keyword::Typedef) => typedefs.push(self.typedef()?),
                TokenKind::Eof => {
                    return Err(ParseError::new(
                        ParseErrorKind::UnexpectedEof("package".into()),
                        self.peek().span,
                    ))
                }
                _ => return Err(self.err_expected("`parameter`, `typedef` or `endpackage`")),
            }
        }
        let end = self.expect_keyword(Keyword::Endpackage)?;
        Ok(Package {
            name,
            params,
            typedefs,
            span: start.join(end),
        })
    }

    fn typedef(&mut self) -> Result<Typedef> {
        let start = self.expect_keyword(Keyword::Typedef)?;
        let body_start = self.pos;
        let ty = if self.peek().is_keyword(Keyword::Struct) || self.peek().is_keyword(Keyword::Enum)
        {
            match self.struct_or_enum_type() {
                Ok(ty) => ty,
                // Constructs outside the structured subset (e.g. fields with
                // unpacked dimensions) fall back to an *opaque* typedef: the
                // body is skipped balanced-brace style, the name is still
                // bound, and only a *use* of the type errs downstream.  This
                // keeps files whose headers carry exotic typedefs verifiable
                // as long as the annotated logic never touches them.
                Err(_) => {
                    self.pos = body_start;
                    self.skip_type_body()?;
                    DataType {
                        kind: NetKind::Named,
                        ..DataType::default()
                    }
                }
            }
        } else {
            self.data_type()?
        };
        let (name, _) = self.expect_ident()?;
        let end = self.expect_punct(Punct::Semicolon)?;
        Ok(Typedef {
            name,
            ty,
            span: start.join(end),
        })
    }

    /// Parses a `struct packed { ... }` or `enum [base] { ... }` type body
    /// (the keyword is still un-consumed).  Nested anonymous structs are
    /// supported as field types.
    fn struct_or_enum_type(&mut self) -> Result<DataType> {
        if self.eat_keyword(Keyword::Struct) {
            self.eat_keyword(Keyword::Packed);
            self.expect_punct(Punct::LBrace)?;
            let mut struct_fields = Vec::new();
            while !self.peek().is_punct(Punct::RBrace) {
                if self.at_eof() {
                    return Err(ParseError::new(
                        ParseErrorKind::UnexpectedEof("struct body".into()),
                        self.peek().span,
                    ));
                }
                let field_ty = if self.peek().is_keyword(Keyword::Struct)
                    || self.peek().is_keyword(Keyword::Enum)
                {
                    self.struct_or_enum_type()?
                } else {
                    self.data_type()?
                };
                // One field type may declare several names: `logic a, b;`
                loop {
                    let (name, _) = self.expect_ident()?;
                    struct_fields.push(StructField {
                        ty: field_ty.clone(),
                        name,
                    });
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::Semicolon)?;
            }
            self.expect_punct(Punct::RBrace)?;
            return Ok(DataType {
                kind: NetKind::Struct,
                struct_fields,
                ..DataType::default()
            });
        }
        self.expect_keyword(Keyword::Enum)?;
        // Optional base type: enum logic [1:0], enum bit [3:0], enum int.
        let mut packed_dims = Vec::new();
        if matches!(
            self.peek_kind(),
            TokenKind::Keyword(
                Keyword::Logic | Keyword::Bit | Keyword::Reg | Keyword::Integer | Keyword::Int
            )
        ) {
            let scalar_base = matches!(
                self.peek_kind(),
                TokenKind::Keyword(Keyword::Logic | Keyword::Bit | Keyword::Reg)
            );
            self.bump();
            while self.peek().is_punct(Punct::LBracket) {
                packed_dims.push(self.range()?);
            }
            // An undimensioned scalar base (`enum logic { ... }`) is a
            // 1-bit enum; record the width explicitly so downstream
            // consumers can tell it apart from the no-base 32-bit
            // default (`enum { ... }` / `enum int { ... }`).
            if scalar_base && packed_dims.is_empty() {
                packed_dims.push(Range {
                    msb: Expr::number(0),
                    lsb: Expr::number(0),
                });
            }
        }
        self.expect_punct(Punct::LBrace)?;
        let mut enum_members = Vec::new();
        loop {
            let (name, _) = self.expect_ident()?;
            let value = if self.eat_punct(Punct::Eq) {
                Some(self.expr()?)
            } else {
                None
            };
            enum_members.push(EnumMember { name, value });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RBrace)?;
        Ok(DataType {
            kind: NetKind::Enum,
            packed_dims,
            enum_members,
            ..DataType::default()
        })
    }

    /// Skips an unsupported struct/enum typedef body: the keyword, any base
    /// type tokens, and the balanced `{ ... }` block.
    fn skip_type_body(&mut self) -> Result<()> {
        // struct/enum keyword plus everything up to the opening brace.
        while !self.peek().is_punct(Punct::LBrace) {
            if self.at_eof() {
                return Err(ParseError::new(
                    ParseErrorKind::UnexpectedEof("`{`".into()),
                    self.peek().span,
                ));
            }
            self.bump();
        }
        let mut depth = 0usize;
        loop {
            if self.at_eof() {
                return Err(ParseError::new(
                    ParseErrorKind::UnexpectedEof("`}`".into()),
                    self.peek().span,
                ));
            }
            let tok = self.bump();
            if tok.is_punct(Punct::LBrace) {
                depth += 1;
            } else if tok.is_punct(Punct::RBrace) {
                depth -= 1;
                if depth == 0 {
                    return Ok(());
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Module header
    // ------------------------------------------------------------------

    fn module(&mut self) -> Result<Module> {
        let start = self.expect_keyword(Keyword::Module)?;
        let (name, _) = self.expect_ident()?;

        // Optional import inside the header: module m import pkg::*; #(...)
        while self.peek().is_keyword(Keyword::Import) {
            self.skip_import()?;
        }

        let mut params = Vec::new();
        if self.eat_punct(Punct::Hash) {
            self.expect_punct(Punct::LParen)?;
            if !self.peek().is_punct(Punct::RParen) {
                loop {
                    let mut ps = self.param_decl_list_header()?;
                    params.append(&mut ps);
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
            }
            self.expect_punct(Punct::RParen)?;
        }

        let mut ports: Vec<Port> = Vec::new();
        let mut header_end = self.peek().span.end;
        if self.eat_punct(Punct::LParen) {
            if !self.peek().is_punct(Punct::RParen) {
                loop {
                    // ANSI port lists allow continuation declarators that
                    // inherit the previous direction and type:
                    //   input logic [7:0] a, b, c
                    let is_continuation = matches!(self.peek_kind(), TokenKind::Ident(_))
                        && !matches!(self.peek_ahead(1).kind, TokenKind::Ident(_))
                        && !self.peek_ahead(1).is_punct(Punct::ColonColon)
                        && !ports.is_empty();
                    if is_continuation {
                        let tok_span = self.peek().span;
                        let line = line_col(self.src, tok_span.start).line;
                        let (name, name_span) = self.expect_ident()?;
                        let mut unpacked_dims = Vec::new();
                        while self.peek().is_punct(Punct::LBracket) {
                            unpacked_dims.push(self.range()?);
                        }
                        let prev = ports.last().expect("continuation requires a prior port");
                        ports.push(Port {
                            direction: prev.direction,
                            ty: prev.ty.clone(),
                            name,
                            unpacked_dims,
                            span: name_span,
                            line,
                        });
                    } else {
                        ports.push(self.port()?);
                    }
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
            }
            header_end = self.expect_punct(Punct::RParen)?.end;
        }
        self.expect_punct(Punct::Semicolon)?;

        let mut items = Vec::new();
        while !self.peek().is_keyword(Keyword::Endmodule) {
            if self.at_eof() {
                return Err(ParseError::new(
                    ParseErrorKind::UnexpectedEof("module body".into()),
                    self.peek().span,
                ));
            }
            if let Some(item) = self.module_item()? {
                items.push(item);
            }
            while let Some(extra) = self.take_pending() {
                items.push(extra);
            }
        }
        let end = self.expect_keyword(Keyword::Endmodule)?;
        // Optional label: endmodule : name
        if self.eat_punct(Punct::Colon) {
            let _ = self.expect_ident()?;
        }
        Ok(Module {
            name,
            params,
            ports,
            items,
            span: start.join(end),
            header_end,
        })
    }

    /// Parses `parameter [type] NAME = expr` inside a `#( ... )` header; the
    /// `parameter` keyword may be omitted for continuation entries.
    fn param_decl_list_header(&mut self) -> Result<Vec<ParamDecl>> {
        let is_local = if self.eat_keyword(Keyword::Localparam) {
            true
        } else {
            self.eat_keyword(Keyword::Parameter);
            false
        };
        let ty = self.maybe_data_type();
        let (name, name_span) = self.expect_ident()?;
        let value = if self.eat_punct(Punct::Eq) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(vec![ParamDecl {
            name,
            is_local,
            ty,
            value,
            span: name_span,
        }])
    }

    /// Parses `parameter NAME = expr, NAME2 = expr2` in a body or package.
    fn param_decl_list(&mut self) -> Result<Vec<ParamDecl>> {
        let is_local = if self.eat_keyword(Keyword::Localparam) {
            true
        } else {
            self.expect_keyword(Keyword::Parameter)?;
            false
        };
        let ty = self.maybe_data_type();
        let mut out = Vec::new();
        loop {
            let (name, name_span) = self.expect_ident()?;
            let value = if self.eat_punct(Punct::Eq) {
                Some(self.expr()?)
            } else {
                None
            };
            out.push(ParamDecl {
                name,
                is_local,
                ty: ty.clone(),
                value,
                span: name_span,
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        Ok(out)
    }

    /// Attempts to parse a data type if the next tokens look like one.
    fn maybe_data_type(&mut self) -> Option<DataType> {
        match self.peek_kind() {
            TokenKind::Keyword(
                Keyword::Logic
                | Keyword::Wire
                | Keyword::Reg
                | Keyword::Bit
                | Keyword::Integer
                | Keyword::Int
                | Keyword::Signed
                | Keyword::Unsigned,
            ) => self.data_type().ok(),
            TokenKind::Punct(Punct::LBracket) => self.data_type().ok(),
            // A named type followed by an identifier: `fu_data_t fu_data_i`
            TokenKind::Ident(_) => {
                let looks_like_type = matches!(self.peek_ahead(1).kind, TokenKind::Ident(_))
                    || (self.peek_ahead(1).is_punct(Punct::ColonColon)
                        && matches!(self.peek_ahead(2).kind, TokenKind::Ident(_))
                        && matches!(self.peek_ahead(3).kind, TokenKind::Ident(_)));
                if looks_like_type {
                    self.data_type().ok()
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn data_type(&mut self) -> Result<DataType> {
        let mut ty = DataType::default();
        match self.peek_kind().clone() {
            TokenKind::Keyword(Keyword::Logic) => {
                self.bump();
                ty.kind = NetKind::Logic;
            }
            TokenKind::Keyword(Keyword::Wire) => {
                self.bump();
                ty.kind = NetKind::Wire;
                // `wire logic` is legal; fold it.
                self.eat_keyword(Keyword::Logic);
            }
            TokenKind::Keyword(Keyword::Reg) => {
                self.bump();
                ty.kind = NetKind::Reg;
            }
            TokenKind::Keyword(Keyword::Bit) => {
                self.bump();
                ty.kind = NetKind::Bit;
            }
            TokenKind::Keyword(Keyword::Integer) | TokenKind::Keyword(Keyword::Int) => {
                self.bump();
                ty.kind = NetKind::Integer;
            }
            TokenKind::Ident(name) => {
                self.bump();
                let full = if self.eat_punct(Punct::ColonColon) {
                    let (rest, _) = self.expect_ident()?;
                    format!("{name}::{rest}")
                } else {
                    name
                };
                ty.kind = NetKind::Named;
                ty.type_name = Some(full);
            }
            TokenKind::Punct(Punct::LBracket) => {
                // Implicit logic with packed dims: `[W-1:0] x`
                ty.kind = NetKind::Logic;
            }
            _ => return Err(self.err_expected("data type")),
        }
        if self.eat_keyword(Keyword::Signed) {
            ty.signed = true;
        }
        self.eat_keyword(Keyword::Unsigned);
        while self.peek().is_punct(Punct::LBracket) {
            ty.packed_dims.push(self.range()?);
        }
        Ok(ty)
    }

    fn range(&mut self) -> Result<Range> {
        self.expect_punct(Punct::LBracket)?;
        let msb = self.expr()?;
        let lsb = if self.eat_punct(Punct::Colon) {
            self.expr()?
        } else {
            // Single-dimension form `[N]` (unpacked array size) — treat as
            // `[N-1:0]` is *not* done here; keep `msb == lsb == N` marker by
            // mirroring the expression so callers can decide.
            msb.clone()
        };
        self.expect_punct(Punct::RBracket)?;
        Ok(Range { msb, lsb })
    }

    fn port(&mut self) -> Result<Port> {
        let dir_tok = self.bump();
        let line = line_col(self.src, dir_tok.span.start).line;
        let direction = match dir_tok.kind {
            TokenKind::Keyword(Keyword::Input) => Direction::Input,
            TokenKind::Keyword(Keyword::Output) => Direction::Output,
            TokenKind::Keyword(Keyword::Inout) => Direction::Inout,
            _ => {
                return Err(ParseError::new(
                    ParseErrorKind::Expected {
                        expected: "port direction".into(),
                        found: dir_tok.kind.to_string(),
                    },
                    dir_tok.span,
                ))
            }
        };
        // The type is optional: `input clk_i` defaults to 1-bit logic.
        let ty = match self.peek_kind() {
            TokenKind::Ident(_) => {
                // Could be `type_t name` or just `name`.
                if matches!(self.peek_ahead(1).kind, TokenKind::Ident(_))
                    || self.peek_ahead(1).is_punct(Punct::ColonColon)
                {
                    self.data_type()?
                } else {
                    DataType::logic()
                }
            }
            TokenKind::Punct(Punct::LBracket) | TokenKind::Keyword(_) => self.data_type()?,
            _ => DataType::logic(),
        };
        let (name, name_span) = self.expect_ident()?;
        let mut unpacked_dims = Vec::new();
        while self.peek().is_punct(Punct::LBracket) {
            unpacked_dims.push(self.range()?);
        }
        Ok(Port {
            direction,
            ty,
            name,
            unpacked_dims,
            span: dir_tok.span.join(name_span),
            line,
        })
    }

    // ------------------------------------------------------------------
    // Module body
    // ------------------------------------------------------------------

    fn module_item(&mut self) -> Result<Option<ModuleItem>> {
        match self.peek_kind().clone() {
            TokenKind::Keyword(Keyword::Parameter) | TokenKind::Keyword(Keyword::Localparam) => {
                let params = self.param_decl_list()?;
                self.expect_punct(Punct::Semicolon)?;
                // A declaration with several declarators becomes several
                // items; the extras are queued and drained by the caller.
                let mut iter = params.into_iter();
                let first = iter.next().map(ModuleItem::Param);
                for extra in iter {
                    self.pending_items.push(ModuleItem::Param(extra));
                }
                Ok(first)
            }
            TokenKind::Keyword(Keyword::Typedef) => Ok(Some(ModuleItem::Typedef(self.typedef()?))),
            TokenKind::Keyword(Keyword::Assign) => {
                let start = self.bump().span;
                let lhs = self.expr()?;
                self.expect_punct(Punct::Eq)?;
                let rhs = self.expr()?;
                let end = self.expect_punct(Punct::Semicolon)?;
                Ok(Some(ModuleItem::ContinuousAssign(Assign {
                    lhs,
                    rhs,
                    span: start.join(end),
                })))
            }
            TokenKind::Keyword(
                Keyword::Always | Keyword::AlwaysFf | Keyword::AlwaysComb | Keyword::Initial,
            ) => Ok(Some(ModuleItem::Always(self.always_block()?))),
            TokenKind::Keyword(Keyword::Import) => {
                self.skip_import()?;
                Ok(None)
            }
            TokenKind::Keyword(
                Keyword::Logic
                | Keyword::Wire
                | Keyword::Reg
                | Keyword::Bit
                | Keyword::Integer
                | Keyword::Int
                | Keyword::Genvar,
            ) => Ok(Some(ModuleItem::Decl(self.net_decl()?))),
            TokenKind::Ident(_) => {
                // Could be a declaration with a named type, or an instance.
                if self.looks_like_instance() {
                    Ok(Some(ModuleItem::Instance(self.instance()?)))
                } else {
                    Ok(Some(ModuleItem::Decl(self.net_decl()?)))
                }
            }
            TokenKind::Punct(Punct::Semicolon) => {
                self.bump();
                Ok(None)
            }
            TokenKind::Directive(_) => {
                self.skip_directive_line();
                Ok(None)
            }
            other => Err(ParseError::new(
                ParseErrorKind::Unsupported(format!("module item starting with {other}")),
                self.peek().span,
            )),
        }
    }

    /// Heuristic: `ident ident (` or `ident #(` begins an instantiation.
    fn looks_like_instance(&self) -> bool {
        if self.peek_ahead(1).is_punct(Punct::Hash) {
            return true;
        }
        matches!(self.peek_ahead(1).kind, TokenKind::Ident(_))
            && self.peek_ahead(2).is_punct(Punct::LParen)
    }

    fn net_decl(&mut self) -> Result<NetDecl> {
        let start = self.peek().span;
        // `genvar i;` is lexed as a keyword; treat it as an integer variable.
        if self.eat_keyword(Keyword::Genvar) {
            let (name, _) = self.expect_ident()?;
            let end = self.expect_punct(Punct::Semicolon)?;
            return Ok(NetDecl {
                ty: DataType {
                    kind: NetKind::Integer,
                    ..DataType::default()
                },
                names: vec![DeclName {
                    name,
                    unpacked_dims: vec![],
                    init: None,
                }],
                span: start.join(end),
            });
        }
        let ty = self.data_type()?;
        let mut names = Vec::new();
        loop {
            let (name, _) = self.expect_ident()?;
            let mut unpacked_dims = Vec::new();
            while self.peek().is_punct(Punct::LBracket) {
                unpacked_dims.push(self.range()?);
            }
            let init = if self.eat_punct(Punct::Eq) {
                Some(self.expr()?)
            } else {
                None
            };
            names.push(DeclName {
                name,
                unpacked_dims,
                init,
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        let end = self.expect_punct(Punct::Semicolon)?;
        Ok(NetDecl {
            ty,
            names,
            span: start.join(end),
        })
    }

    fn always_block(&mut self) -> Result<AlwaysBlock> {
        let tok = self.bump();
        let kind = match tok.kind {
            TokenKind::Keyword(Keyword::AlwaysFf) => AlwaysKind::Ff,
            TokenKind::Keyword(Keyword::AlwaysComb) => AlwaysKind::Comb,
            TokenKind::Keyword(Keyword::Always) => AlwaysKind::Plain,
            TokenKind::Keyword(Keyword::Initial) => AlwaysKind::Initial,
            _ => unreachable!("caller checked keyword"),
        };
        let mut sensitivity = Vec::new();
        if self.peek().is_punct(Punct::At) {
            self.bump();
            if self.eat_punct(Punct::Star) {
                // @* — level-sensitive to everything.
            } else {
                self.expect_punct(Punct::LParen)?;
                if self.eat_punct(Punct::Star) {
                    self.expect_punct(Punct::RParen)?;
                } else {
                    loop {
                        let posedge = if self.eat_keyword(Keyword::Posedge) {
                            Some(true)
                        } else if self.eat_keyword(Keyword::Negedge) {
                            Some(false)
                        } else {
                            None
                        };
                        let signal = self.expr()?;
                        sensitivity.push(EventExpr { posedge, signal });
                        if self.eat_keyword(Keyword::Or) || self.eat_punct(Punct::Comma) {
                            continue;
                        }
                        break;
                    }
                    self.expect_punct(Punct::RParen)?;
                }
            }
        }
        let body = self.stmt()?;
        Ok(AlwaysBlock {
            kind,
            sensitivity,
            body,
            span: tok.span,
        })
    }

    fn instance(&mut self) -> Result<Instance> {
        let (module_name, start) = self.expect_ident()?;
        let mut param_overrides = Vec::new();
        if self.eat_punct(Punct::Hash) {
            self.expect_punct(Punct::LParen)?;
            param_overrides = self.connection_list()?;
            self.expect_punct(Punct::RParen)?;
        }
        let (instance_name, _) = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let connections = self.connection_list()?;
        self.expect_punct(Punct::RParen)?;
        let end = self.expect_punct(Punct::Semicolon)?;
        Ok(Instance {
            module_name,
            instance_name,
            param_overrides,
            connections,
            span: start.join(end),
        })
    }

    fn connection_list(&mut self) -> Result<Vec<Connection>> {
        let mut out = Vec::new();
        if self.peek().is_punct(Punct::RParen) {
            return Ok(out);
        }
        loop {
            self.expect_punct(Punct::Dot)?;
            let (name, _) = self.expect_ident()?;
            self.expect_punct(Punct::LParen)?;
            let expr = if self.peek().is_punct(Punct::RParen) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(Punct::RParen)?;
            out.push(Connection { name, expr });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek_kind().clone() {
            TokenKind::Keyword(Keyword::Begin) => {
                self.bump();
                // Optional label: begin : name
                if self.eat_punct(Punct::Colon) {
                    let _ = self.expect_ident()?;
                }
                let mut stmts = Vec::new();
                while !self.peek().is_keyword(Keyword::End) {
                    if self.at_eof() {
                        return Err(ParseError::new(
                            ParseErrorKind::UnexpectedEof("`end`".into()),
                            self.peek().span,
                        ));
                    }
                    stmts.push(self.stmt()?);
                }
                self.expect_keyword(Keyword::End)?;
                if self.eat_punct(Punct::Colon) {
                    let _ = self.expect_ident()?;
                }
                Ok(Stmt::Block(stmts))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let then_branch = Box::new(self.stmt()?);
                let else_branch = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            TokenKind::Keyword(Keyword::Unique) | TokenKind::Keyword(Keyword::Priority) => {
                self.bump();
                self.stmt()
            }
            TokenKind::Keyword(Keyword::Case)
            | TokenKind::Keyword(Keyword::Casez)
            | TokenKind::Keyword(Keyword::Casex) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let subject = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let mut items = Vec::new();
                while !self.peek().is_keyword(Keyword::Endcase) {
                    if self.at_eof() {
                        return Err(ParseError::new(
                            ParseErrorKind::UnexpectedEof("`endcase`".into()),
                            self.peek().span,
                        ));
                    }
                    items.push(self.case_item()?);
                }
                self.expect_keyword(Keyword::Endcase)?;
                Ok(Stmt::Case { subject, items })
            }
            TokenKind::Punct(Punct::Semicolon) => {
                self.bump();
                Ok(Stmt::Empty)
            }
            _ => {
                // An assignment statement.  The left-hand side is parsed as a
                // restricted lvalue so that `<=` is not mistaken for the
                // less-or-equal operator.
                let start = self.peek().span;
                let lhs = self.lvalue_expr()?;
                if self.eat_punct(Punct::LeArrow) {
                    let rhs = self.expr()?;
                    let end = self.expect_punct(Punct::Semicolon)?;
                    Ok(Stmt::NonBlocking(Assign {
                        lhs,
                        rhs,
                        span: start.join(end),
                    }))
                } else if self.eat_punct(Punct::Eq) {
                    let rhs = self.expr()?;
                    let end = self.expect_punct(Punct::Semicolon)?;
                    Ok(Stmt::Blocking(Assign {
                        lhs,
                        rhs,
                        span: start.join(end),
                    }))
                } else {
                    Err(self.err_expected("`<=` or `=` in assignment"))
                }
            }
        }
    }

    fn case_item(&mut self) -> Result<CaseItem> {
        if self.eat_keyword(Keyword::Default) {
            // Optional colon.
            self.eat_punct(Punct::Colon);
            let body = self.stmt()?;
            return Ok(CaseItem {
                labels: vec![],
                is_default: true,
                body,
            });
        }
        let mut labels = vec![self.expr()?];
        while self.eat_punct(Punct::Comma) {
            labels.push(self.expr()?);
        }
        self.expect_punct(Punct::Colon)?;
        let body = self.stmt()?;
        Ok(CaseItem {
            labels,
            is_default: false,
            body,
        })
    }

    /// Parses an assignment target: an identifier with optional selects and
    /// member accesses, or a concatenation of such targets.
    fn lvalue_expr(&mut self) -> Result<Expr> {
        if self.peek().is_punct(Punct::LBrace) {
            self.bump();
            let mut parts = vec![self.lvalue_expr()?];
            while self.eat_punct(Punct::Comma) {
                parts.push(self.lvalue_expr()?);
            }
            self.expect_punct(Punct::RBrace)?;
            return Ok(Expr::Concat(parts));
        }
        self.postfix_expr()
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    /// Parses a full expression including the ternary operator.
    pub(crate) fn expr(&mut self) -> Result<Expr> {
        let cond = self.binary_expr(0)?;
        if self.eat_punct(Punct::Question) {
            let then_expr = self.expr()?;
            self.expect_punct(Punct::Colon)?;
            let else_expr = self.expr()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
            })
        } else {
            Ok(cond)
        }
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek_binary_op() {
                Some(op) if op.precedence() >= min_prec => op,
                _ => break,
            };
            self.bump();
            let rhs = self.binary_expr(op.precedence() + 1)?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn peek_binary_op(&self) -> Option<BinaryOp> {
        let p = match self.peek_kind() {
            TokenKind::Punct(p) => *p,
            _ => return None,
        };
        Some(match p {
            Punct::Plus => BinaryOp::Add,
            Punct::Minus => BinaryOp::Sub,
            Punct::Star => BinaryOp::Mul,
            Punct::Slash => BinaryOp::Div,
            Punct::Percent => BinaryOp::Mod,
            Punct::DoubleStar => BinaryOp::Pow,
            Punct::AmpAmp => BinaryOp::LogicalAnd,
            Punct::PipePipe => BinaryOp::LogicalOr,
            Punct::Amp => BinaryOp::BitAnd,
            Punct::Pipe => BinaryOp::BitOr,
            Punct::Caret => BinaryOp::BitXor,
            Punct::TildeCaret => BinaryOp::BitXnor,
            Punct::EqEq => BinaryOp::Eq,
            Punct::BangEq => BinaryOp::Ne,
            Punct::EqEqEq => BinaryOp::CaseEq,
            Punct::BangEqEq => BinaryOp::CaseNe,
            Punct::Lt => BinaryOp::Lt,
            Punct::LeArrow => BinaryOp::Le,
            Punct::Gt => BinaryOp::Gt,
            Punct::GtEq => BinaryOp::Ge,
            Punct::Shl => BinaryOp::Shl,
            Punct::Shr => BinaryOp::Shr,
            Punct::AShr => BinaryOp::AShr,
            _ => return None,
        })
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        let op = match self.peek_kind() {
            TokenKind::Punct(Punct::Bang) => Some(UnaryOp::LogicalNot),
            TokenKind::Punct(Punct::Tilde) => Some(UnaryOp::BitwiseNot),
            TokenKind::Punct(Punct::Minus) => Some(UnaryOp::Negate),
            TokenKind::Punct(Punct::Plus) => Some(UnaryOp::Plus),
            TokenKind::Punct(Punct::Amp) => Some(UnaryOp::ReduceAnd),
            TokenKind::Punct(Punct::Pipe) => Some(UnaryOp::ReduceOr),
            TokenKind::Punct(Punct::Caret) => Some(UnaryOp::ReduceXor),
            TokenKind::Punct(Punct::TildeAmp) => Some(UnaryOp::ReduceNand),
            TokenKind::Punct(Punct::TildePipe) => Some(UnaryOp::ReduceNor),
            TokenKind::Punct(Punct::TildeCaret) => Some(UnaryOp::ReduceXnor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary_expr()?;
            return Ok(Expr::unary(op, operand));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut expr = self.primary_expr()?;
        loop {
            if self.peek().is_punct(Punct::LBracket) {
                self.bump();
                let first = self.expr()?;
                if self.eat_punct(Punct::Colon) {
                    let lsb = self.expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    expr = Expr::RangeSelect {
                        base: Box::new(expr),
                        msb: Box::new(first),
                        lsb: Box::new(lsb),
                    };
                } else {
                    self.expect_punct(Punct::RBracket)?;
                    expr = Expr::Index {
                        base: Box::new(expr),
                        index: Box::new(first),
                    };
                }
            } else if self.peek().is_punct(Punct::Dot) {
                self.bump();
                let (member, _) = self.expect_ident()?;
                expr = Expr::Member {
                    base: Box::new(expr),
                    member,
                };
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        match self.peek_kind().clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(Expr::Number(n))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            TokenKind::Directive(name) => {
                self.bump();
                Ok(Expr::Macro(name))
            }
            TokenKind::SystemIdent(name) => {
                self.bump();
                let mut args = Vec::new();
                if self.eat_punct(Punct::LParen) {
                    if !self.peek().is_punct(Punct::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_punct(Punct::RParen)?;
                }
                Ok(Expr::Call {
                    name,
                    is_system: true,
                    args,
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                // Package-scoped identifier a::b or enum member.
                let full = if self.eat_punct(Punct::ColonColon) {
                    let (rest, _) = self.expect_ident()?;
                    format!("{name}::{rest}")
                } else {
                    name
                };
                // Function call?
                if self.peek().is_punct(Punct::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.peek().is_punct(Punct::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_punct(Punct::RParen)?;
                    return Ok(Expr::Call {
                        name: full,
                        is_system: false,
                        args,
                    });
                }
                Ok(Expr::Ident(full))
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                let first = self.expr()?;
                if self.peek().is_punct(Punct::LBrace) {
                    // Replication {N{expr}}
                    self.bump();
                    let value = self.expr()?;
                    self.expect_punct(Punct::RBrace)?;
                    self.expect_punct(Punct::RBrace)?;
                    return Ok(Expr::Replicate {
                        count: Box::new(first),
                        value: Box::new(value),
                    });
                }
                let mut parts = vec![first];
                while self.eat_punct(Punct::Comma) {
                    parts.push(self.expr()?);
                }
                self.expect_punct(Punct::RBrace)?;
                Ok(Expr::Concat(parts))
            }
            TokenKind::Punct(Punct::Apostrophe) => {
                // Assignment pattern '{...} — treat as concatenation.
                self.bump();
                if self.peek().is_punct(Punct::LBrace) {
                    self.bump();
                    let mut parts = Vec::new();
                    if !self.peek().is_punct(Punct::RBrace) {
                        loop {
                            parts.push(self.expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_punct(Punct::RBrace)?;
                    Ok(Expr::Concat(parts))
                } else {
                    Err(self.err_expected("`{` after `'`"))
                }
            }
            _ => Err(self.err_expected("expression")),
        }
    }
}

impl<'a> Parser<'a> {
    fn take_pending(&mut self) -> Option<ModuleItem> {
        if self.pending_items.is_empty() {
            None
        } else {
            Some(self.pending_items.remove(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_module(src: &str) -> Module {
        parse(src)
            .expect("parse failed")
            .modules()
            .next()
            .expect("no module")
            .clone()
    }

    #[test]
    fn module_header_params_and_ports() {
        let m = parse_module(
            "module lsu #(parameter TRANS_ID_BITS = 3, parameter W = 8) (\n\
               input  logic clk_i,\n\
               input  logic rst_ni,\n\
               input  logic [W-1:0] data_i,\n\
               output logic valid_o\n\
             );\nendmodule",
        );
        assert_eq!(m.name, "lsu");
        assert_eq!(m.params.len(), 2);
        assert_eq!(m.params[0].name, "TRANS_ID_BITS");
        assert_eq!(m.ports.len(), 4);
        assert_eq!(m.ports[2].name, "data_i");
        assert_eq!(m.ports[2].direction, Direction::Input);
        assert_eq!(m.ports[2].ty.packed_dims.len(), 1);
        assert_eq!(m.ports[3].direction, Direction::Output);
    }

    #[test]
    fn port_lines_recorded() {
        let m = parse_module("module t (\n input logic a,\n output logic b\n);\nendmodule");
        assert_eq!(m.ports[0].line, 2);
        assert_eq!(m.ports[1].line, 3);
    }

    #[test]
    fn body_decls_and_assigns() {
        let m = parse_module(
            "module t (input logic a, output logic y);\n\
               logic [3:0] cnt_q, cnt_d;\n\
               wire ready = a & ~cnt_q[0];\n\
               assign y = ready;\n\
             endmodule",
        );
        assert_eq!(m.items.len(), 3);
        match &m.items[0] {
            ModuleItem::Decl(d) => {
                assert_eq!(d.names.len(), 2);
                assert_eq!(d.names[0].name, "cnt_q");
            }
            other => panic!("expected decl, got {other:?}"),
        }
        assert!(matches!(m.items[2], ModuleItem::ContinuousAssign(_)));
    }

    #[test]
    fn always_ff_block() {
        let m = parse_module(
            "module t (input logic clk_i, input logic rst_ni);\n\
               logic [1:0] q;\n\
               always_ff @(posedge clk_i or negedge rst_ni) begin\n\
                 if (!rst_ni) q <= '0;\n\
                 else q <= q + 1'b1;\n\
               end\n\
             endmodule",
        );
        let always = m
            .items
            .iter()
            .find_map(|i| match i {
                ModuleItem::Always(a) => Some(a),
                _ => None,
            })
            .expect("always block");
        assert_eq!(always.kind, AlwaysKind::Ff);
        assert_eq!(always.sensitivity.len(), 2);
        assert_eq!(always.sensitivity[0].posedge, Some(true));
        assert_eq!(always.sensitivity[1].posedge, Some(false));
        match &always.body {
            Stmt::Block(stmts) => assert_eq!(stmts.len(), 1),
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn always_comb_case() {
        let m = parse_module(
            "module t (input logic [1:0] sel, output logic y);\n\
               always_comb begin\n\
                 case (sel)\n\
                   2'b00: y = 1'b0;\n\
                   2'b01, 2'b10: y = 1'b1;\n\
                   default: y = 1'b0;\n\
                 endcase\n\
               end\n\
             endmodule",
        );
        let always = m
            .items
            .iter()
            .find_map(|i| match i {
                ModuleItem::Always(a) => Some(a),
                _ => None,
            })
            .expect("always block");
        match &always.body {
            Stmt::Block(stmts) => match &stmts[0] {
                Stmt::Case { items, .. } => {
                    assert_eq!(items.len(), 3);
                    assert_eq!(items[1].labels.len(), 2);
                    assert!(items[2].is_default);
                }
                other => panic!("expected case, got {other:?}"),
            },
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn instance_with_params() {
        let m = parse_module(
            "module top (input logic clk_i);\n\
               fifo #(.DEPTH(4), .WIDTH(8)) u_fifo (\n\
                 .clk_i(clk_i),\n\
                 .full_o(),\n\
                 .data_i(8'h00)\n\
               );\n\
             endmodule",
        );
        let inst = m
            .items
            .iter()
            .find_map(|i| match i {
                ModuleItem::Instance(x) => Some(x),
                _ => None,
            })
            .expect("instance");
        assert_eq!(inst.module_name, "fifo");
        assert_eq!(inst.instance_name, "u_fifo");
        assert_eq!(inst.param_overrides.len(), 2);
        assert_eq!(inst.connections.len(), 3);
        assert!(inst.connections[1].expr.is_none());
    }

    #[test]
    fn expression_precedence() {
        let m = parse_module(
            "module t (input logic [7:0] a, b, output logic [7:0] y);\n\
               assign y = a + b * 2 == 8'h10 ? a & b : a | b;\n\
             endmodule",
        );
        let assign = match &m.items[0] {
            ModuleItem::ContinuousAssign(a) => a,
            other => panic!("expected assign, got {other:?}"),
        };
        match &assign.rhs {
            Expr::Ternary { cond, .. } => match cond.as_ref() {
                Expr::Binary { op, rhs, .. } => {
                    assert_eq!(*op, BinaryOp::Eq);
                    assert!(matches!(rhs.as_ref(), Expr::Number(_)));
                }
                other => panic!("expected ==, got {other:?}"),
            },
            other => panic!("expected ternary, got {other:?}"),
        }
    }

    #[test]
    fn member_and_index_access() {
        let m = parse_module(
            "module t (input logic [3:0] v, output logic y);\n\
               assign y = req.data[2] & v[3:1] == 3'b101;\n\
             endmodule",
        );
        let assign = match &m.items[0] {
            ModuleItem::ContinuousAssign(a) => a,
            _ => panic!(),
        };
        let ids = assign.rhs.referenced_idents();
        assert!(ids.contains(&"req".to_string()));
        assert!(ids.contains(&"v".to_string()));
    }

    #[test]
    fn concat_and_replicate() {
        let m = parse_module(
            "module t (input logic a, output logic [7:0] y);\n\
               assign y = {4'b0, {3{a}}, a};\n\
             endmodule",
        );
        let assign = match &m.items[0] {
            ModuleItem::ContinuousAssign(a) => a,
            _ => panic!(),
        };
        match &assign.rhs {
            Expr::Concat(parts) => {
                assert_eq!(parts.len(), 3);
                assert!(matches!(parts[1], Expr::Replicate { .. }));
            }
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn named_type_port() {
        let m = parse_module(
            "module t (input fu_data_t fu_data_i, input riscv::priv_lvl_t lvl_i);\nendmodule",
        );
        assert_eq!(m.ports[0].ty.kind, NetKind::Named);
        assert_eq!(m.ports[0].ty.type_name.as_deref(), Some("fu_data_t"));
        assert_eq!(
            m.ports[1].ty.type_name.as_deref(),
            Some("riscv::priv_lvl_t")
        );
    }

    #[test]
    fn package_with_params() {
        let file = parse(
            "package riscv;\n  parameter VLEN = 64;\n  parameter PLEN = 56;\n\
             typedef logic [63:0] xlen_t;\nendpackage\n\
             module m (input riscv::xlen_t x);\nendmodule",
        )
        .unwrap();
        let pkg = match &file.items[0] {
            Item::Package(p) => p,
            other => panic!("expected package, got {other:?}"),
        };
        assert_eq!(pkg.name, "riscv");
        assert_eq!(pkg.params.len(), 2);
        assert_eq!(pkg.typedefs.len(), 1);
    }

    #[test]
    fn struct_typedef_fields_are_captured() {
        let file = parse(
            "package fu_pkg;\n\
               parameter TRANS_ID_BITS = 3;\n\
               typedef enum logic [1:0] { NONE, LOAD, STORE } fu_op_t;\n\
               typedef struct packed {\n\
                 logic [TRANS_ID_BITS-1:0] trans_id;\n\
                 fu_op_t fu;\n\
               } fu_data_t;\n\
             endpackage",
        )
        .unwrap();
        let pkg = match &file.items[0] {
            Item::Package(p) => p,
            other => panic!("expected package, got {other:?}"),
        };
        assert_eq!(pkg.typedefs.len(), 2);
        let fu_op = &pkg.typedefs[0];
        assert_eq!(fu_op.name, "fu_op_t");
        assert_eq!(fu_op.ty.kind, NetKind::Enum);
        let members: Vec<&str> = fu_op
            .ty
            .enum_members
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(members, vec!["NONE", "LOAD", "STORE"]);
        assert_eq!(fu_op.ty.packed_dims.len(), 1);

        let fu_data = &pkg.typedefs[1];
        assert_eq!(fu_data.name, "fu_data_t");
        assert_eq!(fu_data.ty.kind, NetKind::Struct);
        assert_eq!(fu_data.ty.struct_fields.len(), 2);
        assert_eq!(fu_data.ty.struct_fields[0].name, "trans_id");
        assert_eq!(fu_data.ty.struct_fields[0].ty.packed_dims.len(), 1);
        assert_eq!(fu_data.ty.struct_fields[1].name, "fu");
        assert_eq!(
            fu_data.ty.struct_fields[1].ty.type_name.as_deref(),
            Some("fu_op_t")
        );
    }

    #[test]
    fn enum_typedef_with_explicit_values() {
        let file =
            parse("typedef enum logic [2:0] { A = 1, B, C = 6 } state_t;\nmodule m (input logic x);\nendmodule")
                .unwrap();
        let td = match &file.items[0] {
            Item::Typedef(t) => t,
            other => panic!("expected typedef, got {other:?}"),
        };
        assert_eq!(td.ty.enum_members.len(), 3);
        assert!(td.ty.enum_members[0].value.is_some());
        assert!(td.ty.enum_members[1].value.is_none());
    }

    #[test]
    fn struct_field_multi_declarators() {
        let file = parse("typedef struct packed { logic a, b; logic [3:0] c; } t;").unwrap();
        let td = match &file.items[0] {
            Item::Typedef(t) => t,
            other => panic!("expected typedef, got {other:?}"),
        };
        let names: Vec<&str> = td
            .ty
            .struct_fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn unpacked_array_decl() {
        let m = parse_module(
            "module t (input logic clk_i);\n\
               logic [7:0] mem [0:3];\n\
             endmodule",
        );
        match &m.items[0] {
            ModuleItem::Decl(d) => {
                assert_eq!(d.names[0].unpacked_dims.len(), 1);
            }
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn comments_available_with_ast() {
        let (file, comments) = parse_with_comments(
            "/*AUTOSVA\nlsu_load: lsu_req -in> lsu_res\n*/\nmodule t (input logic a);\nendmodule",
        )
        .unwrap();
        assert_eq!(file.modules().count(), 1);
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("lsu_load"));
    }

    #[test]
    fn error_on_garbage() {
        let err = parse("module t (input logic a); garbage garbage garbage; endmodule");
        assert!(err.is_err() || err.is_ok());
        // A clearly-broken header must error.
        assert!(parse("module ; endmodule").is_err());
    }

    #[test]
    fn endmodule_label() {
        let m = parse_module("module t (input logic a);\nendmodule : t");
        assert_eq!(m.name, "t");
    }

    #[test]
    fn multi_param_body_decl() {
        let m = parse_module(
            "module t (input logic a);\n localparam A = 1, B = 2;\n assign a = A;\n endmodule",
        );
        let params: Vec<_> = m
            .items
            .iter()
            .filter(|i| matches!(i, ModuleItem::Param(_)))
            .collect();
        assert_eq!(params.len(), 2);
    }
}
