//! `svparse` — a SystemVerilog subset front end for the AutoSVA reproduction.
//!
//! The crate provides a hand-written lexer, a recursive-descent parser and an
//! AST covering the SystemVerilog constructs needed to (a) read the
//! interface-declaration section of RTL modules that carry AutoSVA
//! annotations, and (b) elaborate small synthesizable designs for the formal
//! verification substrate.
//!
//! # Quick start
//!
//! ```
//! let source = "module fifo #(parameter DEPTH = 4) (\n\
//!                 input  logic clk_i,\n\
//!                 input  logic rst_ni,\n\
//!                 input  logic push_val,\n\
//!                 output logic push_rdy\n\
//!               );\n\
//!               endmodule";
//! let file = svparse::parse(source)?;
//! let fifo = file.module("fifo").expect("module is present");
//! assert_eq!(fifo.ports.len(), 4);
//! assert_eq!(fifo.params[0].name, "DEPTH");
//! # Ok::<(), svparse::error::ParseError>(())
//! ```
//!
//! Comments are preserved as trivia (see [`parse_with_comments`]) because
//! AutoSVA annotations are written inside comments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::{Module, SourceFile};
pub use error::{ParseError, ParseErrorKind};
pub use parser::{parse, parse_expr, parse_with_comments};
pub use span::Span;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_work() {
        let file = crate::parse("module m (input logic a); endmodule").unwrap();
        assert!(file.module("m").is_some());
    }
}
