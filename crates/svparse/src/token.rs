//! Token definitions for the SystemVerilog subset lexer.

use crate::span::Span;
use std::fmt;

/// Reserved words recognized by the subset parser.
///
/// Only keywords that can actually appear in the supported subset are listed;
/// any other identifier is lexed as [`TokenKind::Ident`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Module,
    Endmodule,
    Package,
    Endpackage,
    Import,
    Input,
    Output,
    Inout,
    Wire,
    Logic,
    Reg,
    Bit,
    Integer,
    Int,
    Genvar,
    Signed,
    Unsigned,
    Parameter,
    Localparam,
    Typedef,
    Struct,
    Enum,
    Packed,
    Assign,
    Always,
    AlwaysFf,
    AlwaysComb,
    AlwaysLatch,
    Initial,
    Begin,
    End,
    If,
    Else,
    Case,
    Casez,
    Casex,
    Endcase,
    Default,
    For,
    Posedge,
    Negedge,
    Or,
    Function,
    Endfunction,
    Return,
    Generate,
    Endgenerate,
    Unique,
    Priority,
    Automatic,
    Void,
    Const,
}

impl Keyword {
    /// Returns the keyword for `text`, if it is one.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(text: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match text {
            "module" => Module,
            "endmodule" => Endmodule,
            "package" => Package,
            "endpackage" => Endpackage,
            "import" => Import,
            "input" => Input,
            "output" => Output,
            "inout" => Inout,
            "wire" => Wire,
            "logic" => Logic,
            "reg" => Reg,
            "bit" => Bit,
            "integer" => Integer,
            "int" => Int,
            "genvar" => Genvar,
            "signed" => Signed,
            "unsigned" => Unsigned,
            "parameter" => Parameter,
            "localparam" => Localparam,
            "typedef" => Typedef,
            "struct" => Struct,
            "enum" => Enum,
            "packed" => Packed,
            "assign" => Assign,
            "always" => Always,
            "always_ff" => AlwaysFf,
            "always_comb" => AlwaysComb,
            "always_latch" => AlwaysLatch,
            "initial" => Initial,
            "begin" => Begin,
            "end" => End,
            "if" => If,
            "else" => Else,
            "case" => Case,
            "casez" => Casez,
            "casex" => Casex,
            "endcase" => Endcase,
            "default" => Default,
            "for" => For,
            "posedge" => Posedge,
            "negedge" => Negedge,
            "or" => Or,
            "function" => Function,
            "endfunction" => Endfunction,
            "return" => Return,
            "generate" => Generate,
            "endgenerate" => Endgenerate,
            "unique" => Unique,
            "priority" => Priority,
            "automatic" => Automatic,
            "void" => Void,
            "const" => Const,
            _ => return None,
        })
    }

    /// The canonical source spelling of the keyword.
    pub fn as_str(&self) -> &'static str {
        use Keyword::*;
        match self {
            Module => "module",
            Endmodule => "endmodule",
            Package => "package",
            Endpackage => "endpackage",
            Import => "import",
            Input => "input",
            Output => "output",
            Inout => "inout",
            Wire => "wire",
            Logic => "logic",
            Reg => "reg",
            Bit => "bit",
            Integer => "integer",
            Int => "int",
            Genvar => "genvar",
            Signed => "signed",
            Unsigned => "unsigned",
            Parameter => "parameter",
            Localparam => "localparam",
            Typedef => "typedef",
            Struct => "struct",
            Enum => "enum",
            Packed => "packed",
            Assign => "assign",
            Always => "always",
            AlwaysFf => "always_ff",
            AlwaysComb => "always_comb",
            AlwaysLatch => "always_latch",
            Initial => "initial",
            Begin => "begin",
            End => "end",
            If => "if",
            Else => "else",
            Case => "case",
            Casez => "casez",
            Casex => "casex",
            Endcase => "endcase",
            Default => "default",
            For => "for",
            Posedge => "posedge",
            Negedge => "negedge",
            Or => "or",
            Function => "function",
            Endfunction => "endfunction",
            Return => "return",
            Generate => "generate",
            Endgenerate => "endgenerate",
            Unique => "unique",
            Priority => "priority",
            Automatic => "automatic",
            Void => "void",
            Const => "const",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semicolon,
    Comma,
    Colon,
    ColonColon,
    Dot,
    Hash,
    At,
    Question,
    Apostrophe,
    // assignment
    Eq,
    LeArrow, // <= (non-blocking assign / less-equal, disambiguated by parser)
    PlusEq,
    MinusEq,
    // unary / binary operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    Tilde,
    Amp,
    AmpAmp,
    Pipe,
    PipePipe,
    Caret,
    TildeCaret,
    TildeAmp,
    TildePipe,
    EqEq,
    BangEq,
    EqEqEq,
    BangEqEq,
    Lt,
    Gt,
    GtEq,
    Shl,
    Shr,
    AShr,
    // SVA / misc
    Implies,        // ->
    OverlapImpl,    // |->
    NonOverlapImpl, // |=>
    PlusPlus,
    MinusMinus,
    DoubleStar,
}

impl Punct {
    /// The canonical source spelling.
    pub fn as_str(&self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBracket => "[",
            RBracket => "]",
            LBrace => "{",
            RBrace => "}",
            Semicolon => ";",
            Comma => ",",
            Colon => ":",
            ColonColon => "::",
            Dot => ".",
            Hash => "#",
            At => "@",
            Question => "?",
            Apostrophe => "'",
            Eq => "=",
            LeArrow => "<=",
            PlusEq => "+=",
            MinusEq => "-=",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Bang => "!",
            Tilde => "~",
            Amp => "&",
            AmpAmp => "&&",
            Pipe => "|",
            PipePipe => "||",
            Caret => "^",
            TildeCaret => "~^",
            TildeAmp => "~&",
            TildePipe => "~|",
            EqEq => "==",
            BangEq => "!=",
            EqEqEq => "===",
            BangEqEq => "!==",
            Lt => "<",
            Gt => ">",
            GtEq => ">=",
            Shl => "<<",
            Shr => ">>",
            AShr => ">>>",
            Implies => "->",
            OverlapImpl => "|->",
            NonOverlapImpl => "|=>",
            PlusPlus => "++",
            MinusMinus => "--",
            DoubleStar => "**",
        }
    }
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The payload of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (including escaped identifiers with the leading `\`
    /// stripped).
    Ident(String),
    /// A system task/function identifier such as `$stable`, without the `$`.
    SystemIdent(String),
    /// A compiler directive or macro usage such as `` `TRANS_ID `` (name
    /// without the backtick).
    Directive(String),
    /// A reserved word.
    Keyword(Keyword),
    /// A numeric literal, kept in source form and decoded on demand.
    Number(NumberLit),
    /// A string literal, with quotes removed and escapes resolved.
    Str(String),
    /// Punctuation or an operator.
    Punct(Punct),
    /// End of input marker appended by the lexer.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::SystemIdent(s) => write!(f, "`${s}`"),
            TokenKind::Directive(s) => write!(f, "``{s}`"),
            TokenKind::Keyword(k) => write!(f, "`{k}`"),
            TokenKind::Number(n) => write!(f, "number `{}`", n.text),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A numeric literal in source form together with its decoded value.
///
/// SystemVerilog literals may carry an explicit width and base
/// (e.g. `8'hFF`), be plain decimal (`42`), or be the unbased fill literals
/// `'0`, `'1`, `'x`, `'z`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumberLit {
    /// Original source text of the literal.
    pub text: String,
    /// Explicit width in bits, when one was written.
    pub width: Option<u32>,
    /// Decoded value.  `None` for literals containing `x`/`z` digits.
    pub value: Option<u128>,
    /// `true` for the unbased fill literals `'0`/`'1`/`'x`/`'z`.
    pub is_unbased: bool,
}

impl NumberLit {
    /// A decimal literal with a known value and no explicit width.
    pub fn decimal(value: u128) -> Self {
        NumberLit {
            text: value.to_string(),
            width: None,
            value: Some(value),
            is_unbased: false,
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// Where the token appears in the source.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }

    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if this token is the given keyword.
    pub fn is_keyword(&self, kw: Keyword) -> bool {
        matches!(&self.kind, TokenKind::Keyword(k) if *k == kw)
    }

    /// Returns `true` if this token is the given punctuation.
    pub fn is_punct(&self, p: Punct) -> bool {
        matches!(&self.kind, TokenKind::Punct(q) if *q == p)
    }
}

/// The style of a source comment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommentStyle {
    /// A `// ...` comment running to the end of the line.
    Line,
    /// A `/* ... */` comment.
    Block,
}

/// A comment captured by the lexer as trivia.
///
/// AutoSVA annotations live inside comments, so comments are preserved with
/// their spans rather than discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment body without the `//` or `/* */` delimiters.
    pub text: String,
    /// Span covering the whole comment including delimiters.
    pub span: Span,
    /// Line (1-based) on which the comment starts.
    pub line: usize,
    /// Whether this was a line or block comment.
    pub style: CommentStyle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for kw in [
            Keyword::Module,
            Keyword::AlwaysFf,
            Keyword::Endgenerate,
            Keyword::Posedge,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("not_a_keyword"), None);
    }

    #[test]
    fn punct_display() {
        assert_eq!(Punct::NonOverlapImpl.to_string(), "|=>");
        assert_eq!(Punct::AShr.to_string(), ">>>");
    }

    #[test]
    fn token_helpers() {
        let t = Token::new(TokenKind::Ident("clk_i".into()), Span::new(0, 5));
        assert_eq!(t.as_ident(), Some("clk_i"));
        assert!(!t.is_keyword(Keyword::Module));
        let k = Token::new(TokenKind::Keyword(Keyword::Module), Span::new(0, 6));
        assert!(k.is_keyword(Keyword::Module));
        assert_eq!(k.as_ident(), None);
    }

    #[test]
    fn number_decimal_constructor() {
        let n = NumberLit::decimal(42);
        assert_eq!(n.value, Some(42));
        assert_eq!(n.text, "42");
        assert!(!n.is_unbased);
    }

    #[test]
    fn token_kind_display() {
        assert_eq!(TokenKind::Ident("foo".to_string()).to_string(), "`foo`");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
