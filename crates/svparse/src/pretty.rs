//! Pretty-printing of AST nodes back to SystemVerilog source text.
//!
//! The printers are primarily used by the AutoSVA property generator (which
//! needs to splice user-written expressions into generated SVA code) and by
//! tests that check parse/print round trips.

use crate::ast::*;
use std::fmt::Write;

/// Renders an expression to SystemVerilog source text.
///
/// The output is fully parenthesized around binary and ternary operators so
/// the result can be safely substituted into larger expressions without
/// changing precedence.
///
/// # Examples
///
/// ```
/// use svparse::ast::{BinaryOp, Expr};
/// use svparse::pretty::print_expr;
///
/// let e = Expr::binary(BinaryOp::LogicalAnd, Expr::ident("val"), Expr::ident("rdy"));
/// assert_eq!(print_expr(&e), "(val && rdy)");
/// ```
pub fn print_expr(expr: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, expr);
    s
}

fn write_expr(out: &mut String, expr: &Expr) {
    match expr {
        Expr::Ident(name) => out.push_str(name),
        Expr::Number(n) => out.push_str(&n.text),
        Expr::Str(s) => {
            let _ = write!(out, "\"{s}\"");
        }
        Expr::Macro(name) => {
            let _ = write!(out, "`{name}");
        }
        Expr::Unary { op, operand } => {
            out.push_str(op.as_str());
            write_expr(out, operand);
        }
        Expr::Binary { op, lhs, rhs } => {
            out.push('(');
            write_expr(out, lhs);
            let _ = write!(out, " {} ", op.as_str());
            write_expr(out, rhs);
            out.push(')');
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            out.push('(');
            write_expr(out, cond);
            out.push_str(" ? ");
            write_expr(out, then_expr);
            out.push_str(" : ");
            write_expr(out, else_expr);
            out.push(')');
        }
        Expr::Index { base, index } => {
            write_expr(out, base);
            out.push('[');
            write_expr(out, index);
            out.push(']');
        }
        Expr::RangeSelect { base, msb, lsb } => {
            write_expr(out, base);
            out.push('[');
            write_expr(out, msb);
            out.push(':');
            write_expr(out, lsb);
            out.push(']');
        }
        Expr::Member { base, member } => {
            write_expr(out, base);
            out.push('.');
            out.push_str(member);
        }
        Expr::Concat(parts) => {
            out.push('{');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, p);
            }
            out.push('}');
        }
        Expr::Replicate { count, value } => {
            out.push('{');
            write_expr(out, count);
            out.push('{');
            write_expr(out, value);
            out.push_str("}}");
        }
        Expr::Call {
            name,
            is_system,
            args,
        } => {
            if *is_system {
                out.push('$');
            }
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a);
            }
            out.push(')');
        }
    }
}

/// Renders a data type (without the trailing signal name).
pub fn print_data_type(ty: &DataType) -> String {
    let mut s = String::new();
    match ty.kind {
        NetKind::Logic => s.push_str("logic"),
        NetKind::Wire => s.push_str("wire"),
        NetKind::Reg => s.push_str("reg"),
        NetKind::Bit => s.push_str("bit"),
        NetKind::Integer => s.push_str("integer"),
        NetKind::Named => s.push_str(ty.type_name.as_deref().unwrap_or("logic")),
        NetKind::Struct => {
            s.push_str("struct packed {");
            for f in &ty.struct_fields {
                let _ = write!(s, " {} {};", print_data_type(&f.ty), f.name);
            }
            s.push_str(" }");
            return s;
        }
        NetKind::Enum => {
            // No recorded dimensions means the 32-bit no-base default; print
            // it without a base so the round trip preserves the width (the
            // parser gives `enum logic` an explicit [0:0]).
            s.push_str("enum");
            if !ty.packed_dims.is_empty() {
                s.push_str(" logic");
                for dim in &ty.packed_dims {
                    let _ = write!(s, " [{}:{}]", print_expr(&dim.msb), print_expr(&dim.lsb));
                }
            }
            s.push_str(" {");
            for (i, m) in ty.enum_members.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, " {}", m.name);
                if let Some(v) = &m.value {
                    let _ = write!(s, " = {}", print_expr(v));
                }
            }
            s.push_str(" }");
            return s;
        }
    }
    if ty.signed {
        s.push_str(" signed");
    }
    for dim in &ty.packed_dims {
        let _ = write!(s, " [{}:{}]", print_expr(&dim.msb), print_expr(&dim.lsb));
    }
    s
}

/// Renders a port declaration as it would appear in an ANSI port list.
pub fn print_port(port: &Port) -> String {
    let mut s = format!(
        "{} {} {}",
        port.direction,
        print_data_type(&port.ty),
        port.name
    );
    for dim in &port.unpacked_dims {
        let _ = write!(s, " [{}:{}]", print_expr(&dim.msb), print_expr(&dim.lsb));
    }
    s
}

/// Renders a module header (name, parameters and ports) without the body.
///
/// Useful for generating bind scaffolding that mirrors the DUT interface.
pub fn print_module_header(module: &Module) -> String {
    let mut s = format!("module {}", module.name);
    if !module.params.is_empty() {
        s.push_str(" #(\n");
        for (i, p) in module.params.iter().enumerate() {
            let prefix = if p.is_local {
                "localparam"
            } else {
                "parameter"
            };
            let _ = write!(s, "  {prefix} {}", p.name);
            if let Some(v) = &p.value {
                let _ = write!(s, " = {}", print_expr(v));
            }
            if i + 1 < module.params.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push(')');
    }
    s.push_str(" (\n");
    for (i, port) in module.ports.iter().enumerate() {
        let _ = write!(s, "  {}", print_port(port));
        if i + 1 < module.ports.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str(");");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn expr_roundtrip_simple() {
        let file = parse(
            "module t (input logic a, b, output logic y);\n\
             assign y = a && !b || (a ^ b);\nendmodule",
        )
        .unwrap();
        let m = file.module("t").unwrap();
        let assign = match &m.items[0] {
            ModuleItem::ContinuousAssign(a) => a,
            _ => panic!(),
        };
        let printed = print_expr(&assign.rhs);
        assert!(printed.contains("&&"));
        assert!(printed.contains("!b"));
        // Re-parsing the printed expression must produce an equal tree.
        let src2 = format!(
            "module t2 (input logic a, b, output logic y);\nassign y = {printed};\nendmodule"
        );
        let file2 = parse(&src2).unwrap();
        let m2 = file2.module("t2").unwrap();
        let assign2 = match &m2.items[0] {
            ModuleItem::ContinuousAssign(a) => a,
            _ => panic!(),
        };
        assert_eq!(print_expr(&assign2.rhs), printed);
    }

    #[test]
    fn print_member_and_select() {
        let e = Expr::RangeSelect {
            base: Box::new(Expr::Member {
                base: Box::new(Expr::ident("req")),
                member: "data".into(),
            }),
            msb: Box::new(Expr::number(7)),
            lsb: Box::new(Expr::number(0)),
        };
        assert_eq!(print_expr(&e), "req.data[7:0]");
    }

    #[test]
    fn print_call_and_macro() {
        let e = Expr::Call {
            name: "stable".into(),
            is_system: true,
            args: vec![Expr::Macro("PAYLOAD".into())],
        };
        assert_eq!(print_expr(&e), "$stable(`PAYLOAD)");
    }

    #[test]
    fn print_module_header_has_ports() {
        let file = parse(
            "module lsu #(parameter W = 8) (input logic clk_i, output logic [W-1:0] q_o);\nendmodule",
        )
        .unwrap();
        let header = print_module_header(file.module("lsu").unwrap());
        assert!(header.contains("module lsu"));
        assert!(header.contains("parameter W = 8"));
        assert!(header.contains("input logic clk_i"));
        assert!(header.contains("output logic [(W - 1):0] q_o"));
    }

    #[test]
    fn print_data_type_named() {
        let ty = DataType {
            kind: NetKind::Named,
            type_name: Some("riscv::xlen_t".into()),
            ..DataType::default()
        };
        assert_eq!(print_data_type(&ty), "riscv::xlen_t");
    }

    #[test]
    fn enum_print_preserves_width_through_reparse() {
        // No-base (32-bit) and scalar-base (1-bit) enums must round-trip to
        // the same width: the printer emits no base for the 32-bit default,
        // and the parser records an explicit [0:0] for `enum logic`.
        for (src, dims) in [
            ("typedef enum { A, B } t;", 0),
            ("typedef enum logic { A, B } t;", 1),
            ("typedef enum logic [1:0] { A, B } t;", 1),
        ] {
            let file = parse(src).unwrap();
            let td = match &file.items[0] {
                Item::Typedef(t) => t,
                other => panic!("expected typedef, got {other:?}"),
            };
            assert_eq!(td.ty.packed_dims.len(), dims, "{src}");
            let printed = print_data_type(&td.ty);
            let src2 = format!("typedef {printed} t2;");
            let file2 = parse(&src2).unwrap();
            let td2 = match &file2.items[0] {
                Item::Typedef(t) => t,
                other => panic!("expected typedef, got {other:?}"),
            };
            assert_eq!(td2.ty.packed_dims, td.ty.packed_dims, "{src} -> {src2}");
        }
    }

    #[test]
    fn print_replicate() {
        let e = Expr::Replicate {
            count: Box::new(Expr::number(4)),
            value: Box::new(Expr::ident("a")),
        };
        assert_eq!(print_expr(&e), "{4{a}}");
    }
}
