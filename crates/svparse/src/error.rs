//! Error types for lexing and parsing.

use crate::span::{line_col, Span};
use std::error::Error;
use std::fmt;

/// The kind of a [`ParseError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// An unexpected character was encountered while lexing.
    UnexpectedChar(char),
    /// A string or block comment was not terminated before end of input.
    UnterminatedComment,
    /// A string literal was not terminated before end of input.
    UnterminatedString,
    /// A numeric literal was malformed (bad base, digits, or width).
    MalformedNumber(String),
    /// The parser expected one construct but found another.
    Expected {
        /// Human-readable description of what was expected.
        expected: String,
        /// Human-readable description of what was found instead.
        found: String,
    },
    /// The parser ran out of tokens while a construct was still open.
    UnexpectedEof(String),
    /// A construct is recognized but not supported by this subset parser.
    Unsupported(String),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            ParseErrorKind::UnterminatedComment => write!(f, "unterminated block comment"),
            ParseErrorKind::UnterminatedString => write!(f, "unterminated string literal"),
            ParseErrorKind::MalformedNumber(s) => write!(f, "malformed number literal `{s}`"),
            ParseErrorKind::Expected { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseErrorKind::UnexpectedEof(what) => {
                write!(f, "unexpected end of input while parsing {what}")
            }
            ParseErrorKind::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

/// An error produced while lexing or parsing SystemVerilog source.
///
/// Carries the [`Span`] of the offending text so diagnostics can point at the
/// exact location.  Use [`ParseError::render`] to format a message with
/// line/column information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Where in the source it went wrong.
    pub span: Span,
}

impl ParseError {
    /// Creates a new error.
    pub fn new(kind: ParseErrorKind, span: Span) -> Self {
        ParseError { kind, span }
    }

    /// Formats the error with 1-based line/column computed from `source`.
    ///
    /// # Examples
    ///
    /// ```
    /// use svparse::error::{ParseError, ParseErrorKind};
    /// use svparse::span::Span;
    ///
    /// let err = ParseError::new(ParseErrorKind::UnexpectedChar('$'), Span::new(3, 4));
    /// let msg = err.render("ab\n$x");
    /// assert!(msg.contains("2:1"));
    /// ```
    pub fn render(&self, source: &str) -> String {
        let pos = line_col(source, self.span.start);
        let mut out = format!("{pos}: {}", self.kind);
        if let Some(snippet) = caret_snippet(source, pos) {
            out.push('\n');
            out.push_str(&snippet);
        }
        out
    }
}

/// Renders the source line at `pos` with a caret under its column, the way
/// compilers point at the problem:
///
/// ```text
///   logic [3:0] bad $
///                   ^
/// ```
///
/// Tabs are kept in the caret padding so the caret stays aligned however
/// wide they render.  Returns `None` when `pos.line` is past the end of the
/// text.  Shared by parse errors and the design lint diagnostics.
pub fn caret_snippet(source: &str, pos: crate::span::LineCol) -> Option<String> {
    let line_text = source.lines().nth(pos.line.saturating_sub(1))?;
    let pad: String = line_text
        .chars()
        .take(pos.column.saturating_sub(1))
        .map(|c| if c == '\t' { '\t' } else { ' ' })
        .collect();
    Some(format!("  {line_text}\n  {pad}^"))
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at bytes {}", self.kind, self.span)
    }
}

impl Error for ParseError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_span() {
        let e = ParseError::new(ParseErrorKind::UnterminatedComment, Span::new(10, 12));
        let s = e.to_string();
        assert!(s.contains("unterminated block comment"));
        assert!(s.contains("10..12"));
    }

    #[test]
    fn render_reports_line_and_column() {
        let src = "line1\nline2 $";
        let e = ParseError::new(ParseErrorKind::UnexpectedChar('$'), Span::new(12, 13));
        let rendered = e.render(src);
        assert!(rendered.starts_with("2:7"));
        // The snippet shows the offending line with a caret at the column.
        assert!(
            rendered.contains("\n  line2 $\n        ^"),
            "rendered: {rendered}"
        );
    }

    #[test]
    fn render_caret_follows_tabs() {
        // Tab-indented line: the caret padding must reuse the tab so the
        // caret lands under the error however wide the tab renders.
        let src = "a\n\tbad $";
        let e = ParseError::new(ParseErrorKind::UnexpectedChar('$'), Span::new(7, 8));
        let rendered = e.render(src);
        assert!(
            rendered.contains("\n  \tbad $\n  \t    ^"),
            "rendered: {rendered}"
        );
    }

    #[test]
    fn expected_formatting() {
        let k = ParseErrorKind::Expected {
            expected: "`;`".into(),
            found: "`endmodule`".into(),
        };
        assert_eq!(k.to_string(), "expected `;`, found `endmodule`");
    }

    #[test]
    fn error_trait_object() {
        let e = ParseError::new(
            ParseErrorKind::UnexpectedEof("module".into()),
            Span::dummy(),
        );
        let boxed: Box<dyn Error> = Box::new(e);
        assert!(boxed.to_string().contains("module"));
    }
}
