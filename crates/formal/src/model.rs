//! The checked model: an AIG plus properties, constraints and fairness.
//!
//! A [`Model`] is what the verification engines consume.  It contains:
//!
//! * **bad-state literals** — safety assertions, violated when the literal is
//!   true in a reachable state;
//! * **cover literals** — reachability targets (SVA `cover property`);
//! * **invariant constraints** — safety assumptions that restrict the
//!   explored paths (SVA `assume property` of non-temporal shape);
//! * **response properties** — liveness obligations of the form
//!   `G (trigger -> F target)`, split into asserted obligations and assumed
//!   environment fairness.
//!
//! Liveness is reduced to safety with the standard liveness-to-safety (L2S)
//! loop-detection construction in [`Model::to_liveness_safety`].

use crate::aig::{Aig, Lit};

/// A named safety obligation: the design is buggy if `lit` can be true.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadProperty {
    /// Property name (the SVA label).
    pub name: String,
    /// Literal that is true exactly when the property is violated.
    pub lit: Lit,
}

/// A named reachability target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverProperty {
    /// Property name (the SVA label).
    pub name: String,
    /// Literal to be reached.
    pub lit: Lit,
}

/// A response (liveness) property `G (trigger -> F target)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseProperty {
    /// Property name (the SVA label).
    pub name: String,
    /// Literal that raises the obligation.
    pub trigger: Lit,
    /// Literal that discharges the obligation.
    pub target: Lit,
}

/// A sequential design together with everything to verify about it.
#[derive(Debug, Clone, Default)]
pub struct Model {
    /// The circuit.
    pub aig: Aig,
    /// Safety assertions (bad-state literals).
    pub bads: Vec<BadProperty>,
    /// Cover targets.
    pub covers: Vec<CoverProperty>,
    /// Invariant assumptions: every explored state must satisfy all of these.
    pub constraints: Vec<Lit>,
    /// Asserted liveness obligations.
    pub liveness: Vec<ResponseProperty>,
    /// Assumed environment fairness (liveness assumptions).
    pub fairness: Vec<ResponseProperty>,
}

/// The result of the liveness-to-safety transformation: a new [`Model`] whose
/// bad literals correspond one-to-one to the original liveness assertions.
#[derive(Debug, Clone)]
pub struct LivenessSafetyModel {
    /// The transformed model (safety only).
    pub model: Model,
    /// Names of the original liveness properties, in the same order as
    /// `model.bads`.
    pub property_names: Vec<String>,
}

impl Model {
    /// Creates an empty model around an existing circuit.
    pub fn new(aig: Aig) -> Self {
        Model {
            aig,
            ..Model::default()
        }
    }

    /// Builds a "pending obligation" monitor register for a response
    /// property: set when the trigger fires without the target, cleared by
    /// the target.
    fn pending_monitor(aig: &mut Aig, name: &str, prop: &ResponseProperty) -> Lit {
        let pending = aig.add_latch(format!("{name}_pending"), false);
        // pending' = (pending | trigger) & !target
        let raised = aig.or(pending, prop.trigger);
        let next = aig.and(raised, prop.target.invert());
        aig.set_latch_next(pending, next);
        pending
    }

    /// Adds pending-obligation monitor registers for every liveness assertion
    /// and fairness assumption, returning the augmented model together with
    /// the monitor literals.
    ///
    /// The returned literals are latch outputs of the augmented circuit, so
    /// engines that track state explicitly (see
    /// [`crate::explicit::ExplicitEngine`]) can read the obligation status
    /// directly from the packed state.
    pub fn with_pending_monitors(&self) -> (Model, Vec<Lit>, Vec<Lit>) {
        let mut aig = self.aig.clone();
        let assert_pendings: Vec<Lit> = self
            .liveness
            .iter()
            .enumerate()
            .map(|(i, p)| Self::pending_monitor(&mut aig, &format!("live{i}"), p))
            .collect();
        let fair_pendings: Vec<Lit> = self
            .fairness
            .iter()
            .enumerate()
            .map(|(i, f)| Self::pending_monitor(&mut aig, &format!("fair{i}"), f))
            .collect();
        let model = Model {
            aig,
            bads: self.bads.clone(),
            covers: self.covers.clone(),
            constraints: self.constraints.clone(),
            liveness: self.liveness.clone(),
            fairness: self.fairness.clone(),
        };
        (model, assert_pendings, fair_pendings)
    }

    /// Applies the liveness-to-safety transformation.
    ///
    /// For every asserted response property `G (a -> F b)` the transformed
    /// model contains a bad state that is reachable exactly when the original
    /// model has a reachable *fair lasso* on which the obligation stays
    /// pending forever while every assumed fairness property is honoured.
    ///
    /// The construction (Biere/Artho/Schuppan):
    ///
    /// * a free oracle input `l2s_save` snapshots the full latch state into
    ///   shadow registers (once),
    /// * `always_pending` tracks that the obligation has been pending at
    ///   every cycle since the snapshot,
    /// * one `fair_seen` register per assumed fairness property records that
    ///   its own pending flag was *low* at some cycle since the snapshot
    ///   (i.e. the environment obligation was not permanently withheld),
    /// * the bad state fires when the current state equals the snapshot, the
    ///   assertion obligation was pending throughout, and every fairness
    ///   witness was seen.
    pub fn to_liveness_safety(&self) -> LivenessSafetyModel {
        let mut aig = self.aig.clone();
        let mut property_names = Vec::new();
        let mut bads = Vec::new();

        // Monitors for assumed fairness (shared by all assertions).
        let fair_pendings: Vec<Lit> = self
            .fairness
            .iter()
            .enumerate()
            .map(|(i, f)| Self::pending_monitor(&mut aig, &format!("fair{i}"), f))
            .collect();

        // Monitors for asserted obligations.
        let assert_pendings: Vec<Lit> = self
            .liveness
            .iter()
            .enumerate()
            .map(|(i, p)| Self::pending_monitor(&mut aig, &format!("live{i}"), p))
            .collect();

        // Snapshot machinery.  The snapshot covers every latch of the
        // *augmented* design (original latches plus the pending monitors), so
        // a state match closes a genuine loop of the product automaton.
        let original_latches: Vec<Lit> = aig
            .latches()
            .iter()
            .map(|l| Lit::new(l.node, false))
            .collect();

        let save = aig.add_input("l2s_save");
        let saved = aig.add_latch("l2s_saved", false);
        let pulse = aig.and(save, saved.invert());
        let saved_next = aig.or(saved, pulse);
        aig.set_latch_next(saved, saved_next);

        // Shadow registers.
        let mut shadows = Vec::with_capacity(original_latches.len());
        for (i, &latch) in original_latches.iter().enumerate() {
            let shadow = aig.add_latch(format!("l2s_shadow{i}"), false);
            let next = aig.mux(pulse, latch, shadow);
            aig.set_latch_next(shadow, next);
            shadows.push(shadow);
        }

        // `state == shadow` for the original (augmented) latches.
        let eq_bits: Vec<Lit> = original_latches
            .iter()
            .zip(&shadows)
            .map(|(&a, &b)| aig.xnor(a, b))
            .collect();
        let state_matches = aig.and_many(&eq_bits);

        // Window-active signal: the snapshot cycle itself or any later cycle.
        let in_window = aig.or(pulse, saved);

        // Fairness witnesses: pending_i was low at some cycle in the window.
        let mut fair_seen_all = Lit::TRUE;
        for (i, &fp) in fair_pendings.iter().enumerate() {
            let seen = aig.add_latch(format!("l2s_fair_seen{i}"), false);
            let low_now = fp.invert();
            let windowed_low = aig.and(in_window, low_now);
            let keep = aig.and(seen, saved);
            let next = aig.or(keep, windowed_low);
            aig.set_latch_next(seen, next);
            // The witness for the *current* cycle also counts, so the check
            // uses `seen | (in_window & low_now)`.
            let seen_now = aig.or(seen, windowed_low);
            fair_seen_all = aig.and(fair_seen_all, seen_now);
        }

        for (i, prop) in self.liveness.iter().enumerate() {
            let pending = assert_pendings[i];
            // always_pending: the obligation held at every cycle in the window.
            let always = aig.add_latch(format!("l2s_always_pending{i}"), true);
            let still = aig.and(always, pending);
            let windowed = aig.mux(in_window, still, Lit::TRUE);
            aig.set_latch_next(always, windowed);
            let always_now = aig.and(always, pending);

            // Bad: we are back at the snapshot with the obligation pending
            // throughout and all fairness witnesses observed.
            let loop_closed = aig.and(saved, state_matches);
            let bad = aig.and_many(&[loop_closed, always_now, fair_seen_all]);
            bads.push(BadProperty {
                name: prop.name.clone(),
                lit: bad,
            });
            property_names.push(prop.name.clone());
        }

        let model = Model {
            aig,
            bads,
            covers: Vec::new(),
            constraints: self.constraints.clone(),
            liveness: Vec::new(),
            fairness: Vec::new(),
        };
        LivenessSafetyModel {
            model,
            property_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny design: a request input sets a busy flag, a grant input clears
    /// it.  The liveness property "busy is eventually cleared" holds only if
    /// we assume the grant eventually arrives.
    fn busy_design() -> (Model, Lit, Lit, Lit) {
        let mut aig = Aig::new();
        let req = aig.add_input("req");
        let gnt = aig.add_input("gnt");
        let busy = aig.add_latch("busy", false);
        // busy' = (busy | req) & !gnt
        let raised = aig.or(busy, req);
        let next = aig.and(raised, gnt.invert());
        aig.set_latch_next(busy, next);
        let model = Model::new(aig);
        (model, req, gnt, busy)
    }

    #[test]
    fn l2s_produces_one_bad_per_liveness_assertion() {
        let (mut model, _req, _gnt, busy) = busy_design();
        model.liveness.push(ResponseProperty {
            name: "busy_clears".into(),
            trigger: busy,
            target: busy.invert(),
        });
        let l2s = model.to_liveness_safety();
        assert_eq!(l2s.model.bads.len(), 1);
        assert_eq!(l2s.property_names, vec!["busy_clears".to_string()]);
        // The transformed model gained shadow latches and monitors.
        assert!(l2s.model.aig.num_latches() > model.aig.num_latches());
        assert!(l2s.model.liveness.is_empty());
    }

    #[test]
    fn l2s_with_fairness_adds_witness_latches() {
        let (mut model, req, gnt, busy) = busy_design();
        model.liveness.push(ResponseProperty {
            name: "busy_clears".into(),
            trigger: busy,
            target: busy.invert(),
        });
        model.fairness.push(ResponseProperty {
            name: "gnt_fair".into(),
            trigger: req,
            target: gnt,
        });
        let without_fair = {
            let mut m = Model::new(model.aig.clone());
            m.liveness = model.liveness.clone();
            m.to_liveness_safety()
        };
        let with_fair = model.to_liveness_safety();
        assert!(
            with_fair.model.aig.num_latches() > without_fair.model.aig.num_latches(),
            "fairness monitors must add latches"
        );
    }

    #[test]
    fn constraints_are_preserved_by_l2s() {
        let (mut model, req, _gnt, busy) = busy_design();
        model.constraints.push(req);
        model.liveness.push(ResponseProperty {
            name: "p".into(),
            trigger: busy,
            target: busy.invert(),
        });
        let l2s = model.to_liveness_safety();
        assert_eq!(l2s.model.constraints, vec![req]);
    }
}
