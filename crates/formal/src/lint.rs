//! Design lint: severity-graded static diagnostics over an elaborated
//! design and its compiled testbench (Level 1 of the static-analysis
//! subsystem; [`crate::opt`] is Level 2).
//!
//! The lint pass combines three sources of facts:
//!
//! * **Elaboration facts** ([`crate::elab::ElabLintFacts`]): undriven
//!   signals, multiply-driven signals, top-level outputs and enum-typed
//!   signals, recorded while the elaborator classifies drivers.
//! * **Compilation facts** ([`crate::compile::CompileLintFacts`]):
//!   naming-convention fallback bindings, annotation width mismatches and
//!   the symbols the annotations actually resolved to.
//! * **Source analysis**: when the original SystemVerilog text is
//!   available, the lint re-parses it to infer assignment widths, the
//!   design's read set (for dead-signal detection) and which enum states
//!   are ever mentioned.
//!
//! Constant registers are proven with the same three-valued sequential
//! sweep the Level-2 optimizer uses ([`crate::opt::constant_latches`]), so
//! both levels agree on what is constant.
//!
//! Every finding carries a stable lint code (`L001`..`L009`), a severity,
//! and — when the source text locates it — a 1-based line/column with a
//! caret snippet rendered by the same machinery as parse errors.

use crate::compile::CompiledTestbench;
use crate::elab::{const_eval, ElabDesign};
use crate::opt;
use autosva::FormalTestbench;
use std::collections::{BTreeSet, HashMap};
use svparse::ast::{AlwaysKind, BinaryOp, Expr, Module, ModuleItem, SourceFile, Stmt, UnaryOp};
use svparse::error::caret_snippet;
use svparse::span::line_col;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not necessarily wrong; reported, does not fail a run.
    Warning,
    /// Almost certainly a design bug (e.g. multiply-driven); fails the run.
    Error,
}

impl Severity {
    /// Lower-case label used in rendered and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Which findings the lint reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintLevel {
    /// Skip the lint entirely.
    Off,
    /// Report only error-severity findings.
    Errors,
    /// Report warnings and errors (the default).
    #[default]
    Warn,
}

/// Lint configuration, part of [`crate::checker::CheckOptions`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LintOptions {
    /// Which severities to report.
    pub level: LintLevel,
    /// Promote every warning to an error, so any finding fails the run.
    pub deny_warnings: bool,
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// Stable lint code, e.g. `"L002"`.
    pub code: &'static str,
    /// Severity after any `deny_warnings` promotion.
    pub severity: Severity,
    /// The signal (or annotation path) the finding is about.
    pub signal: String,
    /// Human-readable description.
    pub message: String,
    /// 1-based source line, when the source text locates the signal.
    pub line: Option<usize>,
    /// 1-based source column.
    pub column: Option<usize>,
    /// Source line with a caret under the location.
    pub snippet: Option<String>,
}

/// The result of a lint run: findings, sorted by source position then code.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings that passed the configured level filter.
    pub findings: Vec<LintFinding>,
}

impl LintReport {
    /// `true` when nothing was found (or the lint was off).
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// `true` when any finding is error severity (after promotion).
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Renders the report as compiler-style text, one finding per block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let errors = self.error_count();
        let warnings = self.findings.len() - errors;
        out.push_str(&format!(
            "lint: {} finding{} ({errors} error{}, {warnings} warning{})\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        ));
        for f in &self.findings {
            out.push_str(&format!(
                "  {}[{}]: {}\n",
                f.severity.label(),
                f.code,
                f.message
            ));
            if let (Some(line), Some(column)) = (f.line, f.column) {
                out.push_str(&format!("    --> {line}:{column}\n"));
            }
            if let Some(snippet) = &f.snippet {
                for l in snippet.lines() {
                    out.push_str(&format!("    {l}\n"));
                }
            }
        }
        out
    }

    /// Machine-readable JSON: an array of finding objects with fixed key
    /// order, so byte-for-byte diffs against a golden file are stable.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {");
            out.push_str(&format!("\"code\":\"{}\",", f.code));
            out.push_str(&format!("\"severity\":\"{}\",", f.severity.label()));
            out.push_str(&format!("\"signal\":\"{}\",", json_escape(&f.signal)));
            out.push_str(&format!("\"message\":\"{}\",", json_escape(&f.message)));
            match f.line {
                Some(l) => out.push_str(&format!("\"line\":{l},")),
                None => out.push_str("\"line\":null,"),
            }
            match f.column {
                Some(c) => out.push_str(&format!("\"column\":{c}")),
                None => out.push_str("\"column\":null"),
            }
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs every lint pass and returns the filtered, sorted report.
///
/// `source` enables the source-dependent passes (assignment width
/// mismatches, dead signals, unreachable enum states) and gives findings
/// line/column locations; without it only the model-level passes run.
pub fn run(
    design: &ElabDesign,
    compiled: &CompiledTestbench,
    testbench: &FormalTestbench,
    source: Option<&str>,
    options: &LintOptions,
) -> LintReport {
    if options.level == LintLevel::Off {
        return LintReport::default();
    }
    let _span = crate::telemetry::span("lint", &design.top);
    let mut ctx = LintCtx {
        design,
        compiled,
        source,
        masked: source.map(mask_comments),
        file: source.and_then(|s| svparse::parse(s).ok()),
        findings: Vec::new(),
    };

    // The full "referenced by verification intent" set: what the compiler
    // resolved plus what the annotations mention (covers X-prop-only
    // properties the compiler skips).
    let mut referenced: BTreeSet<String> = compiled.lint.referenced_symbols.clone();
    referenced.extend(testbench.referenced_signals());

    ctx.undriven_signals();
    ctx.multiply_driven_signals();
    ctx.constant_registers();
    ctx.annotation_width_mismatches();
    ctx.fallback_bindings();
    ctx.coverage_gaps(&referenced);
    if ctx.file.is_some() {
        ctx.assignment_width_mismatches();
        ctx.dead_signals(&referenced);
        ctx.unreachable_enum_states();
    }

    let mut findings = ctx.findings;
    if options.deny_warnings {
        for f in &mut findings {
            f.severity = Severity::Error;
        }
    }
    if options.level == LintLevel::Errors {
        findings.retain(|f| f.severity == Severity::Error);
    }
    findings.sort_by(|a, b| {
        (a.line.unwrap_or(usize::MAX), a.column, a.code, &a.signal).cmp(&(
            b.line.unwrap_or(usize::MAX),
            b.column,
            b.code,
            &b.signal,
        ))
    });
    findings.dedup_by(|a, b| a.code == b.code && a.signal == b.signal && a.message == b.message);
    LintReport { findings }
}

struct LintCtx<'a> {
    design: &'a ElabDesign,
    compiled: &'a CompiledTestbench,
    source: Option<&'a str>,
    /// `source` with comment bytes blanked (AUTOSVA blocks kept) so needle
    /// searches cannot land inside prose that happens to mention a signal.
    masked: Option<String>,
    file: Option<SourceFile>,
    findings: Vec<LintFinding>,
}

impl<'a> LintCtx<'a> {
    /// Pushes a finding located at the first word-boundary occurrence of
    /// `signal` in the source (no location when absent or no source).
    fn push(&mut self, code: &'static str, severity: Severity, signal: &str, message: String) {
        self.push_by_needle(code, severity, signal, signal, message);
    }

    /// Like [`LintCtx::push`], but locates the finding by an arbitrary
    /// `needle` instead of the signal name (e.g. an annotation expression
    /// identifier for a generated auxiliary signal that never appears in the
    /// source verbatim).
    fn push_by_needle(
        &mut self,
        code: &'static str,
        severity: Severity,
        signal: &str,
        needle: &str,
        message: String,
    ) {
        let located = match (self.source, self.masked.as_deref()) {
            (Some(src), Some(masked)) => find_word(masked, needle).map(|pos| (src, pos)),
            _ => None,
        };
        self.push_at(code, severity, signal, message, located);
    }

    fn push_at(
        &mut self,
        code: &'static str,
        severity: Severity,
        signal: &str,
        message: String,
        located: Option<(&str, usize)>,
    ) {
        let (line, column, snippet) = match located {
            Some((src, offset)) => {
                let pos = line_col(src, offset);
                (Some(pos.line), Some(pos.column), caret_snippet(src, pos))
            }
            None => (None, None, None),
        };
        self.findings.push(LintFinding {
            code,
            severity,
            signal: signal.to_string(),
            message,
            line,
            column,
            snippet,
        });
    }

    /// L001: a signal that was read but has no driver.  The elaborator
    /// soundly models it as a free input, but that is rarely what the
    /// designer meant.
    fn undriven_signals(&mut self) {
        let mut seen = BTreeSet::new();
        for name in &self.design.lint.undriven.clone() {
            if seen.insert(name.clone()) {
                self.push(
                    "L001",
                    Severity::Warning,
                    name,
                    format!("signal `{name}` has no driver; the model treats it as a free input"),
                );
            }
        }
    }

    /// L002: a signal wholly driven from more than one place.
    fn multiply_driven_signals(&mut self) {
        let mut seen = BTreeSet::new();
        for (name, detail) in &self.design.lint.multiply_driven.clone() {
            if seen.insert((name.clone(), detail.clone())) {
                self.push(
                    "L002",
                    Severity::Error,
                    name,
                    format!("signal `{name}` is driven by {detail}"),
                );
            }
        }
    }

    /// L005: a register proven to hold its reset value in every reachable
    /// state — the same sequential sweep the Level-2 optimizer uses, so a
    /// register this pass flags is exactly one the optimizer sweeps away.
    fn constant_registers(&mut self) {
        let constants = opt::constant_latches(&self.design.aig);
        if constants.is_empty() {
            return;
        }
        // Group per-bit latches back into registers: `x[2]` → word `x`.
        let mut const_bits: HashMap<String, Vec<(usize, bool)>> = HashMap::new();
        for (node, value) in &constants {
            if let Some(name) = self.design.aig.name_of(*node) {
                let (word, bit) = split_bit_suffix(name);
                const_bits.entry(word).or_default().push((bit, *value));
            }
        }
        let mut word_sizes: HashMap<String, usize> = HashMap::new();
        for latch in self.design.aig.latches() {
            if let Some(name) = self.design.aig.name_of(latch.node) {
                let (word, _) = split_bit_suffix(name);
                *word_sizes.entry(word).or_insert(0) += 1;
            }
        }
        let mut flagged: Vec<(String, String)> = Vec::new();
        for (word, bits) in &const_bits {
            // Only registers of the design itself (aux latches like
            // counters and sample registers are the testbench's business),
            // and only when *every* bit of the register is constant.
            if !self.design.symbols.contains_key(word) {
                continue;
            }
            if bits.len() != word_sizes.get(word).copied().unwrap_or(0) {
                continue;
            }
            let mut value: u128 = 0;
            let mut representable = true;
            for (bit, v) in bits {
                if *bit >= 128 {
                    representable = false;
                    break;
                }
                if *v {
                    value |= 1 << bit;
                }
            }
            let shown = if representable {
                format!("{value}")
            } else {
                "its reset value".to_string()
            };
            flagged.push((word.clone(), shown));
        }
        flagged.sort();
        for (word, value) in flagged {
            self.push(
                "L005",
                Severity::Warning,
                &word,
                format!("register `{word}` is constant at {value} in every reachable state"),
            );
        }
    }

    /// L004: an auxiliary signal whose declared width disagrees with the
    /// expression driving it.
    fn annotation_width_mismatches(&mut self) {
        for (name, declared, actual, needle) in &self.compiled.lint.width_mismatches.clone() {
            let message = format!(
                "annotation signal `{name}` is declared {declared} bit{} wide but its \
                 expression has {actual} bit{}",
                if *declared == 1 { "" } else { "s" },
                if *actual == 1 { "" } else { "s" },
            );
            // Generated aux names never appear in the source; locate by the
            // first identifier the annotation expression mentions.
            let needle = needle.as_deref().unwrap_or(name);
            self.push_by_needle("L004", Severity::Warning, name, needle, message);
        }
    }

    /// L009: a `port.field` annotation path that only resolved through the
    /// `port_field` naming convention — a guess worth confirming.
    fn fallback_bindings(&mut self) {
        for (requested, bound) in &self.compiled.lint.fallback_bindings.clone() {
            self.push(
                "L009",
                Severity::Warning,
                requested,
                format!(
                    "annotation path `{requested}` resolved to `{bound}` by naming \
                     convention only — no struct field or exact symbol matches"
                ),
            );
        }
    }

    /// L008: a top-level output no generated property ever looks at.
    fn coverage_gaps(&mut self, referenced: &BTreeSet<String>) {
        for output in &self.design.lint.top_outputs.clone() {
            let used_directly = referenced.contains(output);
            // A struct-typed output is referenced through its fields; any
            // `output.field` reference counts.
            let used_via_member = referenced.iter().any(|r| {
                r.strip_prefix(output.as_str())
                    .is_some_and(|rest| rest.starts_with('.'))
            });
            if !used_directly && !used_via_member {
                self.push(
                    "L008",
                    Severity::Warning,
                    output,
                    format!(
                        "output `{output}` is not referenced by any generated property \
                         or auxiliary signal (coverage gap)"
                    ),
                );
            }
        }
    }

    /// L003: an assignment whose two sides have statically-known, different
    /// widths.  Unsized literals and unknown operators infer no width, so
    /// idiomatic code (`x <= x + 1`, `y <= '0`) stays silent.
    fn assignment_width_mismatches(&mut self) {
        let Some(file) = &self.file else { return };
        let Some(module) = file.module(&self.design.top) else {
            return;
        };
        let widths = self.top_widths();
        let mut mismatches: Vec<(String, usize, usize, usize)> = Vec::new();
        let mut check = |lhs: &Expr, rhs: &Expr, span_start: usize| {
            let (Some(lw), Some(rw)) = (
                expr_width(lhs, &widths, &self.design.params),
                expr_width(rhs, &widths, &self.design.params),
            ) else {
                return;
            };
            if lw != rw {
                let target = lvalue_name(lhs);
                mismatches.push((target, lw, rw, span_start));
            }
        };
        for item in &module.items {
            match item {
                ModuleItem::ContinuousAssign(assign) => {
                    check(&assign.lhs, &assign.rhs, assign.span.start)
                }
                ModuleItem::Decl(decl) => {
                    for name in &decl.names {
                        if let Some(init) = &name.init {
                            check(&Expr::Ident(name.name.clone()), init, decl.span.start);
                        }
                    }
                }
                ModuleItem::Always(block) if block.kind != AlwaysKind::Initial => {
                    walk_assigns(&block.body, &mut |assign| {
                        check(&assign.lhs, &assign.rhs, assign.span.start)
                    });
                }
                _ => {}
            }
        }
        let source = self.source;
        for (target, lw, rw, offset) in mismatches {
            self.push_at(
                "L003",
                Severity::Warning,
                &target,
                format!(
                    "assignment to `{target}` ({lw} bit{}) from a {rw}-bit expression",
                    if lw == 1 { "" } else { "s" },
                ),
                source.map(|src| (src, offset)),
            );
        }
    }

    /// L006: a signal declared in the top module that nothing ever reads —
    /// not the RTL, not the annotations.
    fn dead_signals(&mut self, referenced: &BTreeSet<String>) {
        let Some(file) = &self.file else { return };
        let Some(module) = file.module(&self.design.top) else {
            return;
        };
        let reads = module_read_set(module);
        let mut dead: Vec<String> = Vec::new();
        for item in &module.items {
            if let ModuleItem::Decl(decl) = item {
                for name in &decl.names {
                    let n = &name.name;
                    if reads.contains(n) || referenced.contains(n) {
                        continue;
                    }
                    // Struct-typed signals may be referenced through member
                    // paths (`sig.field`).
                    let member_read = referenced.iter().any(|r| {
                        r.strip_prefix(n.as_str())
                            .is_some_and(|rest| rest.starts_with('.'))
                    });
                    if member_read {
                        continue;
                    }
                    dead.push(n.clone());
                }
            }
        }
        dead.sort();
        dead.dedup();
        for name in dead {
            self.push(
                "L006",
                Severity::Warning,
                &name,
                format!("signal `{name}` is never read by the design or any property (dead)"),
            );
        }
    }

    /// L007: an enum-typed signal whose type has states no expression in the
    /// whole design ever names — states that (short of raw-constant writes)
    /// cannot be reached.
    fn unreachable_enum_states(&mut self) {
        let Some(file) = &self.file else { return };
        let mut mentioned: BTreeSet<String> = BTreeSet::new();
        for module in file.modules() {
            let reads = module_read_set(module);
            mentioned.extend(reads);
        }
        let mut flagged: BTreeSet<(String, String)> = BTreeSet::new();
        let enum_signals = self.design.lint.enum_signals.clone();
        for (signal, key) in &enum_signals {
            let Some(members) = self.design.types.enum_members(key) else {
                continue;
            };
            let members = members.to_vec();
            for (member, _) in &members {
                // Scoped spellings (`pkg::IDLE`) also count as mentions.
                let named = mentioned.contains(member)
                    || mentioned.iter().any(|m| {
                        m.strip_suffix(member.as_str())
                            .is_some_and(|rest| rest.ends_with("::"))
                    });
                if !named && flagged.insert((signal.clone(), member.clone())) {
                    self.push(
                        "L007",
                        Severity::Warning,
                        signal,
                        format!(
                            "enum state `{member}` of signal `{signal}` is never referenced \
                             anywhere in the design (unreachable state)"
                        ),
                    );
                }
            }
        }
    }

    /// Widths of every top-level symbol, for assignment width inference.
    fn top_widths(&self) -> HashMap<String, usize> {
        self.design
            .symbols
            .iter()
            .map(|(name, bits)| (name.clone(), bits.len()))
            .collect()
    }
}

/// Strips a trailing `[N]` bit suffix: `"x[3]"` → `("x", 3)`, `"x"` →
/// `("x", 0)`.
fn split_bit_suffix(name: &str) -> (String, usize) {
    if let Some(open) = name.rfind('[') {
        if let Some(stripped) = name[open..]
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
        {
            if let Ok(bit) = stripped.parse::<usize>() {
                return (name[..open].to_string(), bit);
            }
        }
    }
    (name.to_string(), 0)
}

/// Blanks `//` and `/* */` comment bytes to spaces, preserving newlines and
/// byte offsets, so [`find_word`] offsets remain valid against the original
/// source.  `/*AUTOSVA ... */` blocks are left intact: annotations are
/// semantic input, and annotation-level findings locate inside them.
fn mask_comments(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let keep = source[i..].starts_with("/*AUTOSVA");
                let close = source[i + 2..]
                    .find("*/")
                    .map(|p| i + 2 + p + 2)
                    .unwrap_or(bytes.len());
                if !keep {
                    for b in &mut out[i..close] {
                        if *b != b'\n' {
                            *b = b' ';
                        }
                    }
                }
                i = close;
            }
            b'"' => {
                // Step over string literals so `//` inside one is not a
                // comment opener.
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += if bytes[i] == b'\\' { 2 } else { 1 };
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("masking only writes ASCII spaces")
}

/// First occurrence of `word` in `source` at identifier boundaries.
fn find_word(source: &str, word: &str) -> Option<usize> {
    if word.is_empty() {
        return None;
    }
    let bytes = source.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_' || b == b'$';
    let mut from = 0;
    while let Some(at) = source[from..].find(word) {
        let start = from + at;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident(bytes[start - 1]);
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

/// The base name an lvalue writes, for messages.
fn lvalue_name(lhs: &Expr) -> String {
    match lhs {
        Expr::Ident(name) => name.clone(),
        Expr::Index { base, .. } | Expr::RangeSelect { base, .. } => lvalue_name(base),
        Expr::Member { base, member } => format!("{}.{member}", lvalue_name(base)),
        _ => svparse::pretty::print_expr(lhs),
    }
}

/// Calls `f` on every assignment in a statement tree.
fn walk_assigns(stmt: &Stmt, f: &mut impl FnMut(&svparse::ast::Assign)) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                walk_assigns(s, f);
            }
        }
        Stmt::Blocking(a) | Stmt::NonBlocking(a) => f(a),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk_assigns(then_branch, f);
            if let Some(e) = else_branch {
                walk_assigns(e, f);
            }
        }
        Stmt::Case { items, .. } => {
            for item in items {
                walk_assigns(&item.body, f);
            }
        }
        Stmt::Empty => {}
    }
}

/// Every identifier a module *reads*: right-hand sides, conditions, case
/// subjects and labels, index expressions of lvalues, instance connections
/// and sensitivity lists.  Pure write targets are excluded.
fn module_read_set(module: &Module) -> BTreeSet<String> {
    let mut reads = BTreeSet::new();
    let mut add = |e: &Expr, reads: &mut BTreeSet<String>| {
        reads.extend(e.referenced_idents());
    };
    // Index/range expressions inside an lvalue are reads even though the
    // base is a write.
    fn lvalue_reads(lhs: &Expr, reads: &mut BTreeSet<String>) {
        match lhs {
            Expr::Index { base, index } => {
                reads.extend(index.referenced_idents());
                lvalue_reads(base, reads);
            }
            Expr::RangeSelect { base, msb, lsb } => {
                reads.extend(msb.referenced_idents());
                reads.extend(lsb.referenced_idents());
                lvalue_reads(base, reads);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    lvalue_reads(p, reads);
                }
            }
            Expr::Member { base, .. } => lvalue_reads(base, reads),
            _ => {}
        }
    }
    fn stmt_reads(
        stmt: &Stmt,
        reads: &mut BTreeSet<String>,
        add: &mut impl FnMut(&Expr, &mut BTreeSet<String>),
    ) {
        match stmt {
            Stmt::Block(stmts) => {
                for s in stmts {
                    stmt_reads(s, reads, add);
                }
            }
            Stmt::Blocking(a) | Stmt::NonBlocking(a) => {
                add(&a.rhs, reads);
                lvalue_reads(&a.lhs, reads);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                add(cond, reads);
                stmt_reads(then_branch, reads, add);
                if let Some(e) = else_branch {
                    stmt_reads(e, reads, add);
                }
            }
            Stmt::Case { subject, items } => {
                add(subject, reads);
                for item in items {
                    for label in &item.labels {
                        add(label, reads);
                    }
                    stmt_reads(&item.body, reads, add);
                }
            }
            Stmt::Empty => {}
        }
    }
    for item in &module.items {
        match item {
            ModuleItem::ContinuousAssign(assign) => {
                add(&assign.rhs, &mut reads);
                lvalue_reads(&assign.lhs, &mut reads);
            }
            ModuleItem::Decl(decl) => {
                for name in &decl.names {
                    if let Some(init) = &name.init {
                        add(init, &mut reads);
                    }
                }
            }
            ModuleItem::Param(p) => {
                if let Some(v) = &p.value {
                    add(v, &mut reads);
                }
            }
            ModuleItem::Always(block) => {
                for ev in &block.sensitivity {
                    add(&ev.signal, &mut reads);
                }
                stmt_reads(&block.body, &mut reads, &mut add);
            }
            ModuleItem::Instance(inst) => {
                for conn in inst.param_overrides.iter().chain(inst.connections.iter()) {
                    if let Some(expr) = &conn.expr {
                        add(expr, &mut reads);
                    }
                }
            }
            ModuleItem::Typedef(_) => {}
        }
    }
    reads
}

/// Static bit width of an expression, `None` when unknown.  Unsized
/// literals, parameters, struct members and calls infer no width; binary
/// operators require both sides known (SystemVerilog context-determined
/// sizing makes one-sided conclusions unsafe).
fn expr_width(
    expr: &Expr,
    widths: &HashMap<String, usize>,
    params: &HashMap<String, u128>,
) -> Option<usize> {
    match expr {
        Expr::Number(n) => {
            if n.is_unbased {
                None
            } else {
                n.width.map(|w| w as usize)
            }
        }
        Expr::Ident(name) => {
            if params.contains_key(name) {
                None
            } else {
                widths.get(name).copied()
            }
        }
        Expr::Unary { op, operand } => match op {
            UnaryOp::LogicalNot
            | UnaryOp::ReduceAnd
            | UnaryOp::ReduceOr
            | UnaryOp::ReduceXor
            | UnaryOp::ReduceNand
            | UnaryOp::ReduceNor
            | UnaryOp::ReduceXnor => Some(1),
            UnaryOp::BitwiseNot | UnaryOp::Negate | UnaryOp::Plus => {
                expr_width(operand, widths, params)
            }
        },
        Expr::Binary { op, lhs, rhs } => match op {
            BinaryOp::Eq
            | BinaryOp::Ne
            | BinaryOp::CaseEq
            | BinaryOp::CaseNe
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge
            | BinaryOp::LogicalAnd
            | BinaryOp::LogicalOr => Some(1),
            BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr => expr_width(lhs, widths, params),
            _ => {
                let l = expr_width(lhs, widths, params)?;
                let r = expr_width(rhs, widths, params)?;
                Some(l.max(r))
            }
        },
        Expr::Ternary {
            then_expr,
            else_expr,
            ..
        } => {
            let t = expr_width(then_expr, widths, params)?;
            let e = expr_width(else_expr, widths, params)?;
            Some(t.max(e))
        }
        Expr::Index { .. } => Some(1),
        Expr::RangeSelect { msb, lsb, .. } => {
            let msb = const_eval(msb, params).ok()?;
            let lsb = const_eval(lsb, params).ok()?;
            Some((msb.max(lsb) - msb.min(lsb) + 1) as usize)
        }
        Expr::Concat(parts) => {
            let mut total = 0usize;
            for p in parts {
                total += expr_width(p, widths, params)?;
            }
            Some(total)
        }
        Expr::Replicate { count, value } => {
            let n = const_eval(count, params).ok()? as usize;
            Some(n * expr_width(value, widths, params)?)
        }
        Expr::Member { .. } | Expr::Call { .. } | Expr::Str(_) | Expr::Macro(_) => None,
    }
}

/// Stable mapping from lint code to a short description, for docs and the
/// CLI.
pub const LINT_CODES: &[(&str, &str)] = &[
    ("L001", "undriven signal modeled as a free input"),
    ("L002", "multiply-driven signal"),
    ("L003", "assignment width mismatch"),
    ("L004", "annotation width mismatch"),
    ("L005", "register constant in every reachable state"),
    ("L006", "signal never read (dead)"),
    ("L007", "unreachable enum state"),
    ("L008", "output not covered by any property"),
    ("L009", "annotation bound by naming convention only"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_word_respects_identifier_boundaries() {
        let src = "wire foo_bar;\nwire foo;\n";
        // `foo` must not match inside `foo_bar`.
        assert_eq!(find_word(src, "foo"), Some(19));
        assert_eq!(find_word(src, "foo_bar"), Some(5));
        assert_eq!(find_word(src, "missing"), None);
    }

    #[test]
    fn split_bit_suffix_parses_names() {
        assert_eq!(split_bit_suffix("x[3]"), ("x".to_string(), 3));
        assert_eq!(split_bit_suffix("x"), ("x".to_string(), 0));
        assert_eq!(split_bit_suffix("mem[1][2]"), ("mem[1]".to_string(), 2));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn report_render_counts_severities() {
        let report = LintReport {
            findings: vec![
                LintFinding {
                    code: "L002",
                    severity: Severity::Error,
                    signal: "x".into(),
                    message: "signal `x` is driven twice".into(),
                    line: Some(3),
                    column: Some(10),
                    snippet: Some("  assign x = a;\n         ^".into()),
                },
                LintFinding {
                    code: "L001",
                    severity: Severity::Warning,
                    signal: "y".into(),
                    message: "signal `y` has no driver".into(),
                    line: None,
                    column: None,
                    snippet: None,
                },
            ],
        };
        let text = report.render();
        assert!(text.starts_with("lint: 2 findings (1 error, 1 warning)"));
        assert!(text.contains("error[L002]"));
        assert!(text.contains("--> 3:10"));
        assert!(text.contains("warning[L001]"));
        assert!(report.has_errors());
        let json = report.to_json();
        assert!(json.contains("\"code\":\"L002\""));
        assert!(json.contains("\"line\":null"));
    }

    #[test]
    fn width_inference_is_conservative() {
        let widths: HashMap<String, usize> = [("a".to_string(), 4), ("b".to_string(), 4)]
            .into_iter()
            .collect();
        let params = HashMap::new();
        // `a + 1` — unsized literal keeps the width unknown.
        let e = Expr::binary(BinaryOp::Add, Expr::ident("a"), Expr::number(1));
        assert_eq!(expr_width(&e, &widths, &params), None);
        // `a + b` — both known.
        let e = Expr::binary(BinaryOp::Add, Expr::ident("a"), Expr::ident("b"));
        assert_eq!(expr_width(&e, &widths, &params), Some(4));
        // Comparison collapses to one bit.
        let e = Expr::binary(BinaryOp::Eq, Expr::ident("a"), Expr::ident("b"));
        assert_eq!(expr_width(&e, &widths, &params), Some(1));
        // Concat sums.
        let e = Expr::Concat(vec![Expr::ident("a"), Expr::ident("b")]);
        assert_eq!(expr_width(&e, &widths, &params), Some(8));
    }
}
