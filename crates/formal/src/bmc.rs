//! Bounded model checking and k-induction over a [`Model`].
//!
//! * [`check_safety`] searches for a counterexample to a bad-state property
//!   with increasing bound; when none is found it attempts a k-induction
//!   proof strengthened with simple-path (loop-free) constraints, which makes
//!   the method complete for finite-state designs given enough depth.
//! * [`check_cover`] searches for a witness trace reaching a cover target.

use crate::aig::Lit;
use crate::interrupt::{Interrupt, InterruptReason};
use crate::model::Model;
use crate::pdr::FrameLemma;
use crate::sat::{ClausePool, SatLit, SolverConfig, SolverStats};
use crate::trace::Trace;
use crate::unroll::{SeedHint, Unroller};
use std::collections::HashMap;
use std::sync::Arc;

/// Options controlling the bounded engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BmcOptions {
    /// Maximum bound explored when searching for counterexamples.
    pub max_depth: usize,
    /// Maximum induction depth attempted when proving.
    pub max_induction: usize,
}

impl Default for BmcOptions {
    fn default() -> Self {
        BmcOptions {
            max_depth: 40,
            max_induction: 30,
        }
    }
}

/// Outcome of a safety check.
#[derive(Debug, Clone, PartialEq)]
pub enum SafetyResult {
    /// The property holds; proven by k-induction at the recorded depth.
    Proven {
        /// Induction depth at which the proof closed.
        induction_depth: usize,
    },
    /// A counterexample trace was found.
    Violated(Trace),
    /// Neither a counterexample nor a proof was found within the bounds.
    Unknown {
        /// Largest counterexample-free bound explored.
        explored_depth: usize,
    },
    /// The check was preempted by its [`Interrupt`] handle (deadline,
    /// budget or cancellation) before reaching a verdict.
    Interrupted,
}

impl SafetyResult {
    /// `true` when the property was proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, SafetyResult::Proven { .. })
    }

    /// `true` when a counterexample was found.
    pub fn is_violated(&self) -> bool {
        matches!(self, SafetyResult::Violated(_))
    }

    /// The counterexample trace, if any.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            SafetyResult::Violated(t) => Some(t),
            _ => None,
        }
    }
}

/// Outcome of a cover check.
#[derive(Debug, Clone, PartialEq)]
pub enum CoverResult {
    /// A witness trace reaching the target was found.
    Covered(Trace),
    /// The target was proven unreachable.
    Unreachable,
    /// No witness found within the bound.
    Unknown {
        /// Largest witness-free bound explored.
        explored_depth: usize,
    },
    /// The check was preempted by its [`Interrupt`] handle (deadline,
    /// budget or cancellation) before reaching a verdict.
    Interrupted,
}

fn apply_constraints(unroller: &mut Unroller<'_>, constraints: &[Lit], frame: usize) {
    for &c in constraints {
        unroller.constrain(c, frame, true);
    }
}

/// Extracts a counterexample trace of length `depth + 1` frames from a
/// satisfiable unrolling.
fn extract_trace(model: &Model, unroller: &mut Unroller<'_>, depth: usize) -> Trace {
    let mut trace = Trace::new(depth + 1);
    let input_lits: Vec<(String, Lit)> = model
        .aig
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, &node)| (model.aig.input_name(i).to_string(), Lit::new(node, false)))
        .collect();
    let latch_lits: Vec<(String, Lit)> = model
        .aig
        .latches()
        .iter()
        .map(|l| {
            let name = model.aig.name_of(l.node).unwrap_or("latch").to_string();
            (name, Lit::new(l.node, false))
        })
        .collect();
    for frame in 0..=depth {
        for (name, lit) in &input_lits {
            let value = unroller.model_value(*lit, frame);
            trace.record(frame, name, value, true);
        }
        for (name, lit) in &latch_lits {
            let value = unroller.model_value(*lit, frame);
            trace.record(frame, name, value, false);
        }
    }
    trace
}

/// Checks a single bad-state property of `model`.
///
/// `bad_index` selects an entry of [`Model::bads`].
///
/// # Panics
///
/// Panics if `bad_index` is out of range.
pub fn check_safety(model: &Model, bad_index: usize, options: &BmcOptions) -> SafetyResult {
    check_safety_detailed(model, bad_index, options, SolverConfig::default()).0
}

/// Like [`check_safety`], with an explicit solver configuration; also
/// returns the aggregated [`SolverStats`] of the BMC and induction solvers
/// so callers can attribute runtime to search work.
pub fn check_safety_detailed(
    model: &Model,
    bad_index: usize,
    options: &BmcOptions,
    solver: SolverConfig,
) -> (SafetyResult, SolverStats) {
    check_safety_budgeted(model, bad_index, options, solver, &Interrupt::none())
}

/// Like [`check_safety_detailed`], preemptible: the [`Interrupt`] handle
/// is polled at every depth step and inside the SAT search loops; when
/// it fires the check returns [`SafetyResult::Interrupted`].
pub fn check_safety_budgeted(
    model: &Model,
    bad_index: usize,
    options: &BmcOptions,
    solver: SolverConfig,
    interrupt: &Interrupt,
) -> (SafetyResult, SolverStats) {
    let _span = crate::telemetry::span("bmc.solve", &model.bads[bad_index].name);
    let (result, stats) = check_safety_impl(model, bad_index, options, solver, interrupt);
    crate::telemetry::count_solver("bmc", &stats);
    (result, stats)
}

/// The uninstrumented BMC + k-induction loop behind [`check_safety_detailed`].
fn check_safety_impl(
    model: &Model,
    bad_index: usize,
    options: &BmcOptions,
    solver: SolverConfig,
    interrupt: &Interrupt,
) -> (SafetyResult, SolverStats) {
    let bad = model.bads[bad_index].lit;

    // Phase 1: BMC — look for a counterexample with increasing depth.
    let mut bmc = Unroller::with_config(&model.aig, true, solver);
    let mut induction = Induction::new(model, bad, solver);
    bmc.set_interrupt(interrupt.clone());
    induction.unroller.set_interrupt(interrupt.clone());
    for depth in 0..=options.max_depth {
        #[cfg(any(test, feature = "fault-injection"))]
        crate::faults::point("bmc.depth_step");
        if interrupt.poll().is_some() {
            return (SafetyResult::Interrupted, bmc.stats() + induction.stats());
        }
        apply_constraints(&mut bmc, &model.constraints, depth);
        if bmc.solve_with(&[(bad, depth, true)]) {
            // A satisfiable answer is a genuine model even if the
            // interrupt fired concurrently: extract the counterexample.
            let trace = extract_trace(model, &mut bmc, depth);
            let stats = bmc.stats() + induction.stats();
            return (SafetyResult::Violated(trace), stats);
        }
        if interrupt.triggered().is_some() {
            // The "no counterexample at this depth" answer may be an
            // interrupted solve in disguise; never unroll further.
            return (SafetyResult::Interrupted, bmc.stats() + induction.stats());
        }
        // Try to close a k-induction proof at this depth before unrolling
        // further; `depth` counterexample-free frames form the base case.
        if depth <= options.max_induction && try_induction_at(depth) && induction.step_holds(depth)
        {
            let stats = bmc.stats() + induction.stats();
            if interrupt.triggered().is_some() {
                // `step_holds` negates a boolean solve: an interrupted
                // query would read as "step holds".  The latch check
                // keeps an interrupted solve from becoming a proof.
                return (SafetyResult::Interrupted, stats);
            }
            return (
                SafetyResult::Proven {
                    induction_depth: depth,
                },
                stats,
            );
        }
        if interrupt.triggered().is_some() {
            return (SafetyResult::Interrupted, bmc.stats() + induction.stats());
        }
    }
    let stats = bmc.stats() + induction.stats();
    (
        SafetyResult::Unknown {
            explored_depth: options.max_depth,
        },
        stats,
    )
}

/// Induction is attempted at every small depth and then every third depth.
fn try_induction_at(depth: usize) -> bool {
    depth <= 3 || depth.is_multiple_of(3)
}

/// Incrementally maintained k-induction instance.
///
/// All constraints of the inductive step grow monotonically with the depth
/// (`!bad` in earlier frames, per-frame invariant constraints, pairwise
/// loop-free-path constraints), while `bad` in the last frame is only ever
/// *assumed* — so one shared transition-relation unrolling serves every
/// attempt, each deeper attempt asserting just the delta instead of
/// re-encoding the whole instance from scratch.
struct Induction<'a> {
    model: &'a Model,
    bad: Lit,
    unroller: Unroller<'a>,
    latch_lits: Vec<Lit>,
    /// Deepest frame already constrained, or `None` before the first
    /// attempt.
    constrained: Option<usize>,
}

impl Induction<'_> {
    fn stats(&self) -> SolverStats {
        self.unroller.stats()
    }
}

impl<'a> Induction<'a> {
    fn new(model: &'a Model, bad: Lit, solver: SolverConfig) -> Self {
        Induction {
            model,
            bad,
            // No initial-state constraint: the step starts from any state.
            unroller: Unroller::with_config(&model.aig, false, solver),
            latch_lits: model
                .aig
                .latches()
                .iter()
                .map(|l| Lit::new(l.node, false))
                .collect(),
            constrained: None,
        }
    }

    /// Asserts that at least one latch differs between frames `i` and `j`.
    fn assert_frames_differ(&mut self, i: usize, j: usize) {
        let mut diffs: Vec<crate::sat::SatLit> = Vec::with_capacity(self.latch_lits.len());
        for idx in 0..self.latch_lits.len() {
            let lit = self.latch_lits[idx];
            let a = self.unroller.lit_in_frame(lit, i);
            let b = self.unroller.lit_in_frame(lit, j);
            let d = self.unroller.new_free_lit();
            self.unroller.add_clause(&[d.negate(), a, b]);
            self.unroller
                .add_clause(&[d.negate(), a.negate(), b.negate()]);
            diffs.push(d);
        }
        self.unroller.add_clause(&diffs);
    }

    /// Checks whether the k-induction step holds at depth `k`: from any
    /// loop-free path of `k + 1` states that satisfies the constraints and
    /// avoids the bad state in its first `k` frames, the last frame cannot
    /// be bad.
    fn step_holds(&mut self, k: usize) -> bool {
        let new_from = self.constrained.map_or(0, |p| p + 1);
        for frame in new_from..=k {
            apply_constraints(&mut self.unroller, &self.model.constraints, frame);
        }
        // `!bad` must cover frames 0..k; earlier attempts asserted it up to
        // their own `k - 1`.
        let bad_from = self.constrained.map_or(0, |p| p);
        for frame in bad_from..k {
            self.unroller.constrain(self.bad, frame, false);
        }
        // New pairwise simple-path constraints involving the new frames.
        if !self.latch_lits.is_empty() {
            for j in new_from..=k {
                for i in 0..j {
                    self.assert_frames_differ(i, j);
                }
            }
        }
        self.constrained = Some(k);
        // `bad` at frame `k` is assumed, not asserted, so deeper attempts
        // remain satisfiable-compatible with this instance.
        !self.unroller.solve_with(&[(self.bad, k, true)])
    }
}

/// Clause traffic through the shared learnt-clause pools of one
/// portfolio race (see [`race_safety_budgeted`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingTraffic {
    /// Learnt clauses accepted into the shared pools.
    pub exported: u64,
    /// Shared clauses attached by an importing solver.
    pub imported: u64,
    /// Export candidates rejected by the glue bound or deduplication.
    pub filtered: u64,
}

/// Parameters of a clause-sharing portfolio race (see
/// [`race_safety_budgeted`]).
#[derive(Debug, Clone)]
pub struct RaceOptions {
    /// One racer per configuration, taking round-robin turns.  An empty
    /// list degenerates to a single default-configuration racer.
    pub configs: Vec<SolverConfig>,
    /// Conflict budget of one racer turn.  Clamped to at least 1.
    pub quantum: u64,
    /// LBD bound above which learnt clauses are not shared (see
    /// [`ClausePool::new`]).
    pub glue_bound: u32,
    /// Reachability lemmas harvested from an inconclusive PDR run on the
    /// same cone, asserted into every racer's BMC unrolling (frames
    /// `0..=through` only, where each is implied).
    pub lemmas: Vec<FrameLemma>,
    /// Cross-property phase/activity seeds from a COI-overlapping
    /// sibling cone, installed on every racer (see
    /// [`crate::unroll::SeedHint`]).
    pub seeds: HashMap<usize, SeedHint>,
    /// Externally shared `(bmc, induction-step)` pools — typically from a
    /// [`crate::portfolio::SharedPools`] registry keyed by COI
    /// fingerprint, so a race on a content-identical cone imports the
    /// sibling's clauses instead of starting cold.  `None` gives the
    /// race fresh private pools.
    pub pools: Option<(Arc<ClausePool>, Arc<ClausePool>)>,
}

/// Asserts the PDR frame lemmas that cover BMC frame `frame`.
///
/// A lemma with level `through` holds in every state reachable within
/// `through` steps; BMC frame `frame` (initial states constrained)
/// contains only states reachable in exactly `frame` steps, so the
/// clause is implied whenever `frame <= through`.  Implied clauses can
/// prune search but never flip a verdict: a satisfying assignment at any
/// depth encodes a genuine execution, and every state on it satisfies
/// the lemmas covering its frame.
fn apply_lemmas(unroller: &mut Unroller<'_>, lemmas: &[FrameLemma], frame: usize) {
    for lemma in lemmas {
        if lemma.through < frame {
            continue;
        }
        let clause: Vec<SatLit> = lemma
            .clause
            .iter()
            .map(|&l| unroller.lit_in_frame(l, frame))
            .collect();
        unroller.add_clause(&clause);
    }
}

/// What one racer turn produced.
enum TurnOutcome {
    /// The racer reached a verdict; the race is over.
    Won(SafetyResult),
    /// The turn's conflict quantum ran out; the racer is resumable.
    Quantum,
    /// The parent deadline or cancellation fired; the whole race stops.
    RaceInterrupted,
}

/// Maps a fired per-turn interrupt to a turn outcome: the quantum is the
/// turn interrupt's own budget, everything else (deadline, cancellation)
/// is inherited from the parent and ends the race.
fn interruption(reason: InterruptReason) -> TurnOutcome {
    match reason {
        InterruptReason::Budget => TurnOutcome::Quantum,
        InterruptReason::Timeout | InterruptReason::Cancelled => TurnOutcome::RaceInterrupted,
    }
}

/// Which solve a racer runs next at its current depth.
enum RacerPhase {
    /// The bounded counterexample query.
    Bmc,
    /// The k-induction step query (the depth's BMC query was unsat).
    Induction,
}

/// One portfolio contestant: a full BMC + k-induction cascade instance
/// with its own solver configuration, advanced one conflict quantum at a
/// time by [`race_safety_budgeted`].
///
/// Every racer walks the *same* `(depth, phase)` trajectory as the plain
/// [`check_safety_detailed`] loop: per-depth satisfiability and
/// step-holds answers are semantic properties of the model, independent
/// of solver configuration and of any implied clauses imported from the
/// shared pool.  Racers therefore differ only in how fast they get
/// there (and in which satisfying assignment a `Violated` verdict
/// carries — callers canonicalize the trace; see the checker).
struct Racer<'a> {
    bmc: Unroller<'a>,
    induction: Induction<'a>,
    depth: usize,
    phase: RacerPhase,
    /// Deepest BMC frame whose invariant constraints and PDR lemmas have
    /// been asserted; guards against duplicate assertion when a turn
    /// resumes at a depth it already prepared.
    applied: Option<usize>,
    /// The per-turn interrupt most recently armed on this racer's
    /// solvers.  Losers are cancelled by firing it, which also bars any
    /// further clause exports (the solver's export gate checks the
    /// latch).
    turn_interrupt: Interrupt,
}

impl<'a> Racer<'a> {
    fn new(
        model: &'a Model,
        bad: Lit,
        config: SolverConfig,
        bmc_pool: &Arc<ClausePool>,
        step_pool: &Arc<ClausePool>,
        seeds: &HashMap<usize, SeedHint>,
    ) -> Self {
        let mut bmc = Unroller::with_config(&model.aig, true, config);
        bmc.attach_pool(Arc::clone(bmc_pool));
        let mut induction = Induction::new(model, bad, config);
        induction.unroller.attach_pool(Arc::clone(step_pool));
        if !seeds.is_empty() {
            bmc.set_seed_hints(seeds.clone());
            induction.unroller.set_seed_hints(seeds.clone());
        }
        Racer {
            bmc,
            induction,
            depth: 0,
            phase: RacerPhase::Bmc,
            applied: None,
            turn_interrupt: Interrupt::none(),
        }
    }

    fn stats(&self) -> SolverStats {
        self.bmc.stats() + self.induction.stats()
    }

    fn conflicts(&self) -> u64 {
        self.bmc.stats().conflicts + self.induction.stats().conflicts
    }

    /// Installs a fresh per-turn interrupt on both solvers.
    fn arm(&mut self, turn: Interrupt) {
        self.bmc.set_interrupt(turn.clone());
        self.induction.unroller.set_interrupt(turn.clone());
        self.turn_interrupt = turn;
    }

    /// Advances this racer until it reaches a verdict or its turn
    /// interrupt fires.  Resumable: a turn ended by its quantum picks up
    /// at the same `(depth, phase)` with the incremental solver state
    /// (and all learnt clauses) intact.
    fn take_turn(
        &mut self,
        model: &Model,
        bad: Lit,
        options: &BmcOptions,
        lemmas: &[FrameLemma],
        turn: &Interrupt,
    ) -> TurnOutcome {
        while self.depth <= options.max_depth {
            if let Some(reason) = turn.poll() {
                return interruption(reason);
            }
            let depth = self.depth;
            match self.phase {
                RacerPhase::Bmc => {
                    if self.applied < Some(depth) {
                        apply_constraints(&mut self.bmc, &model.constraints, depth);
                        apply_lemmas(&mut self.bmc, lemmas, depth);
                        self.applied = Some(depth);
                    }
                    if self.bmc.solve_with(&[(bad, depth, true)]) {
                        // A satisfiable answer is a genuine model even if
                        // the interrupt fired concurrently.
                        let trace = extract_trace(model, &mut self.bmc, depth);
                        return TurnOutcome::Won(SafetyResult::Violated(trace));
                    }
                    if let Some(reason) = turn.triggered() {
                        // "No counterexample" may be an interrupted solve
                        // in disguise; never advance past it.
                        return interruption(reason);
                    }
                    if depth <= options.max_induction && try_induction_at(depth) {
                        self.phase = RacerPhase::Induction;
                    } else {
                        self.depth += 1;
                    }
                }
                RacerPhase::Induction => {
                    let holds = self.induction.step_holds(depth);
                    if let Some(reason) = turn.triggered() {
                        // `step_holds` negates a boolean solve: an
                        // interrupted query would read as "step holds".
                        return interruption(reason);
                    }
                    if holds {
                        return TurnOutcome::Won(SafetyResult::Proven {
                            induction_depth: depth,
                        });
                    }
                    self.phase = RacerPhase::Bmc;
                    self.depth += 1;
                }
            }
        }
        TurnOutcome::Won(SafetyResult::Unknown {
            explored_depth: options.max_depth,
        })
    }
}

/// Races diverse solver configurations on one bad-state property with
/// glue-bounded learnt-clause sharing: first answer wins, losers are
/// cancelled through the [`Interrupt`] handle of their last turn.
///
/// The race is deterministic single-threaded lockstep: racers take
/// round-robin turns of `quantum` conflicts each, exchanging learnt
/// clauses through two shared [`ClausePool`]s (one for the BMC
/// unrollings, one for the induction-step unrollings — within each
/// group every racer builds the identical variable numbering, so
/// clauses transfer verbatim).  Because per-depth SAT answers are
/// semantic, sharing and racer diversity can only shorten the search,
/// never change the verdict — `Proven`/`Unknown` results are identical
/// to [`check_safety_budgeted`] with any single configuration, and a
/// `Violated` result carries a genuine (but not canonical) trace the
/// caller re-derives with a deterministic single-config solve.
///
/// The parent `interrupt` spans the whole race: its deadline and
/// cancellation flag are re-armed on every per-turn child handle, and
/// its step budget is charged with each turn's conflicts.
///
/// # Panics
///
/// Panics if `bad_index` is out of range.
pub fn race_safety_budgeted(
    model: &Model,
    bad_index: usize,
    options: &BmcOptions,
    race: &RaceOptions,
    interrupt: &Interrupt,
) -> (SafetyResult, SolverStats, SharingTraffic) {
    let _span = crate::telemetry::span("bmc.solve", &model.bads[bad_index].name);
    if race.configs.is_empty() {
        // Degenerate race: fall back to the plain single-solver loop.
        let (result, stats) = check_safety_impl(
            model,
            bad_index,
            options,
            SolverConfig::default(),
            interrupt,
        );
        crate::telemetry::count_solver("bmc", &stats);
        return (result, stats, SharingTraffic::default());
    }
    let bad = model.bads[bad_index].lit;
    let (bmc_pool, step_pool) = match &race.pools {
        Some((bmc, step)) => (Arc::clone(bmc), Arc::clone(step)),
        None => (
            Arc::new(ClausePool::new(race.glue_bound)),
            Arc::new(ClausePool::new(race.glue_bound)),
        ),
    };
    // Shared registry pools carry traffic from earlier races; report only
    // this race's contribution.
    let base = SharingTraffic {
        exported: bmc_pool.exported() + step_pool.exported(),
        imported: bmc_pool.imported() + step_pool.imported(),
        filtered: bmc_pool.filtered() + step_pool.filtered(),
    };
    let quantum = race.quantum.max(1);
    let mut racers: Vec<Racer<'_>> = race
        .configs
        .iter()
        .map(|&config| Racer::new(model, bad, config, &bmc_pool, &step_pool, &race.seeds))
        .collect();
    let verdict = 'race: loop {
        for racer in &mut racers {
            if interrupt.poll().is_some() {
                break 'race SafetyResult::Interrupted;
            }
            let turn = Interrupt::new(
                interrupt.deadline(),
                Some(quantum),
                interrupt.cancel_handle(),
            );
            racer.arm(turn.clone());
            let before = racer.conflicts();
            let outcome = racer.take_turn(model, bad, options, &race.lemmas, &turn);
            let spent = racer.conflicts().saturating_sub(before);
            interrupt.charge(spent);
            match outcome {
                TurnOutcome::Won(result) => break 'race result,
                TurnOutcome::Quantum => {}
                TurnOutcome::RaceInterrupted => break 'race SafetyResult::Interrupted,
            }
        }
    };
    // First answer wins: every other racer is cancelled through its last
    // turn's interrupt handle, which (via the export gate in the solver)
    // also bars any clause it might still derive from entering the pool.
    for racer in &racers {
        racer.turn_interrupt.fire(InterruptReason::Cancelled);
    }
    let stats = racers
        .iter()
        .fold(SolverStats::default(), |acc, r| acc + r.stats());
    let traffic = SharingTraffic {
        exported: (bmc_pool.exported() + step_pool.exported()).saturating_sub(base.exported),
        imported: (bmc_pool.imported() + step_pool.imported()).saturating_sub(base.imported),
        filtered: (bmc_pool.filtered() + step_pool.filtered()).saturating_sub(base.filtered),
    };
    crate::telemetry::count_solver("bmc", &stats);
    (verdict, stats, traffic)
}

/// Checks a cover property of `model`.
///
/// # Panics
///
/// Panics if `cover_index` is out of range.
pub fn check_cover(model: &Model, cover_index: usize, options: &BmcOptions) -> CoverResult {
    check_cover_detailed(model, cover_index, options, SolverConfig::default()).0
}

/// Like [`check_cover`], with an explicit solver configuration and the
/// aggregated [`SolverStats`] of the underlying solvers.
pub fn check_cover_detailed(
    model: &Model,
    cover_index: usize,
    options: &BmcOptions,
    solver: SolverConfig,
) -> (CoverResult, SolverStats) {
    check_cover_budgeted(model, cover_index, options, solver, &Interrupt::none())
}

/// Like [`check_cover_detailed`], preemptible via the [`Interrupt`]
/// handle (see [`check_safety_budgeted`]).
pub fn check_cover_budgeted(
    model: &Model,
    cover_index: usize,
    options: &BmcOptions,
    solver: SolverConfig,
    interrupt: &Interrupt,
) -> (CoverResult, SolverStats) {
    let _span = crate::telemetry::span("bmc.solve", &model.covers[cover_index].name);
    let (result, stats) = check_cover_impl(model, cover_index, options, solver, interrupt);
    crate::telemetry::count_solver("bmc", &stats);
    (result, stats)
}

/// The uninstrumented BMC + unreachability loop behind [`check_cover_detailed`].
fn check_cover_impl(
    model: &Model,
    cover_index: usize,
    options: &BmcOptions,
    solver: SolverConfig,
    interrupt: &Interrupt,
) -> (CoverResult, SolverStats) {
    let target = model.covers[cover_index].lit;
    let mut bmc = Unroller::with_config(&model.aig, true, solver);
    let mut induction = Induction::new(model, target, solver);
    bmc.set_interrupt(interrupt.clone());
    induction.unroller.set_interrupt(interrupt.clone());
    for depth in 0..=options.max_depth {
        #[cfg(any(test, feature = "fault-injection"))]
        crate::faults::point("bmc.depth_step");
        if interrupt.poll().is_some() {
            return (CoverResult::Interrupted, bmc.stats() + induction.stats());
        }
        apply_constraints(&mut bmc, &model.constraints, depth);
        if bmc.solve_with(&[(target, depth, true)]) {
            let trace = extract_trace(model, &mut bmc, depth);
            let stats = bmc.stats() + induction.stats();
            return (CoverResult::Covered(trace), stats);
        }
        if interrupt.triggered().is_some() {
            return (CoverResult::Interrupted, bmc.stats() + induction.stats());
        }
        if depth <= options.max_induction && try_induction_at(depth) && induction.step_holds(depth)
        {
            let stats = bmc.stats() + induction.stats();
            if interrupt.triggered().is_some() {
                // An interrupted step query must not become an
                // unreachability proof (see check_safety_impl).
                return (CoverResult::Interrupted, stats);
            }
            return (CoverResult::Unreachable, stats);
        }
        if interrupt.triggered().is_some() {
            return (CoverResult::Interrupted, bmc.stats() + induction.stats());
        }
    }
    let stats = bmc.stats() + induction.stats();
    (
        CoverResult::Unknown {
            explored_depth: options.max_depth,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;
    use crate::model::BadProperty;
    use crate::model::CoverProperty;

    /// A 3-bit counter that saturates at 7.
    fn saturating_counter() -> (Model, Vec<Lit>) {
        let mut aig = Aig::new();
        let bits: Vec<Lit> = (0..3)
            .map(|i| aig.add_latch(format!("c{i}"), false))
            .collect();
        let all_ones = aig.and_many(&bits);
        // increment unless saturated
        let b0 = bits[0];
        let b1 = bits[1];
        let b2 = bits[2];
        let n0 = aig.xor(b0, Lit::TRUE);
        let carry0 = b0;
        let n1 = aig.xor(b1, carry0);
        let carry1 = aig.and(b1, carry0);
        let n2 = aig.xor(b2, carry1);
        let hold0 = aig.mux(all_ones, b0, n0);
        let hold1 = aig.mux(all_ones, b1, n1);
        let hold2 = aig.mux(all_ones, b2, n2);
        aig.set_latch_next(b0, hold0);
        aig.set_latch_next(b1, hold1);
        aig.set_latch_next(b2, hold2);
        (Model::new(aig), bits)
    }

    #[test]
    fn bmc_finds_reachable_bad_state() {
        let (mut model, bits) = saturating_counter();
        // Bad: counter value == 5 (101).
        let b = {
            let aig = &mut model.aig;
            let not1 = bits[1].invert();
            let t = aig.and(bits[0], not1);
            aig.and(t, bits[2])
        };
        model.bads.push(BadProperty {
            name: "reaches_five".into(),
            lit: b,
        });
        let result = check_safety(&model, 0, &BmcOptions::default());
        match result {
            SafetyResult::Violated(trace) => {
                assert_eq!(trace.len(), 6); // value 5 reached at frame 5
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn induction_proves_unreachable_bad_state() {
        let (mut model, bits) = saturating_counter();
        // The counter saturates at 7 and never wraps to 0 again after
        // reaching 1: "counter == 0 and we have been at 1" is unreachable.
        // Simpler: prove the counter never goes *backwards* from 7 to 6 ...
        // Here: bad = (value == 7) && next would be 0 is impossible; instead
        // prove that "value 7 then value 0" cannot happen by checking a
        // helper latch.  Keep it simple: bad = false literal is trivially
        // proven.
        let bad = Lit::FALSE;
        let _ = &bits;
        model.bads.push(BadProperty {
            name: "never".into(),
            lit: bad,
        });
        let result = check_safety(&model, 0, &BmcOptions::default());
        assert!(result.is_proven(), "got {result:?}");
    }

    #[test]
    fn induction_proves_saturation_invariant() {
        // Once saturated (all ones), the counter stays saturated: the bad
        // state "was saturated previously but is not saturated now" is
        // unreachable and provable by 1-induction.
        let (mut model, bits) = saturating_counter();
        let (was_saturated, all_ones) = {
            let aig = &mut model.aig;
            let all_ones = aig.and_many(&bits);
            let was = aig.add_latch("was_saturated", false);
            let next = aig.or(was, all_ones);
            aig.set_latch_next(was, next);
            (was, all_ones)
        };
        let bad = {
            let aig = &mut model.aig;
            aig.and(was_saturated, all_ones.invert())
        };
        model.bads.push(BadProperty {
            name: "saturation_sticks".into(),
            lit: bad,
        });
        let result = check_safety(&model, 0, &BmcOptions::default());
        assert!(result.is_proven(), "got {result:?}");
    }

    #[test]
    fn constraints_restrict_paths() {
        // A free input drives a latch; with the constraint "input is low" the
        // latch can never become high.
        let mut aig = Aig::new();
        let inp = aig.add_input("x");
        let q = aig.add_latch("q", false);
        aig.set_latch_next(q, inp);
        let mut model = Model::new(aig);
        model.constraints.push(inp.invert());
        model.bads.push(BadProperty {
            name: "q_high".into(),
            lit: q,
        });
        let result = check_safety(&model, 0, &BmcOptions::default());
        assert!(result.is_proven(), "got {result:?}");
    }

    #[test]
    fn cover_finds_witness() {
        let (mut model, bits) = saturating_counter();
        let target = {
            let aig = &mut model.aig;
            aig.and_many(&bits)
        };
        model.covers.push(CoverProperty {
            name: "saturates".into(),
            lit: target,
        });
        match check_cover(&model, 0, &BmcOptions::default()) {
            CoverResult::Covered(trace) => assert_eq!(trace.len(), 8),
            other => panic!("expected cover witness, got {other:?}"),
        }
    }

    #[test]
    fn cover_unreachable_is_reported() {
        let (mut model, bits) = saturating_counter();
        // Value 0 with the "was saturated" flag set is unreachable because
        // the counter saturates; simpler: cover literal FALSE is unreachable.
        let _ = bits;
        model.covers.push(CoverProperty {
            name: "never".into(),
            lit: Lit::FALSE,
        });
        assert_eq!(
            check_cover(&model, 0, &BmcOptions::default()),
            CoverResult::Unreachable
        );
    }

    #[test]
    fn unknown_when_bounds_too_small() {
        let (mut model, bits) = saturating_counter();
        let b = {
            let aig = &mut model.aig;
            aig.and_many(&bits)
        };
        model.bads.push(BadProperty {
            name: "saturated".into(),
            lit: b,
        });
        // The counter needs 7 steps to saturate; a bound of 3 must not find
        // it, and induction cannot prove it (it is actually reachable).
        let result = check_safety(
            &model,
            0,
            &BmcOptions {
                max_depth: 3,
                max_induction: 3,
            },
        );
        assert_eq!(result, SafetyResult::Unknown { explored_depth: 3 });
    }

    /// A 3-racer portfolio with a small quantum so races of the test
    /// fixtures genuinely interleave turns.
    fn small_race() -> RaceOptions {
        RaceOptions {
            configs: vec![
                SolverConfig::default(),
                SolverConfig {
                    restart_base: 30,
                    reduce_base: 1000,
                    ..SolverConfig::default()
                },
                SolverConfig::baseline(),
            ],
            quantum: 8,
            glue_bound: 4,
            lemmas: Vec::new(),
            seeds: HashMap::new(),
            pools: None,
        }
    }

    #[test]
    fn race_agrees_with_single_solver_on_every_verdict_kind() {
        // Violated: counter value 5 reached at frame 5 (the model has no
        // inputs, so even the trace is unique).
        let (mut model, bits) = saturating_counter();
        let b = {
            let aig = &mut model.aig;
            let not1 = bits[1].invert();
            let t = aig.and(bits[0], not1);
            aig.and(t, bits[2])
        };
        model.bads.push(BadProperty {
            name: "reaches_five".into(),
            lit: b,
        });
        let options = BmcOptions::default();
        let expected = check_safety(&model, 0, &options);
        let (raced, _, _) =
            race_safety_budgeted(&model, 0, &options, &small_race(), &Interrupt::none());
        assert_eq!(raced, expected);
        assert!(raced.is_violated());

        // Proven: the saturation invariant, same induction depth.
        let (mut model, bits) = saturating_counter();
        let (was, all_ones) = {
            let aig = &mut model.aig;
            let all_ones = aig.and_many(&bits);
            let was = aig.add_latch("was_saturated", false);
            let next = aig.or(was, all_ones);
            aig.set_latch_next(was, next);
            (was, all_ones)
        };
        let bad = {
            let aig = &mut model.aig;
            aig.and(was, all_ones.invert())
        };
        model.bads.push(BadProperty {
            name: "saturation_sticks".into(),
            lit: bad,
        });
        let expected = check_safety(&model, 0, &options);
        let (raced, _, _) =
            race_safety_budgeted(&model, 0, &options, &small_race(), &Interrupt::none());
        assert_eq!(raced, expected);
        assert!(raced.is_proven());

        // Unknown: bound too small for the reachable bad state.
        let (mut model, bits) = saturating_counter();
        let b = {
            let aig = &mut model.aig;
            aig.and_many(&bits)
        };
        model.bads.push(BadProperty {
            name: "saturated".into(),
            lit: b,
        });
        let tiny = BmcOptions {
            max_depth: 3,
            max_induction: 3,
        };
        let (raced, _, _) =
            race_safety_budgeted(&model, 0, &tiny, &small_race(), &Interrupt::none());
        assert_eq!(raced, SafetyResult::Unknown { explored_depth: 3 });
    }

    #[test]
    fn race_verdict_is_independent_of_quantum_and_config_order() {
        let (mut model, bits) = saturating_counter();
        let b = {
            let aig = &mut model.aig;
            let t = aig.and(bits[0], bits[1]);
            aig.and(t, bits[2].invert())
        };
        model.bads.push(BadProperty {
            name: "reaches_three".into(),
            lit: b,
        });
        let options = BmcOptions::default();
        let baseline = check_safety(&model, 0, &options);
        for quantum in [1, 8, 1 << 20] {
            let mut race = small_race();
            race.quantum = quantum;
            let (forward, _, _) =
                race_safety_budgeted(&model, 0, &options, &race, &Interrupt::none());
            race.configs.reverse();
            let (reversed, _, _) =
                race_safety_budgeted(&model, 0, &options, &race, &Interrupt::none());
            assert_eq!(forward, baseline, "quantum {quantum}");
            assert_eq!(reversed, baseline, "quantum {quantum} reversed");
        }
    }

    #[test]
    fn race_respects_parent_deadline_and_cancellation() {
        let (mut model, bits) = saturating_counter();
        let b = {
            let aig = &mut model.aig;
            aig.and_many(&bits)
        };
        model.bads.push(BadProperty {
            name: "saturated".into(),
            lit: b,
        });
        let options = BmcOptions::default();
        // An already-expired deadline stops the race before any turn.
        let expired = Interrupt::new(Some(std::time::Instant::now()), None, None);
        let (result, _, traffic) =
            race_safety_budgeted(&model, 0, &options, &small_race(), &expired);
        assert_eq!(result, SafetyResult::Interrupted);
        assert_eq!(traffic.exported, 0, "no turn ran, nothing may be shared");
        // A raised run-wide cancellation flag does the same.
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let cancelled = Interrupt::new(None, None, Some(flag));
        let (result, _, _) = race_safety_budgeted(&model, 0, &options, &small_race(), &cancelled);
        assert_eq!(result, SafetyResult::Interrupted);
    }

    #[test]
    fn race_with_pdr_lemmas_keeps_verdicts() {
        // Lemma: "not all ones" holds through frame 6 (value 7 is first
        // reached at frame 7).  The violation at depth 7 must survive the
        // lemma, and a provable property must stay proven.
        let (mut model, bits) = saturating_counter();
        let b = {
            let aig = &mut model.aig;
            aig.and_many(&bits)
        };
        model.bads.push(BadProperty {
            name: "saturated".into(),
            lit: b,
        });
        let lemma = FrameLemma {
            clause: bits.iter().map(|l| l.invert()).collect(),
            through: 6,
        };
        let mut race = small_race();
        race.lemmas = vec![lemma.clone()];
        let options = BmcOptions {
            max_depth: 10,
            max_induction: 0,
        };
        let (result, _, _) = race_safety_budgeted(&model, 0, &options, &race, &Interrupt::none());
        match result {
            SafetyResult::Violated(trace) => assert_eq!(trace.len(), 8),
            other => panic!("expected the depth-7 violation, got {other:?}"),
        }

        // Proven case with the same lemma installed.
        let (mut model, bits) = saturating_counter();
        let (was, all_ones) = {
            let aig = &mut model.aig;
            let all_ones = aig.and_many(&bits);
            let was = aig.add_latch("was_saturated", false);
            let next = aig.or(was, all_ones);
            aig.set_latch_next(was, next);
            (was, all_ones)
        };
        let bad = {
            let aig = &mut model.aig;
            aig.and(was, all_ones.invert())
        };
        model.bads.push(BadProperty {
            name: "saturation_sticks".into(),
            lit: bad,
        });
        let expected = check_safety(&model, 0, &BmcOptions::default());
        race.lemmas = vec![lemma];
        let (raced, _, _) =
            race_safety_budgeted(&model, 0, &BmcOptions::default(), &race, &Interrupt::none());
        assert_eq!(raced, expected);
    }

    #[test]
    fn race_with_seed_hints_keeps_verdicts() {
        let (mut model, bits) = saturating_counter();
        let b = {
            let aig = &mut model.aig;
            let not1 = bits[1].invert();
            let t = aig.and(bits[0], not1);
            aig.and(t, bits[2])
        };
        model.bads.push(BadProperty {
            name: "reaches_five".into(),
            lit: b,
        });
        let options = BmcOptions::default();
        let expected = check_safety(&model, 0, &options);
        let mut race = small_race();
        // Deliberately misleading hints: phases and boosts must steer
        // search order only, never the verdict.
        race.seeds = bits
            .iter()
            .enumerate()
            .map(|(i, l)| {
                (
                    l.node(),
                    SeedHint {
                        phase: i % 2 == 0,
                        boost: 2.0,
                    },
                )
            })
            .collect();
        let (raced, _, _) = race_safety_budgeted(&model, 0, &options, &race, &Interrupt::none());
        assert_eq!(raced, expected);
    }

    #[test]
    fn warm_pools_preserve_verdicts_across_repeated_races() {
        // Two races on the same model share one pool pair (the
        // fingerprint-keyed registry case): the second race imports the
        // first race's clauses and must reach the identical verdict.
        let (mut model, bits) = saturating_counter();
        let b = {
            let aig = &mut model.aig;
            let not1 = bits[1].invert();
            let t = aig.and(bits[0], not1);
            aig.and(t, bits[2])
        };
        model.bads.push(BadProperty {
            name: "reaches_five".into(),
            lit: b,
        });
        let options = BmcOptions::default();
        let expected = check_safety(&model, 0, &options);
        let mut race = small_race();
        race.pools = Some((
            Arc::new(ClausePool::new(race.glue_bound)),
            Arc::new(ClausePool::new(race.glue_bound)),
        ));
        let (first, _, _) = race_safety_budgeted(&model, 0, &options, &race, &Interrupt::none());
        let (second, _, _) = race_safety_budgeted(&model, 0, &options, &race, &Interrupt::none());
        assert_eq!(first, expected);
        assert_eq!(second, expected);
    }

    #[test]
    fn empty_config_race_falls_back_to_single_solver() {
        let (mut model, _) = saturating_counter();
        model.bads.push(BadProperty {
            name: "never".into(),
            lit: Lit::FALSE,
        });
        let race = RaceOptions {
            configs: Vec::new(),
            quantum: 8,
            glue_bound: 4,
            lemmas: Vec::new(),
            seeds: HashMap::new(),
            pools: None,
        };
        let (result, _, traffic) =
            race_safety_budgeted(&model, 0, &BmcOptions::default(), &race, &Interrupt::none());
        assert!(result.is_proven());
        assert_eq!(traffic, SharingTraffic::default());
    }

    #[test]
    fn trace_contains_latch_values() {
        let (mut model, bits) = saturating_counter();
        let b = {
            let aig = &mut model.aig;
            let t = aig.and(bits[0], bits[1]);
            aig.and(t, bits[2].invert())
        };
        model.bads.push(BadProperty {
            name: "reaches_three".into(),
            lit: b,
        });
        let result = check_safety(&model, 0, &BmcOptions::default());
        let trace = result.trace().expect("counterexample expected");
        assert_eq!(trace.len(), 4);
        // Frame 3: c0=1, c1=1, c2=0.
        assert_eq!(trace.value(3, "c0"), Some(true));
        assert_eq!(trace.value(3, "c1"), Some(true));
        assert_eq!(trace.value(3, "c2"), Some(false));
        // Frame 0 is the reset state.
        assert_eq!(trace.value(0, "c0"), Some(false));
    }
}
