//! Bit-parallel two-state simulation over the AIG.
//!
//! One `u64` word per AIG node carries 64 *independent* stimulus lanes: an
//! AND gate is a single `&`, an inverted literal a single XOR with the
//! all-ones mask.  Nodes are created in topological order (an `And` only
//! references earlier nodes), so a single index-order sweep settles the
//! combinational logic — no event queue, no levelization pass.
//!
//! The evaluator runs straight over whatever [`Model`] it is handed; in the
//! checker that is the *optimized cone-of-influence slice* of one property,
//! so a fuzz cycle costs `slice_gates` word-ANDs for 64 concrete stimulus
//! vectors at once.  [`crate::fuzz`] drives it as the pre-cascade bug
//! hunter and [`crate::sim::Simulator`] rides on lane 0 for the
//! cycle-accurate single-stimulus API.

use crate::aig::{Lit, Node};
use crate::model::Model;

/// A word of 64 parallel simulation lanes, one bit per lane.
pub type LaneWord = u64;

/// All 64 lanes set.
pub const ALL_LANES: LaneWord = u64::MAX;

/// A bit-parallel two-state simulator: 64 stimulus lanes per step.
///
/// The lifecycle of one cycle is `step_inputs` (drive the primary inputs
/// and settle the combinational logic), any number of [`ParallelSim::word`]
/// reads (monitors, constraints), then [`ParallelSim::advance`] to clock
/// the latches.  [`ParallelSim::reset`] returns every latch to its reset
/// value without rebuilding the node table.
#[derive(Debug, Clone)]
pub struct ParallelSim {
    model: Model,
    /// Current value of every AIG node, one lane per bit.
    words: Vec<LaneWord>,
}

impl ParallelSim {
    /// Creates a simulator for `model` with every latch at its reset value
    /// in all lanes.
    pub fn new(model: &Model) -> Self {
        let mut sim = ParallelSim {
            words: vec![0; model.aig.num_nodes()],
            model: model.clone(),
        };
        sim.reset();
        sim
    }

    /// The model being simulated.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Number of primary inputs (the length `step_inputs` expects).
    pub fn num_inputs(&self) -> usize {
        self.model.aig.num_inputs()
    }

    /// Returns every latch to its reset value in all lanes and clears the
    /// combinational nodes.
    pub fn reset(&mut self) {
        self.words.fill(0);
        for latch in self.model.aig.latches() {
            self.words[latch.node] = if latch.init { ALL_LANES } else { 0 };
        }
    }

    /// The current word of a literal: bit `l` is the value in lane `l`.
    pub fn word(&self, lit: Lit) -> LaneWord {
        let mask = if lit.is_inverted() { ALL_LANES } else { 0 };
        self.words[lit.node()] ^ mask
    }

    /// Drives the primary inputs (one word per input, in input-index order;
    /// missing trailing entries read as all-zero) and settles the
    /// combinational logic.  Latch state is untouched — read monitors with
    /// [`ParallelSim::word`], then clock with [`ParallelSim::advance`].
    pub fn step_inputs(&mut self, inputs: &[LaneWord]) {
        for (i, &node) in self.model.aig.inputs().iter().enumerate() {
            self.words[node] = inputs.get(i).copied().unwrap_or(0);
        }
        for idx in 0..self.words.len() {
            if let Node::And(a, b) = self.model.aig.node(idx) {
                let wa = self.words[a.node()] ^ if a.is_inverted() { ALL_LANES } else { 0 };
                let wb = self.words[b.node()] ^ if b.is_inverted() { ALL_LANES } else { 0 };
                self.words[idx] = wa & wb;
            }
        }
    }

    /// Clocks every latch: the settled next-state functions become the new
    /// latch values, in all lanes at once.
    pub fn advance(&mut self) {
        // Latch next-state literals reference the *settled* node table; the
        // two-pass copy keeps latch-to-latch feedthrough order-independent.
        let next: Vec<(usize, LaneWord)> = self
            .model
            .aig
            .latches()
            .iter()
            .map(|l| (l.node, self.word(l.next)))
            .collect();
        for (node, word) in next {
            self.words[node] = word;
        }
    }

    /// The conjunction of every invariant constraint, per lane: bit `l` is
    /// set iff all constraints hold in lane `l` this cycle.
    pub fn constraints_word(&self) -> LaneWord {
        self.model
            .constraints
            .iter()
            .fold(ALL_LANES, |acc, &c| acc & self.word(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;
    use crate::model::BadProperty;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A 2-bit counter that wraps; bad when it reaches 3 with enable high.
    fn counter_model() -> Model {
        let mut aig = Aig::new();
        let en = aig.add_input("en");
        let c0 = aig.add_latch("cnt[0]", false);
        let c1 = aig.add_latch("cnt[1]", false);
        // next0 = c0 ^ en; next1 = c1 ^ (c0 & en)
        let n0 = aig.xor(c0, en);
        let carry = aig.and(c0, en);
        let n1 = aig.xor(c1, carry);
        aig.set_latch_next(c0, n0);
        aig.set_latch_next(c1, n1);
        let both = aig.and(c0, c1);
        let bad = aig.and(both, en);
        let mut model = Model::new(aig);
        model.bads.push(BadProperty {
            name: "cnt_saturated_while_enabled".into(),
            lit: bad,
        });
        model
    }

    #[test]
    fn lanes_evolve_independently() {
        let model = counter_model();
        let mut sim = ParallelSim::new(&model);
        // Lane 0 never enables, lane 1 always, lane 2 only for two cycles.
        let lane1 = 1u64 << 1;
        let lane2 = 1u64 << 2;
        let bad = model.bads[0].lit;
        let mut fired = 0u64;
        for cycle in 0..8 {
            let word = lane1 | if cycle < 2 { lane2 } else { 0 };
            sim.step_inputs(&[word]);
            fired |= sim.word(bad);
            sim.advance();
        }
        assert_eq!(fired & 1, 0, "lane 0 held enable low, must never fire");
        assert_ne!(fired & lane1, 0, "lane 1 counts every cycle and must hit 3");
        assert_eq!(
            fired & lane2,
            0,
            "lane 2 stops counting at 2; the bad needs the count to reach 3"
        );
    }

    #[test]
    fn word_evaluation_agrees_with_bit_serial_reference() {
        // Drive random stimulus through all 64 lanes and re-simulate each
        // lane bit-serially with the node-table reference below.
        let model = counter_model();
        let mut sim = ParallelSim::new(&model);
        let mut rng = StdRng::seed_from_u64(0xD1FF);
        let cycles = 16;
        let stimulus: Vec<u64> = (0..cycles).map(|_| rng.next_u64()).collect();
        let mut fired_words = Vec::new();
        for &word in &stimulus {
            sim.step_inputs(&[word]);
            fired_words.push(sim.word(model.bads[0].lit));
            sim.advance();
        }
        for lane in 0..64 {
            let mut reference = crate::sim::Simulator::new(&model);
            for (cycle, &word) in stimulus.iter().enumerate() {
                let bit = (word >> lane) & 1 == 1;
                let violations = reference.step(&[bit]);
                let fired = (fired_words[cycle] >> lane) & 1 == 1;
                assert_eq!(
                    !violations.is_empty(),
                    fired,
                    "lane {lane} cycle {cycle} disagrees with the reference"
                );
            }
        }
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let model = counter_model();
        let mut sim = ParallelSim::new(&model);
        sim.step_inputs(&[ALL_LANES]);
        sim.advance();
        assert_ne!(sim.word(Lit::new(model.aig.latches()[0].node, false)), 0);
        sim.reset();
        assert_eq!(sim.word(Lit::new(model.aig.latches()[0].node, false)), 0);
        assert_eq!(sim.word(Lit::new(model.aig.latches()[1].node, false)), 0);
    }

    #[test]
    fn constraints_word_conjoins_all_constraints() {
        let mut model = counter_model();
        // Constrain "enable is low" — only lanes driving 0 survive.
        let en = Lit::new(model.aig.inputs()[0], false);
        model.constraints.push(en.invert());
        let mut sim = ParallelSim::new(&model);
        sim.step_inputs(&[0xF0F0]);
        assert_eq!(sim.constraints_word(), !0xF0F0);
    }
}
