//! `autosva-formal` — the formal-verification substrate of the AutoSVA
//! reproduction.
//!
//! The original AutoSVA hands its generated testbenches to commercial or
//! external tools (JasperGold, SymbiYosys).  This crate provides an
//! equivalent, self-contained backend so the paper's evaluation can be
//! regenerated without proprietary software:
//!
//! * [`elab`] — elaboration of the parsed SystemVerilog subset into a
//!   sequential And-Inverter Graph ([`aig`]), with parameters, small
//!   unpacked arrays, `always_ff`/`always_comb`, and module hierarchy;
//! * [`compile`] — lowering of an AutoSVA [`autosva::FormalTestbench`]
//!   (auxiliary signals + SVA properties) onto the elaborated design;
//! * [`sat`] — a from-scratch CDCL SAT solver (watched literals, first-UIP
//!   learning, VSIDS-style decisions, incremental assumptions);
//! * [`unroll`], [`bmc`] — Tseitin time-frame expansion, bounded model
//!   checking and k-induction with loop-free-path strengthening;
//! * [`model`] — the checked-model representation plus the
//!   liveness-to-safety transformation for response properties under
//!   fairness;
//! * [`pdr`] — an IC3/PDR property-directed-reachability engine (frame
//!   trapezoid, proof-obligation queue, unsat-core/ternary-sim cube
//!   generalization) producing certified inductive invariants;
//! * [`explicit`] — an exact explicit-state engine (bit-parallel reachability
//!   and fairness-aware SCC analysis) kept as the last-resort fallback for
//!   small designs and liveness under fairness;
//! * [`coi`] — per-property cone-of-influence slicing with stable content
//!   fingerprints, so every property is checked on exactly the circuit it
//!   observes;
//! * [`portfolio`] — the parallel orchestration layer: a self-scheduling
//!   worker pool over `std::thread`, per-property budgets, a shared
//!   cancellation flag, and a fingerprint-keyed proof cache whose hits are
//!   re-certified (invariants) or replayed (traces);
//! * [`psim`], [`fuzz`] — a bit-parallel two-state simulator (64 stimulus
//!   lanes per machine word over the sliced AIG) and the stimulus fuzzer
//!   that runs it *before* any SAT engine: seeded-random, reset-directed
//!   and constraint-respecting lanes hunt for shallow safety bugs, and
//!   every hit is replay-confirmed through the monitor so the cascade only
//!   ever sees survivors;
//! * [`vcd`] — a standards-conformant VCD waveform writer (plus structural
//!   validator) that dumps every counterexample and witness trace with
//!   hierarchical signal names recovered from the elaborated design;
//! * [`telemetry`] — the observability layer: structured spans and a
//!   counter/gauge metrics registry recorded across every pipeline stage
//!   (per-worker lock-free-ish buffers, merged at run end), with a
//!   fixed-key-order JSON run report, a Chrome trace-event sink (one
//!   track per pool worker) and a human summary in the timed rendering —
//!   all behind `CheckOptions::telemetry`, zero-cost when off;
//! * [`interrupt`] — the fault-containment layer's cooperative
//!   preemption handle: a per-property wall-clock deadline, step budget
//!   and cancellation flag polled inside every engine loop, so
//!   `property_timeout` interrupts a solve in flight instead of waiting
//!   for the cascade stage to finish (an interrupted property degrades
//!   to `Unknown`; a panicking one to `Error` — the run always renders
//!   a complete report);
//! * [`checker`] — the portfolio driver tying everything together (each
//!   property runs the fuzz → BMC → k-induction → PDR → explicit cascade
//!   on its own slice, concurrently) and producing deterministic
//!   per-property reports with counterexample [`trace`]s.
//!
//! # Quick start
//!
//! ```
//! use autosva::{generate_ft, AutosvaOptions};
//! use autosva_formal::checker::{verify, CheckOptions};
//!
//! let rtl = "\
//! /*AUTOSVA
//! t: req -in> res
//! */
//! module handshake (
//!   input  logic clk_i,
//!   input  logic rst_ni,
//!   input  logic req_val,
//!   output logic req_ack,
//!   output logic res_val
//! );
//!   assign req_ack = 1'b1;
//!   assign res_val = req_val;
//! endmodule";
//! let testbench = generate_ft(rtl, &AutosvaOptions::default())?;
//! let report = verify(rtl, &testbench, &CheckOptions::default())?;
//! assert_eq!(report.violations(), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aig;
pub mod bmc;
pub mod checker;
pub mod coi;
pub mod compile;
pub mod elab;
pub mod explicit;
#[cfg(any(test, feature = "fault-injection"))]
pub mod faults;
pub mod fuzz;
pub mod interrupt;
pub mod lint;
pub mod model;
pub mod opt;
pub mod pdr;
pub mod portfolio;
pub mod psim;
#[cfg(test)]
mod robustness_tests;
pub mod sat;
pub mod sim;
pub mod telemetry;
pub mod trace;
pub mod unroll;
pub mod vcd;
pub mod words;
