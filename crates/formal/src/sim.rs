//! Two-state RTL simulation over the compiled model.
//!
//! The paper notes that AutoSVA property files can be reused in a simulation
//! testbench so that the *assumptions* of the formal run are checked as
//! assertions during system-level tests.  This module provides the
//! equivalent facility for the bundled flow: a cycle-accurate two-state
//! simulator over the compiled [`Model`] that drives directed or random
//! stimulus and evaluates every safety property and invariant constraint on
//! the fly.  (Liveness and X-propagation checks are outside the scope of a
//! finite two-state simulation, exactly as in the paper's VCS reuse.)
//!
//! Since the fuzzer landed, this simulator is a single-lane view over the
//! bit-parallel word evaluator ([`crate::psim`]): the hot path takes inputs
//! *indexed by input position* ([`Simulator::step`]) so a stimulus loop
//! never allocates, and [`Simulator::step_named`] remains as the thin
//! name-resolving wrapper for directed tests written against signal names.

use crate::aig::Lit;
use crate::model::Model;
use crate::psim::ParallelSim;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A monitor violation observed during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimViolation {
    /// Name of the violated property (or constraint).
    pub property: String,
    /// Cycle at which the violation was observed.
    pub cycle: usize,
}

/// A two-state simulator for a [`Model`].
#[derive(Debug)]
pub struct Simulator {
    psim: ParallelSim,
    cycle: usize,
    violations: Vec<SimViolation>,
}

impl Simulator {
    /// Creates a simulator with every latch at its reset value.
    pub fn new(model: &Model) -> Self {
        Simulator {
            psim: ParallelSim::new(model),
            cycle: 0,
            violations: Vec::new(),
        }
    }

    /// The current cycle number (number of [`Simulator::step`] calls so far).
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[SimViolation] {
        &self.violations
    }

    /// Reads the current value of a literal (lane 0 of the word evaluator).
    pub fn value(&self, lit: Lit) -> bool {
        self.psim.word(lit) & 1 == 1
    }

    /// Applies one clock cycle with the given input values, *indexed by
    /// input position* (`inputs[i]` drives `aig.inputs()[i]`; missing
    /// trailing entries default to 0), evaluating every monitor.
    ///
    /// Returns the violations newly observed in this cycle.
    pub fn step(&mut self, inputs: &[bool]) -> Vec<SimViolation> {
        // Lane 0 carries the stimulus; the other 63 lanes ride along as
        // zeroes (the word evaluator costs the same either way).
        let words: Vec<u64> = inputs.iter().map(|&b| u64::from(b)).collect();
        self.psim.step_inputs(&words);

        // Evaluate monitors on the settled cycle.
        let mut new_violations = Vec::new();
        let model = self.psim.model();
        for bad in &model.bads {
            if self.psim.word(bad.lit) & 1 == 1 {
                new_violations.push(SimViolation {
                    property: bad.name.clone(),
                    cycle: self.cycle,
                });
            }
        }
        for (i, &c) in model.constraints.iter().enumerate() {
            if self.psim.word(c) & 1 == 0 {
                new_violations.push(SimViolation {
                    property: format!("constraint_{i}"),
                    cycle: self.cycle,
                });
            }
        }
        self.violations.extend(new_violations.clone());

        // Advance state.
        self.psim.advance();
        self.cycle += 1;
        new_violations
    }

    /// Like [`Simulator::step`], with inputs given by name (inputs not named
    /// in the map default to 0).  Thin wrapper for directed tests; the
    /// per-cycle name resolution makes it unsuitable for stimulus loops.
    pub fn step_named(&mut self, inputs: &HashMap<String, bool>) -> Vec<SimViolation> {
        let aig = &self.psim.model().aig;
        let indexed: Vec<bool> = (0..aig.num_inputs())
            .map(|i| *inputs.get(aig.input_name(i)).unwrap_or(&false))
            .collect();
        self.step(&indexed)
    }

    /// Runs `cycles` cycles of uniformly random stimulus from a fixed seed,
    /// returning every violation observed.  This mirrors reusing the
    /// generated property file in a constrained-random simulation.
    pub fn run_random(&mut self, cycles: usize, seed: u64) -> Vec<SimViolation> {
        let mut rng = StdRng::seed_from_u64(seed);
        let num_inputs = self.psim.num_inputs();
        let mut all = Vec::new();
        let mut inputs = vec![false; num_inputs];
        for _ in 0..cycles {
            for slot in inputs.iter_mut() {
                *slot = rng.gen_bool(0.5);
            }
            all.extend(self.step(&inputs));
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::elab::{elaborate, ElabOptions};
    use autosva::{generate_ft, AutosvaOptions};

    const GOOD: &str = r#"
/*AUTOSVA
t: req -in> res
req_val = req_val
req_ack = req_ack
res_val = res_val
*/
module echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  output logic res_val
);
  logic busy_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) busy_q <= 1'b0;
    else if (req_val && req_ack) busy_q <= 1'b1;
    else busy_q <= 1'b0;
  end
  assign req_ack = !busy_q;
  assign res_val = busy_q;
endmodule
"#;

    fn compiled(src: &str) -> Model {
        let ft = generate_ft(src, &AutosvaOptions::default()).unwrap();
        let file = svparse::parse(src).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        compile(&design, &ft).unwrap().model
    }

    #[test]
    fn healthy_design_survives_random_simulation() {
        let model = compiled(GOOD);
        let mut sim = Simulator::new(&model);
        let violations = sim.run_random(500, 0xA5A5);
        let real: Vec<_> = violations
            .iter()
            .filter(|v| !v.property.starts_with("constraint"))
            .collect();
        assert!(real.is_empty(), "unexpected violations: {real:?}");
        assert_eq!(sim.cycle(), 500);
    }

    #[test]
    fn directed_stimulus_reads_back_values() {
        let model = compiled(GOOD);
        let mut sim = Simulator::new(&model);
        let mut inputs = HashMap::new();
        inputs.insert("req_val".to_string(), true);
        sim.step_named(&inputs);
        // After an accepted request the design is busy and responds.
        sim.step_named(&HashMap::new());
        assert_eq!(sim.cycle(), 2);
    }

    #[test]
    fn named_and_indexed_steps_agree() {
        let model = compiled(GOOD);
        let req_index = (0..model.aig.num_inputs())
            .position(|i| model.aig.input_name(i) == "req_val")
            .expect("req_val is a primary input");
        let mut named = Simulator::new(&model);
        let mut indexed = Simulator::new(&model);
        let mut map = HashMap::new();
        map.insert("req_val".to_string(), true);
        let mut vec = vec![false; model.aig.num_inputs()];
        vec[req_index] = true;
        for _ in 0..8 {
            assert_eq!(named.step_named(&map), indexed.step(&vec));
        }
    }

    #[test]
    fn buggy_design_is_caught_by_the_reused_safety_properties() {
        // A design that produces a response without ever receiving a request
        // violates the had-a-request safety monitor in simulation too.
        let bad_src = r#"
/*AUTOSVA
t: req -in> res
req_val = req_val
req_ack = req_ack
res_val = res_val
*/
module echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  output logic res_val
);
  assign req_ack = 1'b1;
  assign res_val = !req_val;
endmodule
"#;
        let model = compiled(bad_src);
        let mut sim = Simulator::new(&model);
        let violations = sim.run_random(200, 7);
        assert!(violations
            .iter()
            .any(|v| v.property.contains("had_a_request")));
    }
}
