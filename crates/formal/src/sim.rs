//! Two-state RTL simulation over the compiled model.
//!
//! The paper notes that AutoSVA property files can be reused in a simulation
//! testbench so that the *assumptions* of the formal run are checked as
//! assertions during system-level tests.  This module provides the
//! equivalent facility for the bundled flow: a cycle-accurate two-state
//! simulator over the compiled [`Model`] that drives directed or random
//! stimulus and evaluates every safety property and invariant constraint on
//! the fly.  (Liveness and X-propagation checks are outside the scope of a
//! finite two-state simulation, exactly as in the paper's VCS reuse.)

use crate::aig::{Aig, Lit, Node};
use crate::model::Model;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A monitor violation observed during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimViolation {
    /// Name of the violated property (or constraint).
    pub property: String,
    /// Cycle at which the violation was observed.
    pub cycle: usize,
}

/// A two-state simulator for a [`Model`].
#[derive(Debug)]
pub struct Simulator {
    aig: Aig,
    model: Model,
    /// Current value of every AIG node.
    values: Vec<bool>,
    cycle: usize,
    violations: Vec<SimViolation>,
}

impl Simulator {
    /// Creates a simulator with every latch at its reset value.
    pub fn new(model: &Model) -> Self {
        let aig = model.aig.clone();
        let mut sim = Simulator {
            values: vec![false; aig.num_nodes()],
            aig,
            model: model.clone(),
            cycle: 0,
            violations: Vec::new(),
        };
        for latch in sim.aig.latches() {
            sim.values[latch.node] = latch.init;
        }
        sim
    }

    /// The current cycle number (number of [`Simulator::step`] calls so far).
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[SimViolation] {
        &self.violations
    }

    /// Reads the current value of a literal.
    pub fn value(&self, lit: Lit) -> bool {
        self.values[lit.node()] ^ lit.is_inverted()
    }

    fn eval_combinational(&mut self) {
        for idx in 0..self.aig.num_nodes() {
            if let Node::And(a, b) = self.aig.node(idx) {
                let va = self.values[a.node()] ^ a.is_inverted();
                let vb = self.values[b.node()] ^ b.is_inverted();
                self.values[idx] = va && vb;
            }
        }
    }

    /// Applies one clock cycle with the given input values (inputs not named
    /// in the map default to 0), evaluating every monitor.
    ///
    /// Returns the violations newly observed in this cycle.
    pub fn step(&mut self, inputs: &HashMap<String, bool>) -> Vec<SimViolation> {
        // Drive inputs.
        for (i, &node) in self.aig.inputs().to_vec().iter().enumerate() {
            let name = self.aig.input_name(i).to_string();
            self.values[node] = *inputs.get(&name).unwrap_or(&false);
        }
        self.eval_combinational();

        // Evaluate monitors on the settled cycle.
        let mut new_violations = Vec::new();
        for bad in &self.model.bads {
            if self.values[bad.lit.node()] ^ bad.lit.is_inverted() {
                new_violations.push(SimViolation {
                    property: bad.name.clone(),
                    cycle: self.cycle,
                });
            }
        }
        for (i, &c) in self.model.constraints.iter().enumerate() {
            if !(self.values[c.node()] ^ c.is_inverted()) {
                new_violations.push(SimViolation {
                    property: format!("constraint_{i}"),
                    cycle: self.cycle,
                });
            }
        }
        self.violations.extend(new_violations.clone());

        // Advance state.
        let next: Vec<(usize, bool)> = self
            .aig
            .latches()
            .iter()
            .map(|l| (l.node, self.values[l.next.node()] ^ l.next.is_inverted()))
            .collect();
        for (node, value) in next {
            self.values[node] = value;
        }
        self.cycle += 1;
        new_violations
    }

    /// Runs `cycles` cycles of uniformly random stimulus from a fixed seed,
    /// returning every violation observed.  This mirrors reusing the
    /// generated property file in a constrained-random simulation.
    pub fn run_random(&mut self, cycles: usize, seed: u64) -> Vec<SimViolation> {
        let mut rng = StdRng::seed_from_u64(seed);
        let names: Vec<String> = (0..self.aig.num_inputs())
            .map(|i| self.aig.input_name(i).to_string())
            .collect();
        let mut all = Vec::new();
        for _ in 0..cycles {
            let inputs: HashMap<String, bool> = names
                .iter()
                .map(|n| (n.clone(), rng.gen_bool(0.5)))
                .collect();
            all.extend(self.step(&inputs));
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::elab::{elaborate, ElabOptions};
    use autosva::{generate_ft, AutosvaOptions};

    const GOOD: &str = r#"
/*AUTOSVA
t: req -in> res
req_val = req_val
req_ack = req_ack
res_val = res_val
*/
module echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  output logic res_val
);
  logic busy_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) busy_q <= 1'b0;
    else if (req_val && req_ack) busy_q <= 1'b1;
    else busy_q <= 1'b0;
  end
  assign req_ack = !busy_q;
  assign res_val = busy_q;
endmodule
"#;

    fn compiled(src: &str) -> Model {
        let ft = generate_ft(src, &AutosvaOptions::default()).unwrap();
        let file = svparse::parse(src).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        compile(&design, &ft).unwrap().model
    }

    #[test]
    fn healthy_design_survives_random_simulation() {
        let model = compiled(GOOD);
        let mut sim = Simulator::new(&model);
        let violations = sim.run_random(500, 0xA5A5);
        let real: Vec<_> = violations
            .iter()
            .filter(|v| !v.property.starts_with("constraint"))
            .collect();
        assert!(real.is_empty(), "unexpected violations: {real:?}");
        assert_eq!(sim.cycle(), 500);
    }

    #[test]
    fn directed_stimulus_reads_back_values() {
        let model = compiled(GOOD);
        let mut sim = Simulator::new(&model);
        let mut inputs = HashMap::new();
        inputs.insert("req_val".to_string(), true);
        sim.step(&inputs);
        // After an accepted request the design is busy and responds.
        sim.step(&HashMap::new());
        assert_eq!(sim.cycle(), 2);
    }

    #[test]
    fn buggy_design_is_caught_by_the_reused_safety_properties() {
        // A design that produces a response without ever receiving a request
        // violates the had-a-request safety monitor in simulation too.
        let bad_src = r#"
/*AUTOSVA
t: req -in> res
req_val = req_val
req_ack = req_ack
res_val = res_val
*/
module echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  output logic res_val
);
  assign req_ack = 1'b1;
  assign res_val = !req_val;
endmodule
"#;
        let model = compiled(bad_src);
        let mut sim = Simulator::new(&model);
        let violations = sim.run_random(200, 7);
        assert!(violations
            .iter()
            .any(|v| v.property.contains("had_a_request")));
    }
}
