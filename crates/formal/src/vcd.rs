//! Standards-conformant VCD (IEEE 1364 §18) waveform output for
//! counterexample and witness traces.
//!
//! Every violated or covered property can dump its [`Trace`] — whether the
//! fuzzer or a SAT engine produced it — as a waveform a designer opens in
//! GTKWave/Surfer next to the RTL.  Signal names come from the elaborated
//! design symbols (`inst.sig`, bit-indexed), not raw AIG literals: dotted
//! prefixes become nested `$scope module` levels and `name[i]` bit groups
//! are re-assembled into vector `$var` declarations, so the waveform reads
//! like the source hierarchy.
//!
//! The output is fully deterministic — fixed header strings, name-sorted
//! declarations, stable id-code allocation — so golden tests can pin a
//! waveform byte-for-byte.  A synthetic `clk` toggles at half the 10 ns
//! cycle period to give the flat two-state trace a familiar clocked look.
//!
//! [`validate`] is the structural re-parser used by the golden test and the
//! CI fuzz-smoke step: balanced scope nesting, unique id codes, value
//! changes only on declared ids, strictly increasing timestamps.

use crate::trace::Trace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Options for waveform output (part of [`crate::checker::CheckOptions`]).
#[derive(Debug, Clone, Default)]
pub struct VcdOptions {
    /// Directory to write one VCD per counterexample/witness trace into
    /// (created if missing).  `None` disables waveform output.  File names
    /// follow the stable scheme of [`file_name`].
    pub dir: Option<std::path::PathBuf>,
}

/// The stable on-disk name for the waveform of `property` checked on
/// `dut`: both names sanitized to `[A-Za-z0-9_]`, joined by `__`, with the
/// `.vcd` extension — independent of scheduling, engine, and platform.
pub fn file_name(dut: &str, property: &str) -> String {
    format!("{}__{}.vcd", sanitize(dut), sanitize(property))
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// One multi-bit (or scalar) variable reassembled from the trace's
/// bit-granular signals.
struct Var {
    /// Name inside its scope (no hierarchy prefix, no bit index).
    name: String,
    /// Bit values per cycle, LSB first; width = `bits.len()`.
    bits: Vec<Vec<bool>>,
    /// VCD identifier code.
    id: String,
}

impl Var {
    fn width(&self) -> usize {
        self.bits.len()
    }

    /// The VCD value-change record for this variable at `cycle`.
    fn change(&self, cycle: usize) -> String {
        if self.width() == 1 {
            let v = self.bits[0].get(cycle).copied().unwrap_or(false);
            format!("{}{}", u8::from(v), self.id)
        } else {
            // Binary vectors print MSB first.
            let word: String = self
                .bits
                .iter()
                .rev()
                .map(|bit| {
                    if bit.get(cycle).copied().unwrap_or(false) {
                        '1'
                    } else {
                        '0'
                    }
                })
                .collect();
            format!("b{} {}", word, self.id)
        }
    }

    fn changed(&self, cycle: usize) -> bool {
        cycle == 0
            || self
                .bits
                .iter()
                .any(|bit| bit.get(cycle) != bit.get(cycle - 1))
    }
}

/// A scope-tree node: nested module scopes plus the variables declared at
/// this level, both name-sorted for determinism.
#[derive(Default)]
struct Scope {
    children: BTreeMap<String, Scope>,
    vars: Vec<usize>,
}

/// The VCD identifier code for variable `index`: printable ASCII
/// (`!`..`~`), shortest-first, the conventional allocation order.
fn id_code(mut index: usize) -> String {
    let mut out = String::new();
    loop {
        out.push((b'!' + (index % 94) as u8) as char);
        index /= 94;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    out
}

/// Splits a trace signal name into (scope path, base name, bit index).
/// `"u_b.cnt_q[3]"` → (`["u_b"]`, `"cnt_q"`, `Some(3)`).
fn split_name(name: &str) -> (Vec<&str>, &str, Option<usize>) {
    let mut segments: Vec<&str> = name.split('.').collect();
    let last = segments.pop().unwrap_or(name);
    let (base, index) = match (last.rfind('['), last.ends_with(']')) {
        (Some(open), true) => match last[open + 1..last.len() - 1].parse::<usize>() {
            Ok(i) => (&last[..open], Some(i)),
            Err(_) => (last, None),
        },
        _ => (last, None),
    };
    (segments, base, index)
}

/// Renders `trace` as a complete VCD document.  `dut` names the top scope;
/// `property` is recorded in the header comment.
pub fn render(trace: &Trace, dut: &str, property: &str) -> String {
    // ------------------------------------------------------------------
    // Reassemble bit-granular trace signals into scoped vector variables.
    // ------------------------------------------------------------------
    // Key: (scope path joined, base name) → bit index → values.
    let mut grouped: BTreeMap<(String, String), BTreeMap<usize, Vec<bool>>> = BTreeMap::new();
    for sig in trace.signals() {
        let (path, base, index) = split_name(&sig.name);
        let key = (path.join("."), base.to_string());
        grouped
            .entry(key)
            .or_default()
            .insert(index.unwrap_or(0), sig.values.clone());
    }

    let mut vars: Vec<Var> = Vec::new();
    let mut root = Scope::default();
    // The synthetic clock gets the first id code and lives in the top scope.
    vars.push(Var {
        name: "clk".to_string(),
        bits: vec![Vec::new()],
        id: id_code(0),
    });
    root.vars.push(0);
    for ((path, base), bit_map) in &grouped {
        let width = bit_map.keys().max().unwrap_or(&0) + 1;
        let cycles = trace.len();
        // Bits the cone sliced away stay constant-zero.
        let mut bits = vec![vec![false; cycles]; width];
        for (&index, values) in bit_map {
            bits[index] = values.clone();
        }
        let var_index = vars.len();
        vars.push(Var {
            name: base.clone(),
            bits,
            id: id_code(var_index),
        });
        let mut scope = &mut root;
        if !path.is_empty() {
            for segment in path.split('.') {
                scope = scope.children.entry(segment.to_string()).or_default();
            }
        }
        scope.vars.push(var_index);
    }

    // ------------------------------------------------------------------
    // Header.
    // ------------------------------------------------------------------
    let mut out = String::new();
    out.push_str("$date\n    (fixed for reproducibility)\n$end\n");
    out.push_str("$version\n    autosva-formal VCD writer\n$end\n");
    let _ = writeln!(out, "$comment\n    property: {property}\n$end");
    out.push_str("$timescale 1ns $end\n");
    fn emit_scope(out: &mut String, name: &str, scope: &Scope, vars: &[Var], depth: usize) {
        let pad = "    ".repeat(depth);
        let _ = writeln!(out, "{pad}$scope module {name} $end");
        for &vi in &scope.vars {
            let v = &vars[vi];
            let suffix = if v.width() == 1 {
                String::new()
            } else {
                format!(" [{}:0]", v.width() - 1)
            };
            let _ = writeln!(
                out,
                "{pad}    $var wire {} {} {}{} $end",
                v.width(),
                v.id,
                v.name,
                suffix
            );
        }
        for (child_name, child) in &scope.children {
            emit_scope(out, child_name, child, vars, depth + 1);
        }
        let _ = writeln!(out, "{pad}$upscope $end");
    }
    emit_scope(&mut out, dut, &root, &vars, 0);
    out.push_str("$enddefinitions $end\n");

    // ------------------------------------------------------------------
    // Value changes: cycle c occupies [10c, 10c+10) ns, clk rises at 10c
    // and falls at 10c+5; the design signals change on the rising edge.
    // ------------------------------------------------------------------
    out.push_str("$dumpvars\n");
    let _ = writeln!(out, "1{}", vars[0].id);
    for v in vars.iter().skip(1) {
        let _ = writeln!(out, "{}", v.change(0));
    }
    out.push_str("$end\n");
    let _ = writeln!(out, "#5\n0{}", vars[0].id);
    for cycle in 1..trace.len() {
        let _ = writeln!(out, "#{}", 10 * cycle);
        let _ = writeln!(out, "1{}", vars[0].id);
        for v in vars.iter().skip(1) {
            if v.changed(cycle) {
                let _ = writeln!(out, "{}", v.change(cycle));
            }
        }
        let _ = writeln!(out, "#{}\n0{}", 10 * cycle + 5, vars[0].id);
    }
    let _ = writeln!(out, "#{}", 10 * trace.len());
    out
}

/// Structural summary of a parsed VCD document (see [`validate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdSummary {
    /// The declared timescale string (e.g. `"1ns"`).
    pub timescale: String,
    /// Number of `$scope` sections.
    pub scopes: usize,
    /// Number of `$var` declarations.
    pub vars: usize,
    /// Number of `#t` timestamps in the value-change section.
    pub timestamps: usize,
    /// Number of value-change records.
    pub changes: usize,
}

/// Structurally validates a VCD document: required header sections,
/// balanced scope nesting, unique id codes, value changes restricted to
/// declared ids, strictly increasing timestamps.
///
/// # Errors
///
/// Returns a description of the first structural violation found.
pub fn validate(text: &str) -> Result<VcdSummary, String> {
    let mut tokens = text.split_whitespace().peekable();
    let mut timescale: Option<String> = None;
    let mut depth = 0usize;
    let mut max_depth = 0usize;
    let mut scopes = 0usize;
    let mut ids: Vec<String> = Vec::new();
    // Header: sections until $enddefinitions.
    loop {
        let Some(tok) = tokens.next() else {
            return Err("missing $enddefinitions".to_string());
        };
        match tok {
            "$date" | "$version" | "$comment" => {
                for t in tokens.by_ref() {
                    if t == "$end" {
                        break;
                    }
                }
            }
            "$timescale" => {
                let mut words = Vec::new();
                for t in tokens.by_ref() {
                    if t == "$end" {
                        break;
                    }
                    words.push(t);
                }
                timescale = Some(words.join(" "));
            }
            "$scope" => {
                let kind = tokens.next().ok_or("truncated $scope")?;
                if kind != "module" {
                    return Err(format!("unsupported scope kind `{kind}`"));
                }
                let _name = tokens.next().ok_or("unnamed $scope")?;
                if tokens.next() != Some("$end") {
                    return Err("unterminated $scope".to_string());
                }
                depth += 1;
                max_depth = max_depth.max(depth);
                scopes += 1;
            }
            "$upscope" => {
                if tokens.next() != Some("$end") {
                    return Err("unterminated $upscope".to_string());
                }
                depth = depth
                    .checked_sub(1)
                    .ok_or("unbalanced $upscope before any $scope")?;
            }
            "$var" => {
                if depth == 0 {
                    return Err("$var outside any scope".to_string());
                }
                let _kind = tokens.next().ok_or("truncated $var")?;
                let width: usize = tokens
                    .next()
                    .ok_or("truncated $var")?
                    .parse()
                    .map_err(|_| "non-numeric $var width".to_string())?;
                if width == 0 {
                    return Err("zero-width $var".to_string());
                }
                let id = tokens.next().ok_or("truncated $var")?.to_string();
                if ids.contains(&id) {
                    return Err(format!("duplicate id code `{id}`"));
                }
                ids.push(id);
                for t in tokens.by_ref() {
                    if t == "$end" {
                        break;
                    }
                }
            }
            "$enddefinitions" => {
                if tokens.next() != Some("$end") {
                    return Err("unterminated $enddefinitions".to_string());
                }
                break;
            }
            other => return Err(format!("unexpected header token `{other}`")),
        }
    }
    if depth != 0 {
        return Err(format!("{depth} unclosed $scope section(s)"));
    }
    if timescale.is_none() {
        return Err("missing $timescale".to_string());
    }

    // Value-change section.
    let mut timestamps = 0usize;
    let mut changes = 0usize;
    let mut last_time: Option<u64> = None;
    while let Some(tok) = tokens.next() {
        if tok == "$dumpvars" || tok == "$end" {
            continue;
        }
        if let Some(time) = tok.strip_prefix('#') {
            let time: u64 = time
                .parse()
                .map_err(|_| format!("non-numeric timestamp `{tok}`"))?;
            if let Some(last) = last_time {
                if time <= last {
                    return Err(format!("timestamp #{time} not after #{last}"));
                }
            }
            last_time = Some(time);
            timestamps += 1;
        } else if let Some(rest) = tok.strip_prefix('b') {
            if rest.is_empty() || !rest.chars().all(|c| c == '0' || c == '1') {
                return Err(format!("malformed vector value `{tok}`"));
            }
            let id = tokens.next().ok_or("vector value without id code")?;
            if !ids.iter().any(|k| k == id) {
                return Err(format!("value change on undeclared id `{id}`"));
            }
            changes += 1;
        } else if let Some(id) = tok.strip_prefix(['0', '1']) {
            if id.is_empty() {
                return Err("scalar value without id code".to_string());
            }
            if !ids.iter().any(|k| k == id) {
                return Err(format!("value change on undeclared id `{id}`"));
            }
            changes += 1;
        } else {
            return Err(format!("unexpected token `{tok}` in value-change section"));
        }
    }
    Ok(VcdSummary {
        timescale: timescale.unwrap(),
        scopes,
        vars: ids.len(),
        timestamps,
        changes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(3);
        t.record(0, "req_val", true, true);
        t.record(1, "req_val", false, true);
        t.record(2, "req_val", true, true);
        t.record(1, "u_b.cnt_q[0]", true, false);
        t.record(2, "u_b.cnt_q[1]", true, false);
        t.record(0, "busy_q", false, false);
        t.record(2, "busy_q", true, false);
        t
    }

    #[test]
    fn rendered_vcd_validates_structurally() {
        let text = render(&sample_trace(), "echo", "as__t_fire");
        let summary = validate(&text).expect("structurally valid VCD");
        assert_eq!(summary.timescale, "1ns");
        // Top scope plus the `u_b` child scope.
        assert_eq!(summary.scopes, 2);
        // clk + req_val + busy_q + the reassembled cnt_q vector.
        assert_eq!(summary.vars, 4);
        // #5, then (#10, #15, #20, #25) for cycles 1..3, then the closing
        // timestamp #30.
        assert_eq!(summary.timestamps, 6);
    }

    #[test]
    fn bit_signals_reassemble_into_one_vector() {
        let text = render(&sample_trace(), "echo", "p");
        assert!(
            text.contains("$var wire 2 "),
            "cnt_q[0] and cnt_q[1] must form one 2-bit vector:\n{text}"
        );
        assert!(text.contains("cnt_q [1:0] $end"));
        // MSB-first vector dump: cycle 2 has cnt_q = 2'b10.
        assert!(text.contains("b10 "));
    }

    #[test]
    fn dotted_prefixes_become_nested_scopes() {
        let text = render(&sample_trace(), "echo", "p");
        assert!(text.contains("$scope module echo $end"));
        assert!(text.contains("$scope module u_b $end"));
        assert_eq!(text.matches("$upscope $end").count(), 2);
    }

    #[test]
    fn file_names_are_sanitized_and_stable() {
        assert_eq!(
            file_name("echo", "as__t_fire [1]"),
            "echo__as__t_fire__1_.vcd"
        );
        assert_eq!(file_name("echo", "p"), file_name("echo", "p"));
    }

    #[test]
    fn validator_rejects_structural_damage() {
        let good = render(&sample_trace(), "echo", "p");
        assert!(validate(&good).is_ok());
        let no_upscope = good.replacen("$upscope $end", "", 1);
        assert!(validate(&no_upscope).is_err());
        let dup_id = good.replacen("$var wire 1 \" ", "$var wire 1 ! ", 1);
        assert!(validate(&dup_id).is_err(), "duplicate id must be rejected");
        let bad_time = good.replace("#20", "#4");
        assert!(validate(&bad_time).is_err(), "regressing timestamps");
    }

    #[test]
    fn id_codes_walk_the_printable_range() {
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(1), "\"");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            assert!(seen.insert(id_code(i)), "id {i} collides");
        }
    }
}
