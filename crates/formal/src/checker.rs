//! Top-level verification driver.
//!
//! [`verify`] runs an AutoSVA-generated formal testbench against its DUT: it
//! elaborates the RTL, compiles the testbench into a [`crate::model::Model`], checks every
//! safety property with BMC + k-induction, every cover property with BMC, and
//! every liveness property through the liveness-to-safety reduction, then
//! collects everything into a [`VerificationReport`] that mirrors how the
//! paper reports results (proof rate, counterexamples, trace lengths,
//! runtimes).

use crate::aig::Lit;
use crate::bmc::{check_cover, check_safety, BmcOptions, CoverResult, SafetyResult};
use crate::compile::{compile, CompiledKind, CompiledTestbench};
use crate::elab::{elaborate, ElabDesign, ElabOptions, Result};
use crate::explicit::{ExplicitEngine, ExplicitOptions, ExplicitResult};
use crate::trace::Trace;
use autosva::sva::{Directive, PropertyClass};
use autosva::FormalTestbench;
use std::fmt;
use std::time::{Duration, Instant};

/// Options for a verification run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Elaboration options (top module, parameter overrides, clock/reset).
    pub elab: ElabOptions,
    /// Bounds used for safety and cover checking.
    pub bmc: BmcOptions,
    /// Bounds used for the liveness-to-safety checks (these models are
    /// larger, so the bounds may be set lower).
    pub liveness_bmc: BmcOptions,
    /// Limits of the exact explicit-state fallback engine used when BMC and
    /// k-induction are inconclusive.
    pub explicit: ExplicitOptions,
    /// Disable the explicit-state fallback entirely (used by the engine
    /// ablation benchmarks).
    pub disable_explicit: bool,
    /// Depth of the *quick* BMC pass run before the exact engine.  Short
    /// counterexamples are found here with minimal effort; anything deeper is
    /// left to the exact engine (or to the full-depth BMC when the exact
    /// engine is unavailable).
    pub quick_bmc_depth: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            elab: ElabOptions::default(),
            bmc: BmcOptions {
                max_depth: 25,
                max_induction: 12,
            },
            liveness_bmc: BmcOptions {
                max_depth: 12,
                max_induction: 0,
            },
            explicit: ExplicitOptions::default(),
            disable_explicit: false,
            quick_bmc_depth: 10,
        }
    }
}

/// The verification status of one property.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyStatus {
    /// Proven to hold on all executions.
    Proven,
    /// Violated; a counterexample trace is attached.
    Violated(Trace),
    /// Cover target reached; the witness trace is attached.
    Covered(Trace),
    /// Cover target proven unreachable.
    Unreachable,
    /// Result not determined within the configured bounds.
    Unknown,
    /// Not checked by the formal engine (assumptions, X-prop checks).
    NotChecked(&'static str),
}

impl PropertyStatus {
    /// `true` when the outcome is a definitive pass (proof, cover hit, or an
    /// assumption that does not need checking).
    pub fn is_pass(&self) -> bool {
        matches!(
            self,
            PropertyStatus::Proven | PropertyStatus::Covered(_) | PropertyStatus::NotChecked(_)
        )
    }

    /// `true` when a counterexample was produced.
    pub fn is_violation(&self) -> bool {
        matches!(self, PropertyStatus::Violated(_))
    }

    /// The attached trace, if any.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            PropertyStatus::Violated(t) | PropertyStatus::Covered(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for PropertyStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyStatus::Proven => write!(f, "proven"),
            PropertyStatus::Violated(t) => write!(f, "CEX ({} cycles)", t.len()),
            PropertyStatus::Covered(t) => write!(f, "covered ({} cycles)", t.len()),
            PropertyStatus::Unreachable => write!(f, "unreachable"),
            PropertyStatus::Unknown => write!(f, "unknown"),
            PropertyStatus::NotChecked(reason) => write!(f, "not checked ({reason})"),
        }
    }
}

/// The result for one property of the testbench.
#[derive(Debug, Clone)]
pub struct PropertyResult {
    /// Full property name (`as__...`, `am__...`, `co__...`).
    pub name: String,
    /// Property directive.
    pub directive: Directive,
    /// Property class.
    pub class: PropertyClass,
    /// Verification outcome.
    pub status: PropertyStatus,
    /// Wall-clock time spent on this property.
    pub runtime: Duration,
}

/// The report of a full verification run.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// DUT name.
    pub dut: String,
    /// Per-property results.
    pub results: Vec<PropertyResult>,
    /// Total wall-clock time.
    pub total_runtime: Duration,
    /// Number of AIG latches in the compiled model (design + testbench).
    pub model_latches: usize,
    /// Number of AIG and-gates in the compiled model.
    pub model_gates: usize,
}

impl VerificationReport {
    /// Properties that were actually checked (assertions and covers).
    pub fn checked(&self) -> impl Iterator<Item = &PropertyResult> {
        self.results
            .iter()
            .filter(|r| !matches!(r.status, PropertyStatus::NotChecked(_)))
    }

    /// Number of violated properties.
    pub fn violations(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.status.is_violation())
            .count()
    }

    /// Number of proven properties.
    pub fn proofs(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.status, PropertyStatus::Proven))
            .count()
    }

    /// Proof rate over checked assertion properties (the paper's "100%
    /// proof" metric): proven / (proven + violated + unknown), ignoring
    /// covers and assumptions.
    pub fn proof_rate(&self) -> f64 {
        let assertions: Vec<&PropertyResult> = self
            .results
            .iter()
            .filter(|r| r.directive == Directive::Assert)
            .filter(|r| !matches!(r.status, PropertyStatus::NotChecked(_)))
            .collect();
        if assertions.is_empty() {
            return 1.0;
        }
        let proven = assertions
            .iter()
            .filter(|r| matches!(r.status, PropertyStatus::Proven))
            .count();
        proven as f64 / assertions.len() as f64
    }

    /// The first counterexample found, if any.
    pub fn first_violation(&self) -> Option<&PropertyResult> {
        self.results.iter().find(|r| r.status.is_violation())
    }

    /// Renders a human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Verification report for `{}` ({} latches, {} gates)\n",
            self.dut, self.model_latches, self.model_gates
        ));
        let name_width = self
            .results
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(8)
            .max(8);
        for r in &self.results {
            out.push_str(&format!(
                "  {:name_width$}  {:>8.1?}  {}\n",
                r.name, r.runtime, r.status
            ));
        }
        out.push_str(&format!(
            "proof rate {:.0}%, {} violation(s), total {:.1?}\n",
            self.proof_rate() * 100.0,
            self.violations(),
            self.total_runtime
        ));
        out
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Elaborates `source`, compiles `testbench` and checks every property.
///
/// # Errors
///
/// Returns an error when elaboration or property compilation fails; checking
/// itself never fails (inconclusive results are reported as
/// [`PropertyStatus::Unknown`]).
pub fn verify(
    source: &str,
    testbench: &FormalTestbench,
    options: &CheckOptions,
) -> Result<VerificationReport> {
    let file = svparse::parse(source).map_err(|e| crate::elab::ElabError {
        message: format!("parse error: {e}"),
    })?;
    let mut elab_options = options.elab.clone();
    if elab_options.top.is_none() {
        elab_options.top = Some(testbench.dut_name.clone());
    }
    let design = elaborate(&file, &elab_options)?;
    verify_elaborated(&design, testbench, options)
}

/// Like [`verify`], but for an already elaborated design.
pub fn verify_elaborated(
    design: &ElabDesign,
    testbench: &FormalTestbench,
    options: &CheckOptions,
) -> Result<VerificationReport> {
    let start = Instant::now();
    let compiled = compile(design, testbench)?;
    let mut results = Vec::new();

    // Liveness properties share one transformed model.
    let l2s = if compiled.model.liveness.is_empty() {
        None
    } else {
        Some(compiled.model.to_liveness_safety())
    };

    // The exact explicit-state engine is built lazily: only when some
    // property cannot be settled by BMC or k-induction.
    let mut explicit: Option<Option<ExplicitBundle>> = None;

    for prop in &compiled.properties {
        let t0 = Instant::now();
        let status = check_one(&compiled, l2s.as_ref(), prop, options, &mut explicit);
        results.push(PropertyResult {
            name: prop.property.full_name(),
            directive: prop.property.directive,
            class: prop.property.class,
            status,
            runtime: t0.elapsed(),
        });
    }

    Ok(VerificationReport {
        dut: testbench.dut_name.clone(),
        results,
        total_runtime: start.elapsed(),
        model_latches: compiled.model.aig.num_latches(),
        model_gates: compiled.model.aig.num_ands(),
    })
}

/// The lazily-built explicit-state engine together with the monitor literals
/// needed for liveness queries.
struct ExplicitBundle {
    engine: ExplicitEngine,
    assert_pendings: Vec<Lit>,
    fair_pendings: Vec<Lit>,
}

fn explicit_bundle<'a>(
    compiled: &CompiledTestbench,
    options: &CheckOptions,
    cache: &'a mut Option<Option<ExplicitBundle>>,
) -> Option<&'a ExplicitBundle> {
    if options.disable_explicit {
        return None;
    }
    if cache.is_none() {
        let (augmented, assert_pendings, fair_pendings) = compiled.model.with_pending_monitors();
        let bundle =
            ExplicitEngine::explore(&augmented, &options.explicit).map(|engine| ExplicitBundle {
                engine,
                assert_pendings,
                fair_pendings,
            });
        *cache = Some(bundle);
    }
    cache.as_ref().and_then(|b| b.as_ref())
}

fn check_one(
    compiled: &CompiledTestbench,
    l2s: Option<&crate::model::LivenessSafetyModel>,
    prop: &crate::compile::CompiledProperty,
    options: &CheckOptions,
    explicit: &mut Option<Option<ExplicitBundle>>,
) -> PropertyStatus {
    match &prop.kind {
        CompiledKind::Skipped(reason) => PropertyStatus::NotChecked(reason),
        CompiledKind::Constraint => {
            PropertyStatus::NotChecked("assumption (constrains the environment)")
        }
        CompiledKind::Fairness => PropertyStatus::NotChecked("fairness assumption"),
        CompiledKind::Safety(index) => {
            // Quick, shallow BMC first: it produces the shortest traces for
            // the common "bug within a few cycles" case at minimal cost.
            let quick = BmcOptions {
                max_depth: options.quick_bmc_depth.min(options.bmc.max_depth),
                max_induction: 3.min(options.bmc.max_induction),
            };
            match check_safety(&compiled.model, *index, &quick) {
                SafetyResult::Proven { .. } => return PropertyStatus::Proven,
                SafetyResult::Violated(trace) => return PropertyStatus::Violated(trace),
                SafetyResult::Unknown { .. } => {}
            }
            let bad = compiled.model.bads[*index].lit;
            if let Some(bundle) = explicit_bundle(compiled, options, explicit) {
                match bundle.engine.check_bad(bad) {
                    ExplicitResult::Proven => return PropertyStatus::Proven,
                    ExplicitResult::Violated(trace) => return PropertyStatus::Violated(trace),
                    ExplicitResult::Exceeded => {}
                }
            }
            // Exact engine unavailable: fall back to the full-depth bounded
            // engines.
            match check_safety(&compiled.model, *index, &options.bmc) {
                SafetyResult::Proven { .. } => PropertyStatus::Proven,
                SafetyResult::Violated(trace) => PropertyStatus::Violated(trace),
                SafetyResult::Unknown { .. } => PropertyStatus::Unknown,
            }
        }
        CompiledKind::Cover(index) => {
            let quick = BmcOptions {
                max_depth: options.quick_bmc_depth.min(options.bmc.max_depth),
                max_induction: 3.min(options.bmc.max_induction),
            };
            match check_cover(&compiled.model, *index, &quick) {
                CoverResult::Covered(trace) => return PropertyStatus::Covered(trace),
                CoverResult::Unreachable => return PropertyStatus::Unreachable,
                CoverResult::Unknown { .. } => {}
            }
            let target = compiled.model.covers[*index].lit;
            if let Some(bundle) = explicit_bundle(compiled, options, explicit) {
                match bundle.engine.check_cover(target) {
                    ExplicitResult::Proven => return PropertyStatus::Unreachable,
                    ExplicitResult::Violated(trace) => return PropertyStatus::Covered(trace),
                    ExplicitResult::Exceeded => {}
                }
            }
            match check_cover(&compiled.model, *index, &options.bmc) {
                CoverResult::Covered(trace) => PropertyStatus::Covered(trace),
                CoverResult::Unreachable => PropertyStatus::Unreachable,
                CoverResult::Unknown { .. } => PropertyStatus::Unknown,
            }
        }
        CompiledKind::Liveness(index) => {
            let l2s = l2s.expect("liveness model exists when liveness properties exist");
            // The index into the original model's liveness vector equals the
            // index into the transformed model's bad vector.  BMC on the
            // transformed model finds short counterexample lassos; proofs are
            // closed by the exact engine.
            let quick = BmcOptions {
                max_depth: options.quick_bmc_depth.min(options.liveness_bmc.max_depth),
                max_induction: options.liveness_bmc.max_induction.min(3),
            };
            match check_safety(&l2s.model, *index, &quick) {
                SafetyResult::Proven { .. } => return PropertyStatus::Proven,
                SafetyResult::Violated(trace) => return PropertyStatus::Violated(trace),
                SafetyResult::Unknown { .. } => {}
            }
            if let Some(bundle) = explicit_bundle(compiled, options, explicit) {
                let pending = bundle.assert_pendings[*index];
                match bundle.engine.check_liveness(pending, &bundle.fair_pendings) {
                    ExplicitResult::Proven => return PropertyStatus::Proven,
                    ExplicitResult::Violated(trace) => return PropertyStatus::Violated(trace),
                    ExplicitResult::Exceeded => {}
                }
            }
            match check_safety(&l2s.model, *index, &options.liveness_bmc) {
                SafetyResult::Proven { .. } => PropertyStatus::Proven,
                SafetyResult::Violated(trace) => PropertyStatus::Violated(trace),
                SafetyResult::Unknown { .. } => PropertyStatus::Unknown,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosva::{generate_ft, AutosvaOptions};

    /// A well-behaved single-outstanding-request echo module: every accepted
    /// request is answered on the next cycle with the same ID.
    const ECHO_GOOD: &str = r#"
/*AUTOSVA
echo_txn: req -in> res
req_val = req_val
req_ack = req_ack
[1:0] req_transid = req_id
res_val = res_val
[1:0] res_transid = res_id
*/
module echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  input  logic [1:0] req_id,
  output logic res_val,
  output logic [1:0] res_id
);
  logic busy_q;
  logic [1:0] id_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      id_q <= 2'b0;
    end else begin
      if (req_val && req_ack) begin
        busy_q <= 1'b1;
        id_q <= req_id;
      end else if (busy_q) begin
        busy_q <= 1'b0;
      end
    end
  end
  assign req_ack = !busy_q;
  assign res_val = busy_q;
  assign res_id = id_q;
endmodule
"#;

    /// A buggy variant: the response drops the transaction when a new request
    /// arrives in the same cycle the response is produced (the ID is
    /// overwritten and the original request never completes), and requests
    /// are accepted while busy.
    const ECHO_BAD: &str = r#"
/*AUTOSVA
echo_txn: req -in> res
req_val = req_val
req_ack = req_ack
[1:0] req_transid = req_id
res_val = res_val
[1:0] res_transid = res_id
*/
module echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  input  logic [1:0] req_id,
  output logic res_val,
  output logic [1:0] res_id
);
  logic busy_q;
  logic [1:0] id_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      id_q <= 2'b0;
    end else begin
      if (req_val) begin
        busy_q <= 1'b1;
        id_q <= req_id;
      end else if (busy_q) begin
        busy_q <= 1'b0;
      end
    end
  end
  assign req_ack = 1'b1;
  assign res_val = busy_q && !req_val;
  assign res_id = id_q;
endmodule
"#;

    fn run(src: &str) -> VerificationReport {
        let ft = generate_ft(src, &AutosvaOptions::default()).unwrap();
        verify(src, &ft, &CheckOptions::default()).unwrap()
    }

    #[test]
    fn good_echo_module_proves_every_assertion() {
        let report = run(ECHO_GOOD);
        assert_eq!(
            report.violations(),
            0,
            "unexpected violations:\n{}",
            report.render()
        );
        assert!(
            (report.proof_rate() - 1.0).abs() < f64::EPSILON,
            "proof rate below 100%:\n{}",
            report.render()
        );
        // The cover property must be reachable (the FT is not vacuous).
        assert!(report
            .results
            .iter()
            .any(|r| matches!(r.status, PropertyStatus::Covered(_))));
    }

    #[test]
    fn buggy_echo_module_yields_counterexamples() {
        let report = run(ECHO_BAD);
        assert!(
            report.violations() > 0,
            "expected counterexamples:\n{}",
            report.render()
        );
        let first = report.first_violation().unwrap();
        let trace = first.status.trace().unwrap();
        assert!(
            trace.len() <= 12,
            "trace unexpectedly long: {}",
            trace.len()
        );
    }

    #[test]
    fn report_rendering_mentions_every_property() {
        let report = run(ECHO_GOOD);
        let text = report.render();
        for r in &report.results {
            assert!(text.contains(&r.name));
        }
        assert!(text.contains("proof rate"));
    }
}
