//! Top-level verification driver.
//!
//! [`verify`] runs an AutoSVA-generated formal testbench against its DUT: it
//! elaborates the RTL, compiles the testbench into a [`crate::model::Model`],
//! and checks every property through the engine cascade — shallow BMC for
//! short counterexamples, k-induction for cheap proofs, the IC3/PDR engine
//! for reachability-dependent proofs (returning an inductive-invariant
//! certificate), and the exact explicit-state engine as the last resort —
//! then collects everything into a [`VerificationReport`] that mirrors how
//! the paper reports results (proof rate, counterexamples, trace lengths,
//! runtimes).

use crate::aig::Lit;
use crate::bmc::{check_cover, check_safety, BmcOptions, CoverResult, SafetyResult};
use crate::compile::{compile, CompiledKind, CompiledTestbench};
use crate::elab::{elaborate, ElabDesign, ElabOptions, Result};
use crate::explicit::{ExplicitEngine, ExplicitOptions, ExplicitResult};
use crate::pdr::{check_pdr, check_pdr_lit, PdrOptions, PdrResult};
use crate::trace::Trace;
use autosva::sva::{Directive, PropertyClass};
use autosva::FormalTestbench;
use std::fmt;
use std::time::{Duration, Instant};

/// Options for a verification run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Elaboration options (top module, parameter overrides, clock/reset).
    pub elab: ElabOptions,
    /// Bounds used for safety and cover checking.
    pub bmc: BmcOptions,
    /// Bounds used for the liveness-to-safety checks (these models are
    /// larger, so the bounds may be set lower).
    pub liveness_bmc: BmcOptions,
    /// Limits of the exact explicit-state fallback engine used when BMC and
    /// k-induction are inconclusive.
    pub explicit: ExplicitOptions,
    /// Disable the explicit-state fallback entirely (used by the engine
    /// ablation benchmarks).
    pub disable_explicit: bool,
    /// Bounds of the IC3/PDR engine that sits between k-induction and the
    /// explicit fallback in the cascade.
    pub pdr: PdrOptions,
    /// Disable the PDR stage entirely (used by the engine ablation
    /// benchmarks).
    pub disable_pdr: bool,
    /// Depth of the *quick* BMC pass run before the exact engine.  Short
    /// counterexamples are found here with minimal effort; anything deeper is
    /// left to the exact engine (or to the full-depth BMC when the exact
    /// engine is unavailable).
    pub quick_bmc_depth: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            elab: ElabOptions::default(),
            bmc: BmcOptions {
                max_depth: 25,
                max_induction: 12,
            },
            liveness_bmc: BmcOptions {
                max_depth: 12,
                max_induction: 0,
            },
            explicit: ExplicitOptions::default(),
            disable_explicit: false,
            pdr: PdrOptions {
                max_frames: 40,
                max_queries: 30_000,
                generalize_rounds: 2,
            },
            disable_pdr: false,
            quick_bmc_depth: 10,
        }
    }
}

/// Why a proven property holds: which engine closed the proof and the
/// artifact it produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Proof {
    /// k-induction with loop-free-path strengthening.
    Induction {
        /// Induction depth at which the proof closed.
        depth: usize,
    },
    /// A PDR inductive invariant (clauses rendered over latch names).
    Invariant {
        /// The invariant clauses, human-readable.
        clauses: Vec<String>,
        /// Number of frames the trapezoid reached when the proof closed.
        frames: usize,
    },
    /// Exhaustive reachable-state enumeration by the explicit engine.
    Reachability,
}

impl Proof {
    /// A one-line description for report rendering.
    pub fn describe(&self) -> String {
        match self {
            Proof::Induction { depth } => format!("k-induction, k={depth}"),
            Proof::Invariant { clauses, frames } => {
                if clauses.is_empty() {
                    format!("PDR, vacuous at frame {frames}")
                } else if clauses.len() <= 3 {
                    format!(
                        "PDR invariant at frame {frames}: ({})",
                        clauses.join(") & (")
                    )
                } else {
                    format!("PDR invariant, {} clauses at frame {frames}", clauses.len())
                }
            }
            Proof::Reachability => "explicit reachability".to_string(),
        }
    }
}

/// The verification status of one property.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyStatus {
    /// Proven to hold on all executions; carries the proof artifact so
    /// reports can say *why* the property holds.
    Proven(Proof),
    /// Violated; a counterexample trace is attached.
    Violated(Trace),
    /// Cover target reached; the witness trace is attached.
    Covered(Trace),
    /// Cover target proven unreachable.
    Unreachable,
    /// Result not determined within the configured bounds.
    Unknown,
    /// Not checked by the formal engine (assumptions, X-prop checks).
    NotChecked(&'static str),
}

impl PropertyStatus {
    /// `true` when the outcome is a definitive pass (proof, cover hit, or an
    /// assumption that does not need checking).
    pub fn is_pass(&self) -> bool {
        matches!(
            self,
            PropertyStatus::Proven(_) | PropertyStatus::Covered(_) | PropertyStatus::NotChecked(_)
        )
    }

    /// `true` when the property was proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, PropertyStatus::Proven(_))
    }

    /// The attached proof artifact, if the property was proven.
    pub fn proof(&self) -> Option<&Proof> {
        match self {
            PropertyStatus::Proven(p) => Some(p),
            _ => None,
        }
    }

    /// `true` when a counterexample was produced.
    pub fn is_violation(&self) -> bool {
        matches!(self, PropertyStatus::Violated(_))
    }

    /// The attached trace, if any.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            PropertyStatus::Violated(t) | PropertyStatus::Covered(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for PropertyStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyStatus::Proven(_) => write!(f, "proven"),
            PropertyStatus::Violated(t) => write!(f, "CEX ({} cycles)", t.len()),
            PropertyStatus::Covered(t) => write!(f, "covered ({} cycles)", t.len()),
            PropertyStatus::Unreachable => write!(f, "unreachable"),
            PropertyStatus::Unknown => write!(f, "unknown"),
            PropertyStatus::NotChecked(reason) => write!(f, "not checked ({reason})"),
        }
    }
}

/// The result for one property of the testbench.
#[derive(Debug, Clone)]
pub struct PropertyResult {
    /// Full property name (`as__...`, `am__...`, `co__...`).
    pub name: String,
    /// Property directive.
    pub directive: Directive,
    /// Property class.
    pub class: PropertyClass,
    /// Verification outcome.
    pub status: PropertyStatus,
    /// Wall-clock time spent on this property.
    pub runtime: Duration,
}

/// The report of a full verification run.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// DUT name.
    pub dut: String,
    /// Per-property results.
    pub results: Vec<PropertyResult>,
    /// Total wall-clock time.
    pub total_runtime: Duration,
    /// Number of AIG latches in the compiled model (design + testbench).
    pub model_latches: usize,
    /// Number of AIG and-gates in the compiled model.
    pub model_gates: usize,
}

impl VerificationReport {
    /// Properties that were actually checked (assertions and covers).
    pub fn checked(&self) -> impl Iterator<Item = &PropertyResult> {
        self.results
            .iter()
            .filter(|r| !matches!(r.status, PropertyStatus::NotChecked(_)))
    }

    /// Number of violated properties.
    pub fn violations(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.status.is_violation())
            .count()
    }

    /// Number of proven properties.
    pub fn proofs(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.status, PropertyStatus::Proven(_)))
            .count()
    }

    /// Proof rate over checked assertion properties (the paper's "100%
    /// proof" metric): proven / (proven + violated + unknown), ignoring
    /// covers and assumptions.
    pub fn proof_rate(&self) -> f64 {
        let assertions: Vec<&PropertyResult> = self
            .results
            .iter()
            .filter(|r| r.directive == Directive::Assert)
            .filter(|r| !matches!(r.status, PropertyStatus::NotChecked(_)))
            .collect();
        if assertions.is_empty() {
            return 1.0;
        }
        let proven = assertions
            .iter()
            .filter(|r| matches!(r.status, PropertyStatus::Proven(_)))
            .count();
        proven as f64 / assertions.len() as f64
    }

    /// The first counterexample found, if any.
    pub fn first_violation(&self) -> Option<&PropertyResult> {
        self.results.iter().find(|r| r.status.is_violation())
    }

    /// Renders a human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Verification report for `{}` ({} latches, {} gates)\n",
            self.dut, self.model_latches, self.model_gates
        ));
        let name_width = self
            .results
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(8)
            .max(8);
        for r in &self.results {
            match &r.status {
                PropertyStatus::Proven(proof) => out.push_str(&format!(
                    "  {:name_width$}  {:>8.1?}  {} [{}]\n",
                    r.name,
                    r.runtime,
                    r.status,
                    proof.describe()
                )),
                status => out.push_str(&format!(
                    "  {:name_width$}  {:>8.1?}  {status}\n",
                    r.name, r.runtime
                )),
            }
        }
        out.push_str(&format!(
            "proof rate {:.0}%, {} violation(s), total {:.1?}\n",
            self.proof_rate() * 100.0,
            self.violations(),
            self.total_runtime
        ));
        out
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Elaborates `source`, compiles `testbench` and checks every property.
///
/// # Errors
///
/// Returns an error when elaboration or property compilation fails; checking
/// itself never fails (inconclusive results are reported as
/// [`PropertyStatus::Unknown`]).
pub fn verify(
    source: &str,
    testbench: &FormalTestbench,
    options: &CheckOptions,
) -> Result<VerificationReport> {
    let file = svparse::parse(source).map_err(|e| crate::elab::ElabError {
        message: format!("parse error: {e}"),
    })?;
    let mut elab_options = options.elab.clone();
    if elab_options.top.is_none() {
        elab_options.top = Some(testbench.dut_name.clone());
    }
    let design = elaborate(&file, &elab_options)?;
    verify_elaborated(&design, testbench, options)
}

/// Like [`verify`], but for an already elaborated design.
pub fn verify_elaborated(
    design: &ElabDesign,
    testbench: &FormalTestbench,
    options: &CheckOptions,
) -> Result<VerificationReport> {
    let start = Instant::now();
    let compiled = compile(design, testbench)?;
    let mut results = Vec::new();

    // Liveness properties share one transformed model.
    let l2s = if compiled.model.liveness.is_empty() {
        None
    } else {
        Some(compiled.model.to_liveness_safety())
    };

    // The exact explicit-state engine is built lazily: only when some
    // property cannot be settled by BMC, k-induction or PDR.
    let mut explicit = ExplicitState::Untried;

    for prop in &compiled.properties {
        let t0 = Instant::now();
        let status = check_one(&compiled, l2s.as_ref(), prop, options, &mut explicit);
        results.push(PropertyResult {
            name: prop.property.full_name(),
            directive: prop.property.directive,
            class: prop.property.class,
            status,
            runtime: t0.elapsed(),
        });
    }

    Ok(VerificationReport {
        dut: testbench.dut_name.clone(),
        results,
        total_runtime: start.elapsed(),
        model_latches: compiled.model.aig.num_latches(),
        model_gates: compiled.model.aig.num_ands(),
    })
}

/// The lazily-built explicit-state engine together with the monitor literals
/// needed for liveness queries.
struct ExplicitBundle {
    engine: ExplicitEngine,
    assert_pendings: Vec<Lit>,
    fair_pendings: Vec<Lit>,
}

/// Build state of the lazily-constructed explicit-state fallback.
enum ExplicitState {
    /// Construction has not been attempted yet.
    Untried,
    /// Disabled, or exploration exceeded its limits: permanently absent.
    Unavailable,
    /// Explored and ready to answer queries.
    Ready(Box<ExplicitBundle>),
}

impl ExplicitState {
    /// Returns the engine bundle, building it on first use.
    fn bundle(
        &mut self,
        compiled: &CompiledTestbench,
        options: &CheckOptions,
    ) -> Option<&ExplicitBundle> {
        if matches!(self, ExplicitState::Untried) {
            *self = if options.disable_explicit {
                ExplicitState::Unavailable
            } else {
                let (augmented, assert_pendings, fair_pendings) =
                    compiled.model.with_pending_monitors();
                match ExplicitEngine::explore(&augmented, &options.explicit) {
                    Some(engine) => ExplicitState::Ready(Box::new(ExplicitBundle {
                        engine,
                        assert_pendings,
                        fair_pendings,
                    })),
                    None => ExplicitState::Unavailable,
                }
            };
        }
        match self {
            ExplicitState::Ready(bundle) => Some(bundle),
            _ => None,
        }
    }
}

/// Converts a PDR invariant into the report-facing proof artifact.
fn invariant_proof(invariant: &crate::pdr::Invariant, aig: &crate::aig::Aig) -> Proof {
    Proof::Invariant {
        clauses: invariant.render(aig),
        frames: invariant.frames_explored,
    }
}

fn check_one(
    compiled: &CompiledTestbench,
    l2s: Option<&crate::model::LivenessSafetyModel>,
    prop: &crate::compile::CompiledProperty,
    options: &CheckOptions,
    explicit: &mut ExplicitState,
) -> PropertyStatus {
    match &prop.kind {
        CompiledKind::Skipped(reason) => PropertyStatus::NotChecked(reason),
        CompiledKind::Constraint => {
            PropertyStatus::NotChecked("assumption (constrains the environment)")
        }
        CompiledKind::Fairness => PropertyStatus::NotChecked("fairness assumption"),
        CompiledKind::Safety(index) => {
            // Quick, shallow BMC first: it produces the shortest traces for
            // the common "bug within a few cycles" case at minimal cost.
            let quick = BmcOptions {
                max_depth: options.quick_bmc_depth.min(options.bmc.max_depth),
                max_induction: 3.min(options.bmc.max_induction),
            };
            match check_safety(&compiled.model, *index, &quick) {
                SafetyResult::Proven { induction_depth } => {
                    return PropertyStatus::Proven(Proof::Induction {
                        depth: induction_depth,
                    })
                }
                SafetyResult::Violated(trace) => return PropertyStatus::Violated(trace),
                SafetyResult::Unknown { .. } => {}
            }
            // PDR: the unbounded engine that closes the reachability-
            // dependent proofs (counter-vs-state invariants) induction
            // cannot, without the explicit engine's exponential cliff.
            if !options.disable_pdr {
                match check_pdr(&compiled.model, *index, &options.pdr) {
                    PdrResult::Proven(invariant) => {
                        return PropertyStatus::Proven(invariant_proof(
                            &invariant,
                            &compiled.model.aig,
                        ))
                    }
                    PdrResult::Violated(trace) => return PropertyStatus::Violated(trace),
                    PdrResult::Unknown { .. } => {}
                }
            }
            let bad = compiled.model.bads[*index].lit;
            if let Some(bundle) = explicit.bundle(compiled, options) {
                match bundle.engine.check_bad(bad) {
                    ExplicitResult::Proven => return PropertyStatus::Proven(Proof::Reachability),
                    ExplicitResult::Violated(trace) => return PropertyStatus::Violated(trace),
                    ExplicitResult::Exceeded => {}
                }
            }
            // Exact engines unavailable: fall back to the full-depth bounded
            // engines.
            match check_safety(&compiled.model, *index, &options.bmc) {
                SafetyResult::Proven { induction_depth } => {
                    PropertyStatus::Proven(Proof::Induction {
                        depth: induction_depth,
                    })
                }
                SafetyResult::Violated(trace) => PropertyStatus::Violated(trace),
                SafetyResult::Unknown { .. } => PropertyStatus::Unknown,
            }
        }
        CompiledKind::Cover(index) => {
            let quick = BmcOptions {
                max_depth: options.quick_bmc_depth.min(options.bmc.max_depth),
                max_induction: 3.min(options.bmc.max_induction),
            };
            match check_cover(&compiled.model, *index, &quick) {
                CoverResult::Covered(trace) => return PropertyStatus::Covered(trace),
                CoverResult::Unreachable => return PropertyStatus::Unreachable,
                CoverResult::Unknown { .. } => {}
            }
            let target = compiled.model.covers[*index].lit;
            // PDR decides reachability of the cover target: a "proof" means
            // the target is unreachable, a "counterexample" is the witness.
            if !options.disable_pdr {
                match check_pdr_lit(&compiled.model, target, &options.pdr) {
                    PdrResult::Proven(_) => return PropertyStatus::Unreachable,
                    PdrResult::Violated(trace) => return PropertyStatus::Covered(trace),
                    PdrResult::Unknown { .. } => {}
                }
            }
            if let Some(bundle) = explicit.bundle(compiled, options) {
                match bundle.engine.check_cover(target) {
                    ExplicitResult::Proven => return PropertyStatus::Unreachable,
                    ExplicitResult::Violated(trace) => return PropertyStatus::Covered(trace),
                    ExplicitResult::Exceeded => {}
                }
            }
            match check_cover(&compiled.model, *index, &options.bmc) {
                CoverResult::Covered(trace) => PropertyStatus::Covered(trace),
                CoverResult::Unreachable => PropertyStatus::Unreachable,
                CoverResult::Unknown { .. } => PropertyStatus::Unknown,
            }
        }
        CompiledKind::Liveness(index) => {
            let l2s = l2s.expect("liveness model exists when liveness properties exist");
            // The index into the original model's liveness vector equals the
            // index into the transformed model's bad vector.  BMC on the
            // transformed model finds short counterexample lassos; proofs
            // fall through to PDR and then to the exact engine.
            let quick = BmcOptions {
                max_depth: options.quick_bmc_depth.min(options.liveness_bmc.max_depth),
                max_induction: options.liveness_bmc.max_induction.min(3),
            };
            match check_safety(&l2s.model, *index, &quick) {
                SafetyResult::Proven { induction_depth } => {
                    return PropertyStatus::Proven(Proof::Induction {
                        depth: induction_depth,
                    })
                }
                SafetyResult::Violated(trace) => return PropertyStatus::Violated(trace),
                SafetyResult::Unknown { .. } => {}
            }
            if !options.disable_pdr {
                match check_pdr(&l2s.model, *index, &options.pdr) {
                    PdrResult::Proven(invariant) => {
                        return PropertyStatus::Proven(invariant_proof(&invariant, &l2s.model.aig))
                    }
                    PdrResult::Violated(trace) => return PropertyStatus::Violated(trace),
                    PdrResult::Unknown { .. } => {}
                }
            }
            if let Some(bundle) = explicit.bundle(compiled, options) {
                let pending = bundle.assert_pendings[*index];
                match bundle.engine.check_liveness(pending, &bundle.fair_pendings) {
                    ExplicitResult::Proven => return PropertyStatus::Proven(Proof::Reachability),
                    ExplicitResult::Violated(trace) => return PropertyStatus::Violated(trace),
                    ExplicitResult::Exceeded => {}
                }
            }
            match check_safety(&l2s.model, *index, &options.liveness_bmc) {
                SafetyResult::Proven { induction_depth } => {
                    PropertyStatus::Proven(Proof::Induction {
                        depth: induction_depth,
                    })
                }
                SafetyResult::Violated(trace) => PropertyStatus::Violated(trace),
                SafetyResult::Unknown { .. } => PropertyStatus::Unknown,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosva::{generate_ft, AutosvaOptions};

    /// A well-behaved single-outstanding-request echo module: every accepted
    /// request is answered on the next cycle with the same ID.
    const ECHO_GOOD: &str = r#"
/*AUTOSVA
echo_txn: req -in> res
req_val = req_val
req_ack = req_ack
[1:0] req_transid = req_id
res_val = res_val
[1:0] res_transid = res_id
*/
module echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  input  logic [1:0] req_id,
  output logic res_val,
  output logic [1:0] res_id
);
  logic busy_q;
  logic [1:0] id_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      id_q <= 2'b0;
    end else begin
      if (req_val && req_ack) begin
        busy_q <= 1'b1;
        id_q <= req_id;
      end else if (busy_q) begin
        busy_q <= 1'b0;
      end
    end
  end
  assign req_ack = !busy_q;
  assign res_val = busy_q;
  assign res_id = id_q;
endmodule
"#;

    /// A buggy variant: the response drops the transaction when a new request
    /// arrives in the same cycle the response is produced (the ID is
    /// overwritten and the original request never completes), and requests
    /// are accepted while busy.
    const ECHO_BAD: &str = r#"
/*AUTOSVA
echo_txn: req -in> res
req_val = req_val
req_ack = req_ack
[1:0] req_transid = req_id
res_val = res_val
[1:0] res_transid = res_id
*/
module echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  input  logic [1:0] req_id,
  output logic res_val,
  output logic [1:0] res_id
);
  logic busy_q;
  logic [1:0] id_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      id_q <= 2'b0;
    end else begin
      if (req_val) begin
        busy_q <= 1'b1;
        id_q <= req_id;
      end else if (busy_q) begin
        busy_q <= 1'b0;
      end
    end
  end
  assign req_ack = 1'b1;
  assign res_val = busy_q && !req_val;
  assign res_id = id_q;
endmodule
"#;

    /// A single-outstanding echo that answers only after a 7-cycle wait
    /// counter drains.  The `had_a_request` monitor proof needs reachability
    /// information ("the wait counter is only non-zero while busy"), which
    /// defeats the shallow quick-BMC induction and exercises the PDR stage.
    const ECHO_SLOW: &str = r#"
/*AUTOSVA
slow_txn: req -in> res
req_val = req_val
req_ack = req_ack
res_val = res_val
*/
module echo_slow (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  output logic res_val
);
  logic       busy_q;
  logic [2:0] wait_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      wait_q <= 3'd0;
    end else begin
      if (req_val && req_ack) begin
        busy_q <= 1'b1;
        wait_q <= 3'd7;
      end else if (busy_q) begin
        if (wait_q != 3'd0) begin
          wait_q <= wait_q - 3'd1;
        end else begin
          busy_q <= 1'b0;
        end
      end
    end
  end
  assign req_ack = !busy_q;
  assign res_val = busy_q && wait_q == 3'd0;
endmodule
"#;

    fn run(src: &str) -> VerificationReport {
        let ft = generate_ft(src, &AutosvaOptions::default()).unwrap();
        verify(src, &ft, &CheckOptions::default()).unwrap()
    }

    #[test]
    fn good_echo_module_proves_every_assertion() {
        let report = run(ECHO_GOOD);
        assert_eq!(
            report.violations(),
            0,
            "unexpected violations:\n{}",
            report.render()
        );
        assert!(
            (report.proof_rate() - 1.0).abs() < f64::EPSILON,
            "proof rate below 100%:\n{}",
            report.render()
        );
        // The cover property must be reachable (the FT is not vacuous).
        assert!(report
            .results
            .iter()
            .any(|r| matches!(r.status, PropertyStatus::Covered(_))));
    }

    #[test]
    fn buggy_echo_module_yields_counterexamples() {
        let report = run(ECHO_BAD);
        assert!(
            report.violations() > 0,
            "expected counterexamples:\n{}",
            report.render()
        );
        let first = report.first_violation().unwrap();
        let trace = first.status.trace().unwrap();
        assert!(
            trace.len() <= 12,
            "trace unexpectedly long: {}",
            trace.len()
        );
    }

    #[test]
    fn report_rendering_mentions_every_property() {
        let report = run(ECHO_GOOD);
        let text = report.render();
        for r in &report.results {
            assert!(text.contains(&r.name));
        }
        assert!(text.contains("proof rate"));
    }

    #[test]
    fn cascade_runs_pdr_before_the_explicit_fallback() {
        let ft = generate_ft(ECHO_SLOW, &AutosvaOptions::default()).unwrap();

        // Default cascade: the reachability-dependent safety proof must be
        // closed by the PDR stage (an inductive-invariant certificate), not
        // by the explicit engine sitting behind it.
        let report = verify(ECHO_SLOW, &ft, &CheckOptions::default()).unwrap();
        let had = report
            .results
            .iter()
            .find(|r| r.name.contains("had_a_request"))
            .expect("monitor property exists");
        assert!(
            matches!(had.status.proof(), Some(Proof::Invariant { .. })),
            "expected a PDR invariant proof, got {:?}",
            had.status
        );
        assert_eq!(report.violations(), 0, "{}", report.render());

        // With PDR disabled the same property falls through to the explicit
        // engine — proving the stage really sits in front of it.
        let mut no_pdr = CheckOptions::default();
        no_pdr.disable_pdr = true;
        let report = verify(ECHO_SLOW, &ft, &no_pdr).unwrap();
        let had = report
            .results
            .iter()
            .find(|r| r.name.contains("had_a_request"))
            .expect("monitor property exists");
        assert!(
            matches!(had.status.proof(), Some(Proof::Reachability)),
            "expected an explicit-reachability proof, got {:?}",
            had.status
        );
    }

    #[test]
    fn proven_properties_render_their_proof_artifact() {
        let ft = generate_ft(ECHO_SLOW, &AutosvaOptions::default()).unwrap();
        let report = verify(ECHO_SLOW, &ft, &CheckOptions::default()).unwrap();
        let text = report.render();
        assert!(
            text.contains("PDR invariant"),
            "render must say why properties hold:\n{text}"
        );
        assert!(
            text.contains("k-induction") || text.contains("PDR"),
            "{text}"
        );
    }
}
