//! Top-level verification driver.
//!
//! [`verify`] runs an AutoSVA-generated formal testbench against its DUT: it
//! elaborates the RTL, compiles the testbench into a [`crate::model::Model`],
//! and checks every property through the engine cascade — shallow BMC for
//! short counterexamples, k-induction for cheap proofs, the IC3/PDR engine
//! for reachability-dependent proofs (returning an inductive-invariant
//! certificate), and the exact explicit-state engine as the last resort —
//! then collects everything into a [`VerificationReport`] that mirrors how
//! the paper reports results (proof rate, counterexamples, trace lengths,
//! runtimes).
//!
//! Properties are independent tasks: by default each one is checked on its
//! own cone-of-influence slice ([`crate::coi`]) and the tasks run
//! concurrently on a worker pool ([`crate::portfolio`]), with results
//! assembled back in annotation order — a sequential run
//! (`parallel.threads = 1`) and a parallel run render byte-identical
//! reports.  An optional [`crate::portfolio::ProofCache`] reuses verdicts
//! across runs when a property's slice is content-identical (e.g.
//! buggy/fixed design variants or repeated bench iterations).

use crate::aig::Lit;
use crate::bmc::{
    check_cover_budgeted, check_safety_budgeted, race_safety_budgeted, BmcOptions, CoverResult,
    RaceOptions, SafetyResult,
};
use crate::coi::{
    cone_of_influence, fingerprint, signature_overlap, state_signature, Fingerprint, SliceTarget,
};
use crate::compile::{compile, CompiledKind, CompiledTestbench};
use crate::elab::{elaborate_budgeted, ElabDesign, ElabOptions, Result};
use crate::explicit::{ExplicitEngine, ExplicitOptions, ExplicitResult};
use crate::fuzz::{fuzz_safety_budgeted, FuzzOptions, FuzzStats};
use crate::interrupt::{self, Interrupt, InterruptReason};
use crate::lint::{LintOptions, LintReport};
use crate::model::{LivenessSafetyModel, Model};
use crate::pdr::{
    check_pdr_budgeted, check_pdr_budgeted_lemmas, FrameLemma, PdrOptions, PdrResult,
};
use crate::portfolio::{
    racer_configs, run_ordered, CacheKey, CacheStats, CachedOutcome, CachedVerdict,
    ParallelOptions, PoolKind, ProofCache, SharedPools, SharingOptions,
};
use crate::sat::{SolverConfig, SolverStats};
use crate::telemetry::{
    self, RunSummary, Telemetry, TelemetryOptions, TelemetryReport, VerdictCounts,
};
use crate::trace::Trace;
use crate::unroll::SeedHint;
use crate::vcd::VcdOptions;
use autosva::sva::{Directive, PropertyClass};
use autosva::FormalTestbench;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Options for a verification run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Elaboration options (top module, parameter overrides, clock/reset).
    pub elab: ElabOptions,
    /// Bounds used for safety and cover checking.
    pub bmc: BmcOptions,
    /// Bounds used for the liveness-to-safety checks (these models are
    /// larger, so the bounds may be set lower).
    pub liveness_bmc: BmcOptions,
    /// Limits of the exact explicit-state fallback engine used when BMC and
    /// k-induction are inconclusive.
    pub explicit: ExplicitOptions,
    /// Disable the explicit-state fallback entirely (used by the engine
    /// ablation benchmarks).
    pub disable_explicit: bool,
    /// Bounds of the IC3/PDR engine that sits between k-induction and the
    /// explicit fallback in the cascade.
    pub pdr: PdrOptions,
    /// Disable the PDR stage entirely (used by the engine ablation
    /// benchmarks).
    pub disable_pdr: bool,
    /// Disable every BMC stage (quick and full-depth) of the cascade.  Used
    /// by the engine ablation benchmarks and the fuzz-only smoke mode; also
    /// skips the SAT re-minimization of fuzzer-found counterexamples.
    pub disable_bmc: bool,
    /// Depth of the *quick* BMC pass run before the exact engine.  Short
    /// counterexamples are found here with minimal effort; anything deeper is
    /// left to the exact engine (or to the full-depth BMC when the exact
    /// engine is unavailable).
    pub quick_bmc_depth: usize,
    /// The pre-cascade stimulus fuzzer: bit-parallel simulation of every
    /// safety property's slice, hunting shallow bugs before any SAT query.
    /// Confirmed hits are re-minimized by a depth-bounded BMC call (unless
    /// `disable_bmc`), so the reported trace — and therefore
    /// [`VerificationReport::render`] — is byte-identical with the fuzz
    /// stage on or off, for any seed.
    pub fuzz: FuzzOptions,
    /// Waveform output: when a directory is set, every counterexample and
    /// witness trace — fuzzer-found and SAT-found — is written there as a
    /// VCD file named by [`crate::vcd::file_name`].
    pub vcd: VcdOptions,
    /// Orchestration: worker-thread count (`threads = 1` is the sequential
    /// escape hatch), per-property cone-of-influence slicing, optional
    /// per-property time budgets, and the proof cache.
    pub parallel: ParallelOptions,
    /// Proof-cache persistence: when a directory is set, verdicts spill to
    /// disk there and reload in later processes.
    pub cache: CacheOptions,
    /// SAT search-loop feature toggles, shared by every engine stage (the
    /// solver ablation bench flips them; the defaults enable everything).
    pub solver: SolverConfig,
    /// Design-lint configuration (level and deny-warnings).  The lint runs
    /// between compilation and the engine cascade; error-severity findings
    /// fail the run before any engine starts.
    pub lint: LintOptions,
    /// Observability: structured spans, the counter/gauge registry and the
    /// trace/JSON sinks.  Default off — no collector is allocated and every
    /// probe is a thread-local no-op.  [`VerificationReport::render`] is
    /// byte-identical with telemetry on or off.
    pub telemetry: TelemetryOptions,
    /// Wall-clock budget for the *front end* (parse, elaboration,
    /// compilation, lint).  The engine cascade has per-property deadlines
    /// ([`ParallelOptions::property_timeout`]), but before this budget
    /// existed a pathological design could stall the run *before* any
    /// engine — and any deadline — was reached.  The budget is checked
    /// between the front-end phases and inside elaboration's own loops;
    /// exceeding it fails the run with a phase-naming error.  `None`
    /// (the default) leaves the front end unbudgeted.
    pub frontend_timeout: Option<Duration>,
    /// The clause-sharing SAT portfolio raced on hard properties: when
    /// enabled (the default, 2–4 diverse solver configurations), the
    /// full-depth BMC/k-induction stage races the configurations in
    /// deterministic lockstep, exchanging learnt clauses through a shared
    /// pool keyed by the slice fingerprint, with PDR's frame lemmas and
    /// cross-property phase/activity seeds warming the search.  Verdicts —
    /// and [`VerificationReport::render`] — are byte-identical with
    /// sharing on or off: imported clauses only ever strengthen, never
    /// change, answers, and counterexamples are re-canonicalized to the
    /// minimal single-solver trace.
    pub sharing: SharingOptions,
}

/// Proof-cache persistence knobs (part of [`CheckOptions`]).
///
/// The in-process cache handle lives on [`ParallelOptions::cache`]; these
/// options control the on-disk spill.  When `dir` is set and no in-process
/// handle was supplied, [`verify_elaborated`] opens a disk-backed
/// [`ProofCache`] in that directory for the run and flushes it afterwards,
/// so repeated CLI/CI invocations reuse proofs across processes.  Cached
/// verdicts are re-validated on every hit exactly as in-memory hits are.
#[derive(Debug, Clone, Default)]
pub struct CacheOptions {
    /// Directory holding the spill file (created if missing).  `None`
    /// keeps the cache (if any) in-memory only.
    pub dir: Option<PathBuf>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            elab: ElabOptions::default(),
            bmc: BmcOptions {
                max_depth: 25,
                max_induction: 12,
            },
            liveness_bmc: BmcOptions {
                max_depth: 12,
                max_induction: 0,
            },
            explicit: ExplicitOptions::default(),
            disable_explicit: false,
            pdr: PdrOptions {
                max_frames: 40,
                max_queries: 30_000,
                generalize_rounds: 2,
            },
            disable_pdr: false,
            disable_bmc: false,
            quick_bmc_depth: 10,
            fuzz: FuzzOptions::default(),
            vcd: VcdOptions::default(),
            parallel: ParallelOptions::default(),
            cache: CacheOptions::default(),
            solver: SolverConfig::default(),
            lint: LintOptions::default(),
            telemetry: TelemetryOptions::default(),
            frontend_timeout: None,
            sharing: SharingOptions::default(),
        }
    }
}

/// Why a proven property holds: which engine closed the proof and the
/// artifact it produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Proof {
    /// k-induction with loop-free-path strengthening.
    Induction {
        /// Induction depth at which the proof closed.
        depth: usize,
    },
    /// A PDR inductive invariant (clauses rendered over latch names).
    Invariant {
        /// The invariant clauses, human-readable.
        clauses: Vec<String>,
        /// Number of frames the trapezoid reached when the proof closed.
        frames: usize,
    },
    /// Exhaustive reachable-state enumeration by the explicit engine.
    Reachability,
}

impl Proof {
    /// A one-line description for report rendering.
    pub fn describe(&self) -> String {
        match self {
            Proof::Induction { depth } => format!("k-induction, k={depth}"),
            Proof::Invariant { clauses, frames } => {
                if clauses.is_empty() {
                    format!("PDR, vacuous at frame {frames}")
                } else if clauses.len() <= 3 {
                    format!(
                        "PDR invariant at frame {frames}: ({})",
                        clauses.join(") & (")
                    )
                } else {
                    format!("PDR invariant, {} clauses at frame {frames}", clauses.len())
                }
            }
            Proof::Reachability => "explicit reachability".to_string(),
        }
    }
}

/// The verification status of one property.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyStatus {
    /// Proven to hold on all executions; carries the proof artifact so
    /// reports can say *why* the property holds.
    Proven(Proof),
    /// Violated; a counterexample trace is attached.
    Violated(Trace),
    /// Cover target reached; the witness trace is attached.
    Covered(Trace),
    /// Cover target proven unreachable.
    Unreachable,
    /// Result not determined within the configured bounds.
    Unknown,
    /// Not checked by the formal engine (assumptions, X-prop checks).
    NotChecked(&'static str),
    /// The engine checking this property panicked.  The fault is contained
    /// to this row: every other property's verdict is unaffected and the
    /// report still renders.  Equivalent to [`PropertyStatus::Unknown`] for
    /// pass/fail purposes, but kept distinct so reports (and exit codes
    /// built on them) can surface the crash instead of silently reading it
    /// as "bounds too small".
    Error {
        /// The cascade stage that was running when the panic unwound
        /// (`"fuzz"`, `"bmc"`, `"pdr"`, `"explicit"`, or `"task"` when it
        /// escaped outside any engine stage).
        engine: &'static str,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl PropertyStatus {
    /// `true` when the outcome is a definitive pass (proof, cover hit, or an
    /// assumption that does not need checking).
    pub fn is_pass(&self) -> bool {
        matches!(
            self,
            PropertyStatus::Proven(_) | PropertyStatus::Covered(_) | PropertyStatus::NotChecked(_)
        )
    }

    /// `true` when the property was proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, PropertyStatus::Proven(_))
    }

    /// The attached proof artifact, if the property was proven.
    pub fn proof(&self) -> Option<&Proof> {
        match self {
            PropertyStatus::Proven(p) => Some(p),
            _ => None,
        }
    }

    /// `true` when a counterexample was produced.
    pub fn is_violation(&self) -> bool {
        matches!(self, PropertyStatus::Violated(_))
    }

    /// The attached trace, if any.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            PropertyStatus::Violated(t) | PropertyStatus::Covered(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for PropertyStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyStatus::Proven(_) => write!(f, "proven"),
            PropertyStatus::Violated(t) => write!(f, "CEX ({} cycles)", t.len()),
            PropertyStatus::Covered(t) => write!(f, "covered ({} cycles)", t.len()),
            PropertyStatus::Unreachable => write!(f, "unreachable"),
            PropertyStatus::Unknown => write!(f, "unknown"),
            PropertyStatus::NotChecked(reason) => write!(f, "not checked ({reason})"),
            PropertyStatus::Error { engine, message } => {
                write!(f, "ERROR in {engine}: {message}")
            }
        }
    }
}

/// The result for one property of the testbench.
#[derive(Debug, Clone)]
pub struct PropertyResult {
    /// Full property name (`as__...`, `am__...`, `co__...`).
    pub name: String,
    /// Property directive.
    pub directive: Directive,
    /// Property class.
    pub class: PropertyClass,
    /// Verification outcome.
    pub status: PropertyStatus,
    /// Wall-clock time spent on this property.
    pub runtime: Duration,
    /// Latches of the cone-of-influence slice the property was checked on
    /// (equals the full model's latch count when slicing is disabled; `0`
    /// for properties that are not checked).
    pub slice_latches: usize,
    /// AND gates of the slice the property was checked on.
    pub slice_gates: usize,
    /// Caveat attached to the outcome (e.g. the bounded-lasso note on an
    /// undecided liveness property, or an exhausted time budget).
    pub note: Option<String>,
    /// Engine provenance when the verdict came from outside the SAT
    /// cascade: `Some("fuzz")` marks a violation found by the pre-cascade
    /// stimulus fuzzer (replay-confirmed, then re-minimized).  Rendered
    /// only by [`VerificationReport::render_timed`], so
    /// [`VerificationReport::render`] stays byte-identical with the fuzz
    /// stage on or off.
    pub engine: Option<&'static str>,
    /// Aggregated SAT-solver counters across every engine stage that ran
    /// for this property (all zeros for cache hits and unchecked
    /// properties).  Rendered by [`VerificationReport::render_timed`];
    /// [`VerificationReport::render`] stays stats-free so cold and
    /// cache-warm runs stay byte-identical.
    pub stats: SolverStats,
    /// Search statistics of the pre-cascade stimulus fuzzer, when the fuzz
    /// stage ran for this property (safety assertions with `fuzz.enabled`).
    /// Rendered only by [`VerificationReport::render_timed`].
    pub fuzz: Option<FuzzStats>,
}

/// The report of a full verification run.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// DUT name.
    pub dut: String,
    /// Per-property results.
    pub results: Vec<PropertyResult>,
    /// Total wall-clock time.
    pub total_runtime: Duration,
    /// Number of AIG latches in the compiled model (design + testbench).
    pub model_latches: usize,
    /// Number of AIG and-gates in the compiled model.
    pub model_gates: usize,
    /// Design-lint findings (empty when the lint is off or clean).
    pub lint: LintReport,
    /// Proof-cache counters for this run (hits/misses/insertions/rejected,
    /// plus verdicts loaded from disk); `None` when the run had no cache.
    /// Rendered only by [`VerificationReport::render_timed`].
    pub cache_stats: Option<CacheStats>,
    /// The merged telemetry of the run (spans, counters, gauges); `None`
    /// unless [`CheckOptions::telemetry`] requested collection.
    pub telemetry: Option<TelemetryReport>,
}

impl VerificationReport {
    /// Properties that were actually checked (assertions and covers).
    pub fn checked(&self) -> impl Iterator<Item = &PropertyResult> {
        self.results
            .iter()
            .filter(|r| !matches!(r.status, PropertyStatus::NotChecked(_)))
    }

    /// Number of violated properties.
    pub fn violations(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.status.is_violation())
            .count()
    }

    /// Number of proven properties.
    pub fn proofs(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.status, PropertyStatus::Proven(_)))
            .count()
    }

    /// Proof rate over checked assertion properties (the paper's "100%
    /// proof" metric): proven / (proven + violated + unknown), ignoring
    /// covers and assumptions.
    pub fn proof_rate(&self) -> f64 {
        let assertions: Vec<&PropertyResult> = self
            .results
            .iter()
            .filter(|r| r.directive == Directive::Assert)
            .filter(|r| !matches!(r.status, PropertyStatus::NotChecked(_)))
            .collect();
        if assertions.is_empty() {
            return 1.0;
        }
        let proven = assertions
            .iter()
            .filter(|r| matches!(r.status, PropertyStatus::Proven(_)))
            .count();
        proven as f64 / assertions.len() as f64
    }

    /// The first counterexample found, if any.
    pub fn first_violation(&self) -> Option<&PropertyResult> {
        self.results.iter().find(|r| r.status.is_violation())
    }

    fn name_width(&self) -> usize {
        self.results
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(8)
            .max(8)
    }

    fn render_row(&self, out: &mut String, r: &PropertyResult, name_width: usize, prefix: &str) {
        match &r.status {
            PropertyStatus::Proven(proof) => out.push_str(&format!(
                "  {:name_width$}{prefix}  {} [{}]",
                r.name,
                r.status,
                proof.describe()
            )),
            status => out.push_str(&format!("  {:name_width$}{prefix}  {status}", r.name)),
        }
        if !matches!(r.status, PropertyStatus::NotChecked(_)) {
            out.push_str(&format!(
                "  (cone {} latches, {} gates)",
                r.slice_latches, r.slice_gates
            ));
        }
        out.push('\n');
        if let Some(note) = &r.note {
            // The note row aligns under the status column (the prefix — the
            // runtime in the timed rendering — is padded out, not repeated).
            let pad = name_width + prefix.chars().count();
            out.push_str(&format!("  {:pad$}  note: {note}\n", ""));
        }
    }

    /// Renders a human-readable summary table.
    ///
    /// The output is fully deterministic — property order, statuses, proof
    /// artifacts and slice sizes, but no wall-clock figures — so two runs of
    /// the same testbench render byte-identically regardless of the worker
    /// count or thread interleaving.  Use [`VerificationReport::render_timed`]
    /// for the variant with runtimes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Verification report for `{}` ({} latches, {} gates)\n",
            self.dut, self.model_latches, self.model_gates
        ));
        let name_width = self.name_width();
        for r in &self.results {
            self.render_row(&mut out, r, name_width, "");
        }
        if !self.lint.is_empty() {
            out.push_str(&self.lint.render());
        }
        out.push_str(&format!(
            "proof rate {:.0}%, {} violation(s)\n",
            self.proof_rate() * 100.0,
            self.violations(),
        ));
        out
    }

    /// Like [`VerificationReport::render`], with per-property and total
    /// wall-clock times plus per-property solver counters added (and
    /// therefore not byte-stable across runs).
    pub fn render_timed(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Verification report for `{}` ({} latches, {} gates)\n",
            self.dut, self.model_latches, self.model_gates
        ));
        let name_width = self.name_width();
        for r in &self.results {
            let prefix = format!("  {:>8.1?}", r.runtime);
            self.render_row(&mut out, r, name_width, &prefix);
            if let Some(engine) = r.engine {
                let pad = name_width + prefix.chars().count();
                out.push_str(&format!("  {:pad$}  engine: {engine}\n", ""));
            }
            if r.stats != SolverStats::default() {
                let pad = name_width + prefix.chars().count();
                let s = r.stats;
                out.push_str(&format!(
                    "  {:pad$}  solver: {} conflicts, {} decisions, {} propagations, \
                     {} restarts, {} learnt ({} minimized lits, {} deleted)\n",
                    "",
                    s.conflicts,
                    s.decisions,
                    s.propagations,
                    s.restarts,
                    s.learnt,
                    s.minimized_lits,
                    s.learnt_deleted,
                ));
            }
            if let Some(fz) = &r.fuzz {
                let pad = name_width + prefix.chars().count();
                out.push_str(&format!(
                    "  {:pad$}  fuzz: {} round(s), {} cycles, {} lanes retired, \
                     {} redraw(s), {} replay(s) ({} confirmed)\n",
                    "",
                    fz.rounds,
                    fz.cycles,
                    fz.lanes_retired,
                    fz.redraws,
                    fz.replays,
                    fz.confirmed,
                ));
            }
        }
        if !self.lint.is_empty() {
            out.push_str(&self.lint.render());
        }
        if let Some(cs) = &self.cache_stats {
            out.push_str(&format!(
                "cache: {} hit(s), {} miss(es), {} insertion(s), {} rejected, {} loaded\n",
                cs.hits, cs.misses, cs.insertions, cs.rejected, cs.loaded
            ));
        }
        if let Some(t) = &self.telemetry {
            out.push_str(&t.render_summary());
        }
        out.push_str(&format!(
            "proof rate {:.0}%, {} violation(s), total {:.1?}\n",
            self.proof_rate() * 100.0,
            self.violations(),
            self.total_runtime
        ));
        out
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Elaborates `source`, compiles `testbench` and checks every property.
///
/// # Errors
///
/// Returns an error when elaboration or property compilation fails; checking
/// itself never fails (inconclusive results are reported as
/// [`PropertyStatus::Unknown`]).
pub fn verify(
    source: &str,
    testbench: &FormalTestbench,
    options: &CheckOptions,
) -> Result<VerificationReport> {
    let run_telemetry = Telemetry::new(&options.telemetry);
    let _scope = telemetry::enter(&run_telemetry);
    let frontend = frontend_guard(options);
    let file = {
        let _span = telemetry::span("parse", &testbench.dut_name);
        svparse::parse(source)
            .map_err(|e| crate::elab::ElabError::new(format!("parse error: {e}")))?
    };
    frontend_check(&frontend, "parse")?;
    let mut elab_options = options.elab.clone();
    if elab_options.top.is_none() {
        elab_options.top = Some(testbench.dut_name.clone());
    }
    let design = elaborate_budgeted(&file, &elab_options, &frontend)?;
    frontend_check(&frontend, "elaboration")?;
    verify_elaborated_inner(
        &design,
        testbench,
        Some(source),
        options,
        &run_telemetry,
        &frontend,
    )
}

/// Like [`verify`], but for an already elaborated design.  Without the
/// source text the lint still runs, but its source-dependent passes (width
/// mismatches, dead signals, unreachable enum states) are skipped and
/// findings carry no line/column; prefer
/// [`verify_elaborated_with_source`] when the RTL text is at hand.
pub fn verify_elaborated(
    design: &ElabDesign,
    testbench: &FormalTestbench,
    options: &CheckOptions,
) -> Result<VerificationReport> {
    verify_elaborated_with_source(design, testbench, None, options)
}

/// Like [`verify_elaborated`], with the original RTL source enabling the
/// full design lint (source-located findings with caret snippets).
pub fn verify_elaborated_with_source(
    design: &ElabDesign,
    testbench: &FormalTestbench,
    source: Option<&str>,
    options: &CheckOptions,
) -> Result<VerificationReport> {
    let run_telemetry = Telemetry::new(&options.telemetry);
    let _scope = telemetry::enter(&run_telemetry);
    let frontend = frontend_guard(options);
    verify_elaborated_inner(
        design,
        testbench,
        source,
        options,
        &run_telemetry,
        &frontend,
    )
}

/// Creates the front-end deadline guard from
/// [`CheckOptions::frontend_timeout`] (an unarmed interrupt when no budget
/// is configured, so polling it is free).
fn frontend_guard(options: &CheckOptions) -> Interrupt {
    Interrupt::new(
        options
            .frontend_timeout
            .and_then(|limit| Instant::now().checked_add(limit)),
        None,
        None,
    )
}

/// Fails the run when the front-end budget expired during `phase`.  Called
/// between the front-end phases (and, through
/// [`crate::elab::elaborate_budgeted`], inside elaboration's own loops) so
/// a stalled front end surfaces as a named error instead of an unbounded
/// hang.
fn frontend_check(guard: &Interrupt, phase: &str) -> Result<()> {
    if guard.poll().is_some() {
        return Err(crate::elab::ElabError::new(format!(
            "front-end deadline exceeded during {phase}"
        )));
    }
    Ok(())
}

/// The shared body of [`verify`] and [`verify_elaborated_with_source`].
/// Assumes the caller has already entered `run_telemetry`'s recording scope
/// on this thread (so the orchestrating thread owns trace track 0).
fn verify_elaborated_inner(
    design: &ElabDesign,
    testbench: &FormalTestbench,
    source: Option<&str>,
    options: &CheckOptions,
    run_telemetry: &Telemetry,
    frontend: &Interrupt,
) -> Result<VerificationReport> {
    let start = Instant::now();
    let compiled = compile(design, testbench)?;
    frontend_check(frontend, "compilation")?;

    // Level-1 static analysis between compile and the cascade: error
    // findings (multiply-driven signals, or anything under deny-warnings)
    // stop the run before any engine spends time on a broken design.
    let lint = crate::lint::run(design, &compiled, testbench, source, &options.lint);
    if lint.has_errors() {
        return Err(crate::elab::ElabError::new(format!(
            "design lint failed with {} error(s):\n{}",
            lint.error_count(),
            lint.render()
        )));
    }
    frontend_check(frontend, "lint")?;

    let tasks = build_tasks(&compiled, options);
    // The effective proof cache: an explicit in-process handle wins;
    // otherwise a configured cache directory opens a disk-backed cache for
    // this run (flushed below, so the next process reloads the verdicts).
    let cache = options
        .parallel
        .cache
        .clone()
        .or_else(|| options.cache.dir.as_ref().map(ProofCache::open));
    // Snapshot the cache counters so the report carries this run's delta
    // even when the handle is a long-lived in-process cache shared across
    // runs (`loaded` stays absolute — it describes the open).
    let cache_base = cache.as_ref().map(|c| c.stats());
    let seeds = build_seed_plans(&tasks, &options.sharing);
    let ctx = TaskCtx {
        options,
        cache,
        cancel: Arc::new(AtomicBool::new(false)),
        explicit_memo: Mutex::new(HashMap::new()),
        pools: SharedPools::new(),
        seeds,
    };

    // Register the robustness counters up front so a healthy run's
    // telemetry still carries them (with zeros): their *absence* would be
    // indistinguishable from "fault containment not compiled in".
    telemetry::register_counter("robustness.interrupts");
    telemetry::register_counter("robustness.timeouts");
    telemetry::register_counter("robustness.panics_caught");

    // Run every property task on the worker pool; statuses are deterministic
    // (each engine is single-threaded on a fixed slice), so only runtimes
    // depend on the interleaving.  Each task runs under its own interrupt
    // handle (deadline from `property_timeout` plus the shared cancellation
    // flag, polled inside every engine loop) and inside `catch_unwind`, so
    // a stalled or panicking engine degrades that one property — the run
    // always comes back with a complete report.
    let threads = options.parallel.effective_threads();
    let names: Vec<String> = compiled
        .properties
        .iter()
        .map(|p| p.property.full_name())
        .collect();
    let outcomes = run_ordered(&tasks, threads, &ctx.cancel, run_telemetry, |i, task| {
        let _task_span = telemetry::span("task", &names[i]);
        let t0 = Instant::now();
        let deadline = options
            .parallel
            .property_timeout
            .and_then(|limit| Instant::now().checked_add(limit));
        let interrupt = Interrupt::new(deadline, None, Some(ctx.cancel.clone()));
        interrupt::set_task_context(&names[i], interrupt.clone());
        let outcome = match catch_unwind(AssertUnwindSafe(|| run_task(i, task, &ctx, &interrupt))) {
            Ok(outcome) => outcome,
            Err(payload) => {
                telemetry::count("robustness.panics_caught", 1);
                TaskOutcome::new(
                    PropertyStatus::Error {
                        engine: interrupt::current_engine(),
                        message: panic_message(payload.as_ref()),
                    },
                    Some(
                        "engine panic isolated to this property; other verdicts are unaffected"
                            .to_string(),
                    ),
                    SolverStats::default(),
                )
            }
        };
        interrupt::clear_task_context();
        match interrupt.triggered() {
            Some(InterruptReason::Timeout) => {
                telemetry::count("robustness.interrupts", 1);
                telemetry::count("robustness.timeouts", 1);
            }
            Some(_) => telemetry::count("robustness.interrupts", 1),
            None => {}
        }
        if ctx.options.parallel.stop_on_violation && outcome.status.is_violation() {
            ctx.cancel.store(true, Ordering::Relaxed);
        }
        (outcome, t0.elapsed())
    });

    // Assembly in annotation order, independent of completion order.
    let mut results = Vec::with_capacity(tasks.len());
    for ((prop, task), slot) in compiled.properties.iter().zip(&tasks).zip(outcomes) {
        let (outcome, runtime) = slot.unwrap_or_else(|| {
            (
                TaskOutcome::new(
                    PropertyStatus::Unknown,
                    Some("not started: the shared cancellation flag was raised".to_string()),
                    SolverStats::default(),
                ),
                Duration::ZERO,
            )
        });
        results.push(PropertyResult {
            name: prop.property.full_name(),
            directive: prop.property.directive,
            class: prop.property.class,
            status: outcome.status,
            runtime,
            slice_latches: task.cone_latches,
            slice_gates: task.cone_gates,
            note: outcome.note,
            engine: outcome.engine,
            stats: outcome.stats,
            fuzz: outcome.fuzz,
        });
    }

    // Spill the cache to disk (no-op for in-memory caches).  Failures are
    // non-fatal: the cache is advisory and the report is already complete.
    if let Some(cache) = &ctx.cache {
        let _ = cache.flush();
    }

    // This run's cache counter delta, surfaced on the report and fed into
    // the metrics registry.
    let cache_stats = ctx.cache.as_ref().map(|c| match &cache_base {
        Some(base) => c.stats().since(base),
        None => c.stats(),
    });
    if let Some(delta) = &cache_stats {
        telemetry::count("cache.hits", delta.hits);
        telemetry::count("cache.misses", delta.misses);
        telemetry::count("cache.insertions", delta.insertions);
        telemetry::count("cache.rejected", delta.rejected);
        telemetry::count("cache.loaded", delta.loaded);
    }

    // Waveform output: one VCD per counterexample/witness trace, under the
    // stable on-disk naming scheme.  Best-effort like the cache — an I/O
    // failure must not fail a completed verification run.
    if let Some(dir) = &options.vcd.dir {
        let _ = std::fs::create_dir_all(dir);
        for r in &results {
            if let Some(trace) = r.status.trace() {
                let path = dir.join(crate::vcd::file_name(&testbench.dut_name, &r.name));
                let text = crate::vcd::render(trace, &testbench.dut_name, &r.name);
                let _ = std::fs::write(path, text);
            }
        }
    }

    // Merge the telemetry buffers into the final report and write the
    // sinks (best-effort, like the cache and VCD output).
    let telemetry_report = if run_telemetry.is_active() {
        let mut verdicts = VerdictCounts::default();
        let mut slice_latches = 0;
        let mut slice_gates = 0;
        for r in &results {
            match &r.status {
                PropertyStatus::Proven(_) => verdicts.proven += 1,
                PropertyStatus::Violated(_) => verdicts.violated += 1,
                PropertyStatus::Covered(_) => verdicts.covered += 1,
                PropertyStatus::Unreachable => verdicts.unreachable += 1,
                PropertyStatus::Unknown => verdicts.unknown += 1,
                PropertyStatus::NotChecked(_) => verdicts.not_checked += 1,
                PropertyStatus::Error { .. } => verdicts.errors += 1,
            }
            if !matches!(r.status, PropertyStatus::NotChecked(_)) {
                slice_latches += r.slice_latches;
                slice_gates += r.slice_gates;
            }
        }
        run_telemetry.finish(RunSummary {
            dut: testbench.dut_name.clone(),
            properties: results.len(),
            verdicts,
            model_latches: compiled.model.aig.num_latches(),
            model_gates: compiled.model.aig.num_ands(),
            slice_latches,
            slice_gates,
        })
    } else {
        None
    };
    if let Some(report) = &telemetry_report {
        if let Some(path) = &options.telemetry.trace_path {
            let _ = std::fs::write(path, report.to_chrome_trace());
        }
        if let Some(path) = &options.telemetry.json_path {
            let _ = std::fs::write(path, report.to_json());
        }
    }

    Ok(VerificationReport {
        dut: testbench.dut_name.clone(),
        results,
        total_runtime: start.elapsed(),
        model_latches: compiled.model.aig.num_latches(),
        model_gates: compiled.model.aig.num_ands(),
        lint,
        cache_stats,
        telemetry: telemetry_report,
    })
}

/// One property as an independent verification task: the (sliced) model it
/// runs on, where its target sits in that model, and the slice fingerprint
/// used for engine sharing and proof caching.
struct PropertyTask {
    kind: TaskKind,
    cone_latches: usize,
    cone_gates: usize,
}

enum TaskKind {
    /// Resolved at compile time (assumptions, X-prop checks).
    Done(PropertyStatus),
    /// Safety assertion `model.bads[index]`.
    Safety {
        model: Arc<Model>,
        index: usize,
        fp: Fingerprint,
    },
    /// Cover target `model.covers[index]`.
    Cover {
        model: Arc<Model>,
        index: usize,
        fp: Fingerprint,
    },
    /// Liveness obligation `base.liveness[index]`, checked on its
    /// liveness-to-safety transform (`l2s.model.bads[index]`); the explicit
    /// engine's SCC analysis runs on `base` with pending monitors.
    Liveness {
        base: Arc<Model>,
        l2s: Arc<LivenessSafetyModel>,
        index: usize,
        fp: Fingerprint,
    },
}

/// Builds one task per property.  With slicing enabled (the default) each
/// checked property gets its cone-of-influence slice; content-identical
/// slices share one model allocation (and thereby one explicit-engine memo
/// entry).  With the optimizer additionally enabled (also the default) each
/// distinct slice is run through the [`crate::opt`] pass — constant
/// sweeping, sequential/combinational equivalence sweeping, dead-node
/// elimination — before any engine sees it; liveness slices are optimized
/// first, then transformed via liveness-to-safety, and the product is
/// optimized again (the order keeps the L2S snapshot sound: the transform
/// always runs on the model the snapshots will be compared against).  With
/// slicing disabled every task points at the full compiled model,
/// preserving the pre-orchestrator cascade behaviour exactly; the
/// optimizer never runs on that path.
fn build_tasks(compiled: &CompiledTestbench, options: &CheckOptions) -> Vec<PropertyTask> {
    let slice_on = options.parallel.slice;
    let opt_on = options.parallel.opt;
    let mut shared_full: Option<(Arc<Model>, Fingerprint)> = None;
    let mut shared_l2s: Option<Arc<LivenessSafetyModel>> = None;
    // Keyed by the *raw* slice fingerprint so content-identical slices are
    // optimized at most once; the stored fingerprint is the optimized
    // model's own (they coincide when the optimizer is off).
    #[allow(clippy::type_complexity)]
    let mut slices: HashMap<Fingerprint, (Arc<Model>, Fingerprint)> = HashMap::new();
    let mut l2s_slices: HashMap<Fingerprint, Arc<LivenessSafetyModel>> = HashMap::new();

    let full = |shared_full: &mut Option<(Arc<Model>, Fingerprint)>| {
        shared_full
            .get_or_insert_with(|| {
                let model = Arc::new(compiled.model.clone());
                let fp = fingerprint(&model);
                (model, fp)
            })
            .clone()
    };
    let sliced = |slices: &mut HashMap<Fingerprint, (Arc<Model>, Fingerprint)>,
                  slice: crate::coi::Slice| {
        let raw = slice.fingerprint;
        slices
            .entry(raw)
            .or_insert_with(|| {
                if opt_on {
                    let (model, fp) = crate::opt::optimize_with_fingerprint(&slice.model);
                    (Arc::new(model), fp)
                } else {
                    (Arc::new(slice.model), raw)
                }
            })
            .clone()
    };

    compiled
        .properties
        .iter()
        .map(|prop| {
            let kind = match &prop.kind {
                CompiledKind::Skipped(reason) => TaskKind::Done(PropertyStatus::NotChecked(reason)),
                CompiledKind::Constraint => TaskKind::Done(PropertyStatus::NotChecked(
                    "assumption (constrains the environment)",
                )),
                CompiledKind::Fairness => {
                    TaskKind::Done(PropertyStatus::NotChecked("fairness assumption"))
                }
                CompiledKind::Safety(i) => {
                    if slice_on {
                        let slice = cone_of_influence(&compiled.model, SliceTarget::Bad(*i));
                        let (model, fp) = sliced(&mut slices, slice);
                        TaskKind::Safety {
                            model,
                            index: 0,
                            fp,
                        }
                    } else {
                        let (model, fp) = full(&mut shared_full);
                        TaskKind::Safety {
                            model,
                            index: *i,
                            fp,
                        }
                    }
                }
                CompiledKind::Cover(i) => {
                    if slice_on {
                        let slice = cone_of_influence(&compiled.model, SliceTarget::Cover(*i));
                        let (model, fp) = sliced(&mut slices, slice);
                        TaskKind::Cover {
                            model,
                            index: 0,
                            fp,
                        }
                    } else {
                        let (model, fp) = full(&mut shared_full);
                        TaskKind::Cover {
                            model,
                            index: *i,
                            fp,
                        }
                    }
                }
                CompiledKind::Liveness(i) => {
                    if slice_on {
                        let slice = cone_of_influence(&compiled.model, SliceTarget::Liveness(*i));
                        let raw = slice.fingerprint;
                        let (base, fp) = sliced(&mut slices, slice);
                        // The L2S product of the (optimized) base is itself
                        // a plain safety model, so it gets its own opt pass:
                        // the snapshot/monitor plumbing often pins latches
                        // the original cone had already lost.
                        let l2s = l2s_slices
                            .entry(raw)
                            .or_insert_with(|| {
                                let _span = telemetry::span("l2s", &prop.property.full_name());
                                let product = base.to_liveness_safety();
                                if opt_on {
                                    Arc::new(LivenessSafetyModel {
                                        model: crate::opt::optimize(&product.model).model,
                                        property_names: product.property_names,
                                    })
                                } else {
                                    Arc::new(product)
                                }
                            })
                            .clone();
                        TaskKind::Liveness {
                            base,
                            l2s,
                            index: 0,
                            fp,
                        }
                    } else {
                        let (base, fp) = full(&mut shared_full);
                        let l2s = shared_l2s
                            .get_or_insert_with(|| Arc::new(base.to_liveness_safety()))
                            .clone();
                        TaskKind::Liveness {
                            base,
                            l2s,
                            index: *i,
                            fp,
                        }
                    }
                }
            };
            let (cone_latches, cone_gates) = match &kind {
                TaskKind::Done(_) => (0, 0),
                TaskKind::Safety { model, .. } | TaskKind::Cover { model, .. } => {
                    (model.aig.num_latches(), model.aig.num_ands())
                }
                TaskKind::Liveness { base, .. } => (base.aig.num_latches(), base.aig.num_ands()),
            };
            PropertyTask {
                kind,
                cone_latches,
                cone_gates,
            }
        })
        .collect()
}

/// Builds the deterministic cross-property seed plan: each safety task
/// with a high-overlap *earlier* safety task (annotation order) on a
/// *distinct* slice gets phase/activity hints on the state elements the
/// two cones share, so it starts its race warm instead of cold.  The plan
/// derives purely from slice structure — signal names and latch reset
/// values — never from runtime solver state or completion order, so it
/// (and the `sharing.seeded` counter) is identical for sequential and
/// parallel runs at any thread count.  Identical fingerprints are skipped
/// as donors: those tasks already share a clause pool, which is strictly
/// stronger than seeding.
fn build_seed_plans(
    tasks: &[PropertyTask],
    sharing: &SharingOptions,
) -> Vec<HashMap<usize, SeedHint>> {
    let mut plans = vec![HashMap::new(); tasks.len()];
    if !sharing.enabled() {
        return plans;
    }
    let sigs: Vec<(usize, Fingerprint, &Arc<Model>, Vec<u64>)> = tasks
        .iter()
        .enumerate()
        .filter_map(|(i, t)| match &t.kind {
            TaskKind::Safety { model, fp, .. } => Some((i, *fp, model, state_signature(model))),
            _ => None,
        })
        .collect();
    for (pos, (i, fp, model, sig)) in sigs.iter().enumerate() {
        // Best earlier donor by Jaccard overlap; strict `>` keeps the
        // earliest donor on ties, so the plan is a pure function of the
        // task list.
        let mut best: Option<(f64, usize)> = None;
        for (donor_pos, (_, donor_fp, _, donor_sig)) in sigs[..pos].iter().enumerate() {
            if donor_fp == fp {
                continue;
            }
            let overlap = signature_overlap(sig, donor_sig);
            if overlap >= sharing.seed_overlap && best.is_none_or(|(b, _)| overlap > b) {
                best = Some((overlap, donor_pos));
            }
        }
        if let Some((_, donor_pos)) = best {
            plans[*i] = crate::coi::seed_hints_from(model, &sigs[donor_pos].3);
        }
    }
    plans
}

/// Shared, immutable context of one verification run.
struct TaskCtx<'a> {
    options: &'a CheckOptions,
    /// The effective proof cache of this run (explicit in-process handle or
    /// a disk-backed cache opened from [`CacheOptions::dir`]).
    cache: Option<ProofCache>,
    /// Raised by `stop_on_violation` (or future external cancellation):
    /// tasks not yet started report `Unknown` instead of running; started
    /// tasks observe the flag through their interrupt handle and wind down
    /// at the next poll.  Shared with every task's [`Interrupt`], hence the
    /// `Arc`.
    cancel: Arc<AtomicBool>,
    /// Explicit-state engines shared across tasks with content-identical
    /// models; the per-fingerprint mutex serializes construction without
    /// holding the map lock during exploration.  The memo records only
    /// *completed* explorations: an exploration cut short by one task's
    /// interrupt (or unwound by a panic) is not cached, so it cannot
    /// degrade sibling properties that still have budget.
    #[allow(clippy::type_complexity)]
    explicit_memo: Mutex<HashMap<Fingerprint, Arc<Mutex<ExplicitMemo>>>>,
    /// Learnt-clause pools shared across tasks and racers, keyed by slice
    /// fingerprint and frame kind.  Identical fingerprints imply identical
    /// models and hence identical deterministic variable numbering, which
    /// is what makes verbatim clause transfer sound; distinct cones never
    /// share a pool (they exchange phase/activity *seeds* instead).  Only
    /// consulted when [`CheckOptions::sharing`] is enabled.
    pools: SharedPools,
    /// Per-task phase/activity seed plans, indexed in annotation order
    /// (empty maps for tasks without a high-overlap donor).  Built once,
    /// up front, from slice structure alone — see [`build_seed_plans`].
    seeds: Vec<HashMap<usize, SeedHint>>,
}

/// Memoization state of one fingerprint's shared explicit-state engine.
#[derive(Default)]
enum ExplicitMemo {
    /// Not explored yet (or a previous attempt was interrupted/panicked
    /// and must not be trusted): the next task with budget explores.
    #[default]
    Pending,
    /// Exploration ran to its natural end (`None`: the engine declined or
    /// exceeded its own limits — a definitive, cacheable answer).
    Done(Option<Arc<ExplicitBundle>>),
}

/// The explicit-state engine together with the monitor literals needed for
/// liveness queries (explored once per distinct model fingerprint).
struct ExplicitBundle {
    engine: ExplicitEngine,
    assert_pendings: Vec<Lit>,
    fair_pendings: Vec<Lit>,
}

/// Returns the shared explicit-engine bundle for `model`, building it on
/// first use.  `None` when the engine is disabled, exploration exceeded its
/// limits, or `interrupt` fired mid-exploration.  Completed explorations
/// (including definitive "declined/exceeded" answers) are memoized so the
/// cost is paid at most once per fingerprint; interrupted ones are not —
/// the truncated state space must never answer a sibling property's query.
fn explicit_bundle(
    ctx: &TaskCtx<'_>,
    fp: Fingerprint,
    model: &Model,
    interrupt: &Interrupt,
) -> Option<Arc<ExplicitBundle>> {
    if ctx.options.disable_explicit {
        return None;
    }
    let cell = {
        let mut memo = ctx
            .explicit_memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        memo.entry(fp).or_default().clone()
    };
    // The per-fingerprint lock is held across exploration so concurrent
    // tasks over the same slice wait for one exploration instead of racing
    // their own.  Recover from poisoning: a panic that unwound a previous
    // attempt left the state `Pending` (it is only ever set after a
    // completed exploration), so retrying here is sound.
    let mut state = cell.lock().unwrap_or_else(PoisonError::into_inner);
    if let ExplicitMemo::Done(bundle) = &*state {
        return bundle.clone();
    }
    let (augmented, assert_pendings, fair_pendings) = model.with_pending_monitors();
    let engine = ExplicitEngine::explore_budgeted(&augmented, &ctx.options.explicit, interrupt);
    if engine.as_ref().is_some_and(ExplicitEngine::was_interrupted) {
        // This task ran out of budget mid-exploration; leave the memo
        // `Pending` so a sibling with budget explores from scratch.
        return None;
    }
    let bundle = engine.map(|engine| {
        Arc::new(ExplicitBundle {
            engine,
            assert_pendings,
            fair_pendings,
        })
    });
    *state = ExplicitMemo::Done(bundle.clone());
    bundle
}

/// The "undecided" note for an interrupted property, naming the cascade
/// stage that was running when the interrupt was observed (read from the
/// task-local engine tag, which every stage sets on entry).
fn interrupt_unknown(reason: InterruptReason) -> (PropertyStatus, Option<String>) {
    let engine = interrupt::current_engine();
    let note = match reason {
        InterruptReason::Cancelled => {
            format!("undecided: cancelled during {engine} (the run's cancellation flag was raised)")
        }
        InterruptReason::Timeout | InterruptReason::Budget => {
            format!("undecided: budget exhausted in {engine}")
        }
    };
    (PropertyStatus::Unknown, Some(note))
}

/// Renders a caught panic payload (`String` and `&str` payloads verbatim,
/// anything else as a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Converts a PDR invariant into the report-facing proof artifact.
fn invariant_proof(invariant: &crate::pdr::Invariant, aig: &crate::aig::Aig) -> Proof {
    Proof::Invariant {
        clauses: invariant.render(aig),
        frames: invariant.frames_explored,
    }
}

/// Converts a validated cache hit into a property status.
fn cached_status(verdict: CachedVerdict, model: &Model) -> PropertyStatus {
    match verdict {
        CachedVerdict::Induction { depth } => PropertyStatus::Proven(Proof::Induction { depth }),
        CachedVerdict::Invariant(invariant) => {
            PropertyStatus::Proven(invariant_proof(&invariant, &model.aig))
        }
        CachedVerdict::Reachability => PropertyStatus::Proven(Proof::Reachability),
        CachedVerdict::Unreachable => PropertyStatus::Unreachable,
        CachedVerdict::Violated(trace) => PropertyStatus::Violated(trace),
        CachedVerdict::Covered(trace) => PropertyStatus::Covered(trace),
    }
}

/// The single cache-insert funnel of every task.  A task whose interrupt
/// has fired never publishes: a cancelled portfolio racer, a task wound
/// down by the run's cancellation flag, or a verdict whose trace
/// re-minimization was cut short may all be correct-but-partial, and the
/// cache must only ever carry artifacts produced with full budget (an
/// interrupted minimization, for example, would cache a non-canonical
/// trace and make a later cache-hit run render differently from a fresh
/// one).  The cache is advisory, so skipping the insert costs only a
/// recomputation.
fn store(
    cache: Option<&ProofCache>,
    key: &CacheKey,
    outcome: CachedOutcome,
    interrupt: &Interrupt,
) {
    if interrupt.triggered().is_some() {
        return;
    }
    if let Some(cache) = cache {
        cache.store(key.clone(), outcome);
    }
}

/// The engine-provenance tag of verdicts produced by the pre-cascade
/// stimulus fuzzer.
pub const FUZZ_ENGINE: &str = "fuzz";

/// The outcome of one property task, before assembly into a
/// [`PropertyResult`] (which adds the name/class/slice context and the
/// wall-clock runtime).
struct TaskOutcome {
    status: PropertyStatus,
    note: Option<String>,
    stats: SolverStats,
    engine: Option<&'static str>,
    fuzz: Option<FuzzStats>,
}

impl TaskOutcome {
    fn new(status: PropertyStatus, note: Option<String>, stats: SolverStats) -> TaskOutcome {
        TaskOutcome {
            status,
            note,
            stats,
            engine: None,
            fuzz: None,
        }
    }
}

fn run_task(
    task_index: usize,
    task: &PropertyTask,
    ctx: &TaskCtx<'_>,
    interrupt: &Interrupt,
) -> TaskOutcome {
    match &task.kind {
        TaskKind::Done(status) => TaskOutcome::new(status.clone(), None, SolverStats::default()),
        TaskKind::Safety { model, index, fp } => {
            check_safety_task(model, *index, *fp, &ctx.seeds[task_index], ctx, interrupt)
        }
        TaskKind::Cover { model, index, fp } => {
            let (status, note, stats) = check_cover_task(model, *index, *fp, ctx, interrupt);
            TaskOutcome::new(status, note, stats)
        }
        TaskKind::Liveness {
            base,
            l2s,
            index,
            fp,
        } => {
            let (status, note, stats) = check_liveness_task(base, l2s, *index, *fp, ctx, interrupt);
            TaskOutcome::new(status, note, stats)
        }
    }
}

/// Canonicalizes a safety counterexample to the *minimal* depth via a
/// bounded BMC call (guaranteed SAT at or below the witnessed depth).  PDR
/// and the explicit engine return correct but not necessarily shortest
/// traces, and the fuzzer's hits land wherever the stimulus happened to
/// strike; re-minimizing makes the reported trace length a function of the
/// model alone, so `render()` is byte-identical no matter which engine got
/// there first.  A no-op under `disable_bmc` (the ablation configurations
/// keep each engine's raw trace).  An interrupt mid-minimization keeps the
/// original (unminimized but correct) trace — the verdict is never lost.
fn minimize_safety_cex(
    model: &Model,
    index: usize,
    trace: Trace,
    options: &CheckOptions,
    stats: &mut SolverStats,
    interrupt: &Interrupt,
) -> Trace {
    if options.disable_bmc || trace.is_empty() {
        return trace;
    }
    let _span = telemetry::span_detail(
        "engine.minimize",
        &model.bads[index].name,
        Some("bmc"),
        None,
    );
    let bound = BmcOptions {
        max_depth: trace.len() - 1,
        max_induction: 0,
    };
    let (result, s) = check_safety_budgeted(model, index, &bound, options.solver, interrupt);
    *stats += s;
    match result {
        SafetyResult::Violated(minimal) => minimal,
        // Unreachable (a concrete witness exists at this depth) and
        // Interrupted both fall back to the witnessed trace: never let the
        // minimizer lose the verdict.
        _ => trace,
    }
}

fn check_safety_task(
    model: &Model,
    index: usize,
    fp: Fingerprint,
    seeds: &HashMap<usize, SeedHint>,
    ctx: &TaskCtx<'_>,
    interrupt: &Interrupt,
) -> TaskOutcome {
    let options = ctx.options;
    let cache = ctx.cache.as_ref();
    let bad = model.bads[index].lit;
    let key = CacheKey {
        fingerprint: fp,
        property: model.bads[index].name.clone(),
    };
    let mut stats = SolverStats::default();
    let mut fuzz_stats: Option<FuzzStats> = None;
    // Every return site funnels through this so the fuzzer's search
    // statistics survive no matter which engine produced the verdict.
    macro_rules! done {
        ($status:expr, $note:expr, $engine:expr) => {
            return TaskOutcome {
                status: $status,
                note: $note,
                stats,
                engine: $engine,
                fuzz: fuzz_stats,
            }
        };
    }
    if let Some(cache) = cache {
        let hit = {
            let _span = telemetry::span_detail("cache.lookup", &key.property, None, Some(fp));
            cache.lookup(&key, model, bad)
        };
        if let Some(verdict) = hit {
            done!(cached_status(verdict, model), None, None);
        }
    }
    // The simulation fuzzer runs before any SAT query: concrete 64-lane
    // stimulus over the slice, with every hit replay-confirmed.  The SAT
    // engines only ever see the survivors.  A confirmed hit is re-minimized
    // (see `minimize_safety_cex`) so the reported trace has the same
    // minimal length the fuzz-off cascade reports and `render()` stays
    // byte-identical with the stage on or off, for any seed.
    if options.fuzz.enabled {
        interrupt::set_current_engine(FUZZ_ENGINE);
        let (hit, fstats) = {
            let _span =
                telemetry::span_detail("engine.fuzz", &key.property, Some(FUZZ_ENGINE), Some(fp));
            fuzz_safety_budgeted(model, index, &options.fuzz, interrupt)
        };
        fuzz_stats = Some(fstats);
        if let Some(hit) = hit {
            let trace =
                minimize_safety_cex(model, index, hit.trace, options, &mut stats, interrupt);
            store(
                cache,
                &key,
                CachedOutcome::Violated(trace.clone()),
                interrupt,
            );
            done!(PropertyStatus::Violated(trace), None, Some(FUZZ_ENGINE));
        }
        if let Some(reason) = interrupt.triggered() {
            let (status, note) = interrupt_unknown(reason);
            done!(status, note, None);
        }
    }
    // Quick, shallow BMC first: it produces the shortest traces for the
    // common "bug within a few cycles" case at minimal cost.
    if !options.disable_bmc {
        interrupt::set_current_engine("bmc");
        let quick = BmcOptions {
            max_depth: options.quick_bmc_depth.min(options.bmc.max_depth),
            max_induction: 3.min(options.bmc.max_induction),
        };
        let (result, s) = {
            let _span = telemetry::span_detail("engine.bmc", &key.property, Some("bmc"), Some(fp));
            check_safety_budgeted(model, index, &quick, options.solver, interrupt)
        };
        stats += s;
        match result {
            SafetyResult::Proven { induction_depth } => {
                store(
                    cache,
                    &key,
                    CachedOutcome::Induction {
                        depth: induction_depth,
                    },
                    interrupt,
                );
                done!(
                    PropertyStatus::Proven(Proof::Induction {
                        depth: induction_depth,
                    }),
                    None,
                    None
                );
            }
            SafetyResult::Violated(trace) => {
                store(
                    cache,
                    &key,
                    CachedOutcome::Violated(trace.clone()),
                    interrupt,
                );
                done!(PropertyStatus::Violated(trace), None, None);
            }
            SafetyResult::Interrupted => {
                let (status, note) =
                    interrupt_unknown(interrupt.triggered().unwrap_or(InterruptReason::Timeout));
                done!(status, note, None);
            }
            SafetyResult::Unknown { .. } => {}
        }
    }
    // PDR: the unbounded engine that closes the reachability-dependent
    // proofs (counter-vs-state invariants) induction cannot, without the
    // explicit engine's exponential cliff.  When PDR itself is
    // inconclusive, its frame clauses — facts about states reachable
    // within k steps — are harvested as lemmas for the full-depth BMC
    // race below.
    let mut lemmas: Vec<FrameLemma> = Vec::new();
    if !options.disable_pdr {
        interrupt::set_current_engine("pdr");
        let (result, s, frame_lemmas) = {
            let _span = telemetry::span_detail("engine.pdr", &key.property, Some("pdr"), Some(fp));
            check_pdr_budgeted_lemmas(model, bad, &options.pdr, options.solver, interrupt)
        };
        lemmas = frame_lemmas;
        stats += s;
        match result {
            PdrResult::Proven(invariant) => {
                store(
                    cache,
                    &key,
                    CachedOutcome::Invariant {
                        clauses: invariant.clauses().to_vec(),
                        frames: invariant.frames_explored,
                    },
                    interrupt,
                );
                done!(
                    PropertyStatus::Proven(invariant_proof(&invariant, &model.aig)),
                    None,
                    None
                );
            }
            PdrResult::Violated(trace) => {
                let trace =
                    minimize_safety_cex(model, index, trace, options, &mut stats, interrupt);
                store(
                    cache,
                    &key,
                    CachedOutcome::Violated(trace.clone()),
                    interrupt,
                );
                done!(PropertyStatus::Violated(trace), None, None);
            }
            PdrResult::Interrupted => {
                let (status, note) =
                    interrupt_unknown(interrupt.triggered().unwrap_or(InterruptReason::Timeout));
                done!(status, note, None);
            }
            PdrResult::Unknown { .. } => {}
        }
    }
    interrupt::set_current_engine("explicit");
    if let Some(bundle) = explicit_bundle(ctx, fp, model, interrupt) {
        let _span =
            telemetry::span_detail("engine.explicit", &key.property, Some("explicit"), Some(fp));
        match bundle.engine.check_bad(bad) {
            ExplicitResult::Proven => {
                store(cache, &key, CachedOutcome::Reachability, interrupt);
                done!(PropertyStatus::Proven(Proof::Reachability), None, None);
            }
            ExplicitResult::Violated(trace) => {
                let trace =
                    minimize_safety_cex(model, index, trace, options, &mut stats, interrupt);
                store(
                    cache,
                    &key,
                    CachedOutcome::Violated(trace.clone()),
                    interrupt,
                );
                done!(PropertyStatus::Violated(trace), None, None);
            }
            ExplicitResult::Exceeded => {}
        }
    }
    if let Some(reason) = interrupt.poll() {
        let (status, note) = interrupt_unknown(reason);
        done!(status, note, None);
    }
    if options.disable_bmc {
        done!(PropertyStatus::Unknown, None, None);
    }
    // Exact engines unavailable: fall back to the full-depth bounded
    // engines.  This is where the hard properties land, so when the
    // clause-sharing portfolio is enabled (the default) the stage races
    // diverse solver configurations in deterministic lockstep — learnt
    // clauses flow through the fingerprint-keyed shared pools, PDR's
    // harvested lemmas prune the unrolling, and the cross-property seed
    // plan warms the search.  None of it can change the verdict: pools
    // only carry implied clauses, lemmas are reachability facts, and
    // seeds steer heuristics only.
    interrupt::set_current_engine("bmc");
    let sharing = &options.sharing;
    let (result, s, raced) = {
        let _span = telemetry::span_detail("engine.bmc", &key.property, Some("bmc"), Some(fp));
        if sharing.enabled() {
            let race = RaceOptions {
                configs: racer_configs(options.solver, sharing.racers),
                quantum: sharing.quantum,
                glue_bound: sharing.glue_bound,
                lemmas,
                seeds: seeds.clone(),
                pools: Some((
                    ctx.pools.pool(fp, PoolKind::Bmc, sharing.glue_bound),
                    ctx.pools.pool(fp, PoolKind::Step, sharing.glue_bound),
                )),
            };
            let (result, s, traffic) =
                race_safety_budgeted(model, index, &options.bmc, &race, interrupt);
            if traffic.exported > 0 {
                telemetry::count("sharing.exported", traffic.exported);
            }
            if traffic.imported > 0 {
                telemetry::count("sharing.imported", traffic.imported);
            }
            if traffic.filtered > 0 {
                telemetry::count("sharing.filtered", traffic.filtered);
            }
            if !seeds.is_empty() {
                telemetry::count("sharing.seeded", seeds.len() as u64);
            }
            (result, s, true)
        } else {
            let (result, s) =
                check_safety_budgeted(model, index, &options.bmc, options.solver, interrupt);
            (result, s, false)
        }
    };
    stats += s;
    let (status, note) = match result {
        SafetyResult::Proven { induction_depth } => {
            store(
                cache,
                &key,
                CachedOutcome::Induction {
                    depth: induction_depth,
                },
                interrupt,
            );
            (
                PropertyStatus::Proven(Proof::Induction {
                    depth: induction_depth,
                }),
                None,
            )
        }
        SafetyResult::Violated(trace) => {
            // A racer's trace depends on which configuration won the
            // race; re-minimize to the canonical single-solver trace so
            // `render()` is byte-identical with sharing on or off.
            let trace = if raced {
                minimize_safety_cex(model, index, trace, options, &mut stats, interrupt)
            } else {
                trace
            };
            store(
                cache,
                &key,
                CachedOutcome::Violated(trace.clone()),
                interrupt,
            );
            (PropertyStatus::Violated(trace), None)
        }
        SafetyResult::Interrupted => {
            interrupt_unknown(interrupt.triggered().unwrap_or(InterruptReason::Timeout))
        }
        SafetyResult::Unknown { .. } => (PropertyStatus::Unknown, None),
    };
    TaskOutcome {
        status,
        note,
        stats,
        engine: None,
        fuzz: fuzz_stats,
    }
}

fn check_cover_task(
    model: &Model,
    index: usize,
    fp: Fingerprint,
    ctx: &TaskCtx<'_>,
    interrupt: &Interrupt,
) -> (PropertyStatus, Option<String>, SolverStats) {
    let options = ctx.options;
    let cache = ctx.cache.as_ref();
    let target = model.covers[index].lit;
    let key = CacheKey {
        fingerprint: fp,
        property: model.covers[index].name.clone(),
    };
    let mut stats = SolverStats::default();
    if let Some(cache) = cache {
        let hit = {
            let _span = telemetry::span_detail("cache.lookup", &key.property, None, Some(fp));
            cache.lookup(&key, model, target)
        };
        if let Some(verdict) = hit {
            return (cached_status(verdict, model), None, stats);
        }
    }
    if !options.disable_bmc {
        interrupt::set_current_engine("bmc");
        let quick = BmcOptions {
            max_depth: options.quick_bmc_depth.min(options.bmc.max_depth),
            max_induction: 3.min(options.bmc.max_induction),
        };
        let (result, s) = {
            let _span = telemetry::span_detail("engine.bmc", &key.property, Some("bmc"), Some(fp));
            check_cover_budgeted(model, index, &quick, options.solver, interrupt)
        };
        stats += s;
        match result {
            CoverResult::Covered(trace) => {
                store(
                    cache,
                    &key,
                    CachedOutcome::Covered(trace.clone()),
                    interrupt,
                );
                return (PropertyStatus::Covered(trace), None, stats);
            }
            CoverResult::Unreachable => {
                store(
                    cache,
                    &key,
                    CachedOutcome::Unreachable { certificate: None },
                    interrupt,
                );
                return (PropertyStatus::Unreachable, None, stats);
            }
            CoverResult::Interrupted => {
                let (status, note) =
                    interrupt_unknown(interrupt.triggered().unwrap_or(InterruptReason::Timeout));
                return (status, note, stats);
            }
            CoverResult::Unknown { .. } => {}
        }
    }
    // PDR decides reachability of the cover target: a "proof" means the
    // target is unreachable, a "counterexample" is the witness.
    if !options.disable_pdr {
        interrupt::set_current_engine("pdr");
        let (result, s) = {
            let _span = telemetry::span_detail("engine.pdr", &key.property, Some("pdr"), Some(fp));
            check_pdr_budgeted(model, target, &options.pdr, options.solver, interrupt)
        };
        stats += s;
        match result {
            PdrResult::Proven(invariant) => {
                store(
                    cache,
                    &key,
                    CachedOutcome::Unreachable {
                        certificate: Some((
                            invariant.clauses().to_vec(),
                            invariant.frames_explored,
                        )),
                    },
                    interrupt,
                );
                return (PropertyStatus::Unreachable, None, stats);
            }
            PdrResult::Violated(trace) => {
                store(
                    cache,
                    &key,
                    CachedOutcome::Covered(trace.clone()),
                    interrupt,
                );
                return (PropertyStatus::Covered(trace), None, stats);
            }
            PdrResult::Interrupted => {
                let (status, note) =
                    interrupt_unknown(interrupt.triggered().unwrap_or(InterruptReason::Timeout));
                return (status, note, stats);
            }
            PdrResult::Unknown { .. } => {}
        }
    }
    interrupt::set_current_engine("explicit");
    if let Some(bundle) = explicit_bundle(ctx, fp, model, interrupt) {
        let _span =
            telemetry::span_detail("engine.explicit", &key.property, Some("explicit"), Some(fp));
        match bundle.engine.check_cover(target) {
            ExplicitResult::Proven => {
                store(
                    cache,
                    &key,
                    CachedOutcome::Unreachable { certificate: None },
                    interrupt,
                );
                return (PropertyStatus::Unreachable, None, stats);
            }
            ExplicitResult::Violated(trace) => {
                store(
                    cache,
                    &key,
                    CachedOutcome::Covered(trace.clone()),
                    interrupt,
                );
                return (PropertyStatus::Covered(trace), None, stats);
            }
            ExplicitResult::Exceeded => {}
        }
    }
    if let Some(reason) = interrupt.poll() {
        let (status, note) = interrupt_unknown(reason);
        return (status, note, stats);
    }
    if options.disable_bmc {
        return (PropertyStatus::Unknown, None, stats);
    }
    interrupt::set_current_engine("bmc");
    let (result, s) = {
        let _span = telemetry::span_detail("engine.bmc", &key.property, Some("bmc"), Some(fp));
        check_cover_budgeted(model, index, &options.bmc, options.solver, interrupt)
    };
    stats += s;
    match result {
        CoverResult::Covered(trace) => {
            store(
                cache,
                &key,
                CachedOutcome::Covered(trace.clone()),
                interrupt,
            );
            (PropertyStatus::Covered(trace), None, stats)
        }
        CoverResult::Unreachable => {
            store(
                cache,
                &key,
                CachedOutcome::Unreachable { certificate: None },
                interrupt,
            );
            (PropertyStatus::Unreachable, None, stats)
        }
        CoverResult::Interrupted => {
            let (status, note) =
                interrupt_unknown(interrupt.triggered().unwrap_or(InterruptReason::Timeout));
            (status, note, stats)
        }
        CoverResult::Unknown { .. } => (PropertyStatus::Unknown, None, stats),
    }
}

fn check_liveness_task(
    base: &Model,
    l2s: &LivenessSafetyModel,
    index: usize,
    fp: Fingerprint,
    ctx: &TaskCtx<'_>,
    interrupt: &Interrupt,
) -> (PropertyStatus, Option<String>, SolverStats) {
    let options = ctx.options;
    let cache = ctx.cache.as_ref();
    let model = &l2s.model;
    let bad = model.bads[index].lit;
    let key = CacheKey {
        fingerprint: fp,
        property: model.bads[index].name.clone(),
    };
    let mut stats = SolverStats::default();
    if let Some(cache) = cache {
        let hit = {
            let _span = telemetry::span_detail("cache.lookup", &key.property, None, Some(fp));
            cache.lookup(&key, model, bad)
        };
        if let Some(verdict) = hit {
            return (cached_status(verdict, model), None, stats);
        }
    }
    // The index into the base model's liveness vector equals the index into
    // the transformed model's bad vector.  BMC on the transformed model
    // finds short counterexample lassos; proofs fall through to PDR and
    // then to the exact engine.
    if !options.disable_bmc {
        interrupt::set_current_engine("bmc");
        let quick = BmcOptions {
            max_depth: options.quick_bmc_depth.min(options.liveness_bmc.max_depth),
            max_induction: options.liveness_bmc.max_induction.min(3),
        };
        let (result, s) = {
            let _span = telemetry::span_detail("engine.bmc", &key.property, Some("bmc"), Some(fp));
            check_safety_budgeted(model, index, &quick, options.solver, interrupt)
        };
        stats += s;
        match result {
            SafetyResult::Proven { induction_depth } => {
                store(
                    cache,
                    &key,
                    CachedOutcome::Induction {
                        depth: induction_depth,
                    },
                    interrupt,
                );
                return (
                    PropertyStatus::Proven(Proof::Induction {
                        depth: induction_depth,
                    }),
                    None,
                    stats,
                );
            }
            SafetyResult::Violated(trace) => {
                store(
                    cache,
                    &key,
                    CachedOutcome::Violated(trace.clone()),
                    interrupt,
                );
                return (PropertyStatus::Violated(trace), None, stats);
            }
            SafetyResult::Interrupted => {
                let (status, note) =
                    interrupt_unknown(interrupt.triggered().unwrap_or(InterruptReason::Timeout));
                return (status, note, stats);
            }
            SafetyResult::Unknown { .. } => {}
        }
    }
    if !options.disable_pdr {
        interrupt::set_current_engine("pdr");
        let (result, s) = {
            let _span = telemetry::span_detail("engine.pdr", &key.property, Some("pdr"), Some(fp));
            check_pdr_budgeted(model, bad, &options.pdr, options.solver, interrupt)
        };
        stats += s;
        match result {
            PdrResult::Proven(invariant) => {
                store(
                    cache,
                    &key,
                    CachedOutcome::Invariant {
                        clauses: invariant.clauses().to_vec(),
                        frames: invariant.frames_explored,
                    },
                    interrupt,
                );
                return (
                    PropertyStatus::Proven(invariant_proof(&invariant, &model.aig)),
                    None,
                    stats,
                );
            }
            PdrResult::Violated(trace) => {
                store(
                    cache,
                    &key,
                    CachedOutcome::Violated(trace.clone()),
                    interrupt,
                );
                return (PropertyStatus::Violated(trace), None, stats);
            }
            PdrResult::Interrupted => {
                let (status, note) =
                    interrupt_unknown(interrupt.triggered().unwrap_or(InterruptReason::Timeout));
                return (status, note, stats);
            }
            PdrResult::Unknown { .. } => {}
        }
    }
    interrupt::set_current_engine("explicit");
    if let Some(bundle) = explicit_bundle(ctx, fp, base, interrupt) {
        let _span =
            telemetry::span_detail("engine.explicit", &key.property, Some("explicit"), Some(fp));
        let pending = bundle.assert_pendings[index];
        match bundle.engine.check_liveness(pending, &bundle.fair_pendings) {
            ExplicitResult::Proven => {
                store(cache, &key, CachedOutcome::Reachability, interrupt);
                return (PropertyStatus::Proven(Proof::Reachability), None, stats);
            }
            // The explicit lasso lives on the monitor-augmented base model,
            // not the L2S transform, so it is not cached (replay validation
            // runs on the transform).
            ExplicitResult::Violated(trace) => {
                return (PropertyStatus::Violated(trace), None, stats)
            }
            ExplicitResult::Exceeded => {}
        }
    }
    if let Some(reason) = interrupt.poll() {
        let (status, note) = interrupt_unknown(reason);
        return (status, note, stats);
    }
    if options.disable_bmc {
        return (PropertyStatus::Unknown, None, stats);
    }
    interrupt::set_current_engine("bmc");
    let (result, s) = {
        let _span = telemetry::span_detail("engine.bmc", &key.property, Some("bmc"), Some(fp));
        check_safety_budgeted(
            model,
            index,
            &options.liveness_bmc,
            options.solver,
            interrupt,
        )
    };
    stats += s;
    match result {
        SafetyResult::Proven { induction_depth } => {
            store(
                cache,
                &key,
                CachedOutcome::Induction {
                    depth: induction_depth,
                },
                interrupt,
            );
            (
                PropertyStatus::Proven(Proof::Induction {
                    depth: induction_depth,
                }),
                None,
                stats,
            )
        }
        SafetyResult::Violated(trace) => {
            store(
                cache,
                &key,
                CachedOutcome::Violated(trace.clone()),
                interrupt,
            );
            (PropertyStatus::Violated(trace), None, stats)
        }
        SafetyResult::Interrupted => {
            let (status, note) =
                interrupt_unknown(interrupt.triggered().unwrap_or(InterruptReason::Timeout));
            (status, note, stats)
        }
        SafetyResult::Unknown { .. } => (
            PropertyStatus::Unknown,
            Some(format!(
                "bounded lasso search: counterexamples need stem+loop within {} cycles \
                 (CheckOptions::liveness_bmc.max_depth); starvation scenarios with longer \
                 stems would be missed",
                options.liveness_bmc.max_depth
            )),
            stats,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosva::{generate_ft, AutosvaOptions};

    /// A well-behaved single-outstanding-request echo module: every accepted
    /// request is answered on the next cycle with the same ID.
    const ECHO_GOOD: &str = r#"
/*AUTOSVA
echo_txn: req -in> res
req_val = req_val
req_ack = req_ack
[1:0] req_transid = req_id
res_val = res_val
[1:0] res_transid = res_id
*/
module echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  input  logic [1:0] req_id,
  output logic res_val,
  output logic [1:0] res_id
);
  logic busy_q;
  logic [1:0] id_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      id_q <= 2'b0;
    end else begin
      if (req_val && req_ack) begin
        busy_q <= 1'b1;
        id_q <= req_id;
      end else if (busy_q) begin
        busy_q <= 1'b0;
      end
    end
  end
  assign req_ack = !busy_q;
  assign res_val = busy_q;
  assign res_id = id_q;
endmodule
"#;

    /// A buggy variant: the response drops the transaction when a new request
    /// arrives in the same cycle the response is produced (the ID is
    /// overwritten and the original request never completes), and requests
    /// are accepted while busy.
    const ECHO_BAD: &str = r#"
/*AUTOSVA
echo_txn: req -in> res
req_val = req_val
req_ack = req_ack
[1:0] req_transid = req_id
res_val = res_val
[1:0] res_transid = res_id
*/
module echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  input  logic [1:0] req_id,
  output logic res_val,
  output logic [1:0] res_id
);
  logic busy_q;
  logic [1:0] id_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      id_q <= 2'b0;
    end else begin
      if (req_val) begin
        busy_q <= 1'b1;
        id_q <= req_id;
      end else if (busy_q) begin
        busy_q <= 1'b0;
      end
    end
  end
  assign req_ack = 1'b1;
  assign res_val = busy_q && !req_val;
  assign res_id = id_q;
endmodule
"#;

    /// A single-outstanding echo that answers only after a 7-cycle wait
    /// counter drains.  The `had_a_request` monitor proof needs reachability
    /// information ("the wait counter is only non-zero while busy"), which
    /// defeats the shallow quick-BMC induction and exercises the PDR stage.
    const ECHO_SLOW: &str = r#"
/*AUTOSVA
slow_txn: req -in> res
req_val = req_val
req_ack = req_ack
res_val = res_val
*/
module echo_slow (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  output logic res_val
);
  logic       busy_q;
  logic [2:0] wait_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      wait_q <= 3'd0;
    end else begin
      if (req_val && req_ack) begin
        busy_q <= 1'b1;
        wait_q <= 3'd7;
      end else if (busy_q) begin
        if (wait_q != 3'd0) begin
          wait_q <= wait_q - 3'd1;
        end else begin
          busy_q <= 1'b0;
        end
      end
    end
  end
  assign req_ack = !busy_q;
  assign res_val = busy_q && wait_q == 3'd0;
endmodule
"#;

    fn run(src: &str) -> VerificationReport {
        let ft = generate_ft(src, &AutosvaOptions::default()).unwrap();
        verify(src, &ft, &CheckOptions::default()).unwrap()
    }

    #[test]
    fn good_echo_module_proves_every_assertion() {
        let report = run(ECHO_GOOD);
        assert_eq!(
            report.violations(),
            0,
            "unexpected violations:\n{}",
            report.render()
        );
        assert!(
            (report.proof_rate() - 1.0).abs() < f64::EPSILON,
            "proof rate below 100%:\n{}",
            report.render()
        );
        // The cover property must be reachable (the FT is not vacuous).
        assert!(report
            .results
            .iter()
            .any(|r| matches!(r.status, PropertyStatus::Covered(_))));
    }

    #[test]
    fn buggy_echo_module_yields_counterexamples() {
        let report = run(ECHO_BAD);
        assert!(
            report.violations() > 0,
            "expected counterexamples:\n{}",
            report.render()
        );
        let first = report.first_violation().unwrap();
        let trace = first.status.trace().unwrap();
        assert!(
            trace.len() <= 12,
            "trace unexpectedly long: {}",
            trace.len()
        );
    }

    #[test]
    fn report_rendering_mentions_every_property() {
        let report = run(ECHO_GOOD);
        let text = report.render();
        for r in &report.results {
            assert!(text.contains(&r.name));
        }
        assert!(text.contains("proof rate"));
    }

    #[test]
    fn cascade_runs_pdr_before_the_explicit_fallback() {
        let ft = generate_ft(ECHO_SLOW, &AutosvaOptions::default()).unwrap();

        // The slice optimizer discharges this counter-vs-state proof
        // structurally (sequential sweeping merges the monitor latch), so
        // keep it off: this test pins the *cascade staging*, and needs the
        // proof to stay reachability-dependent.
        let mut options = CheckOptions::default();
        options.parallel.opt = false;

        // Default cascade: the reachability-dependent safety proof must be
        // closed by the PDR stage (an inductive-invariant certificate), not
        // by the explicit engine sitting behind it.
        let report = verify(ECHO_SLOW, &ft, &options).unwrap();
        let had = report
            .results
            .iter()
            .find(|r| r.name.contains("had_a_request"))
            .expect("monitor property exists");
        assert!(
            matches!(had.status.proof(), Some(Proof::Invariant { .. })),
            "expected a PDR invariant proof, got {:?}",
            had.status
        );
        assert_eq!(report.violations(), 0, "{}", report.render());

        // With PDR disabled the same property falls through to the explicit
        // engine — proving the stage really sits in front of it.
        let mut no_pdr = CheckOptions::default();
        no_pdr.parallel.opt = false;
        no_pdr.disable_pdr = true;
        let report = verify(ECHO_SLOW, &ft, &no_pdr).unwrap();
        let had = report
            .results
            .iter()
            .find(|r| r.name.contains("had_a_request"))
            .expect("monitor property exists");
        assert!(
            matches!(had.status.proof(), Some(Proof::Reachability)),
            "expected an explicit-reachability proof, got {:?}",
            had.status
        );
    }

    #[test]
    fn sequential_and_parallel_runs_render_identically() {
        let ft = generate_ft(ECHO_SLOW, &AutosvaOptions::default()).unwrap();
        let mut sequential = CheckOptions::default();
        sequential.parallel.threads = 1;
        let mut parallel = CheckOptions::default();
        parallel.parallel.threads = 4;
        let seq = verify(ECHO_SLOW, &ft, &sequential).unwrap();
        let par = verify(ECHO_SLOW, &ft, &parallel).unwrap();
        assert_eq!(seq.render(), par.render());
        // The timed rendering carries the same rows plus runtimes.
        assert!(seq.render_timed().contains("proof rate"));
    }

    #[test]
    fn slicing_off_matches_slicing_on() {
        let ft = generate_ft(ECHO_GOOD, &AutosvaOptions::default()).unwrap();
        let mut unsliced = CheckOptions::default();
        unsliced.parallel.slice = false;
        let sliced = verify(ECHO_GOOD, &ft, &CheckOptions::default()).unwrap();
        let full = verify(ECHO_GOOD, &ft, &unsliced).unwrap();
        // Same verdicts; the unsliced run reports the full model as every
        // property's cone.
        for (a, b) in sliced.results.iter().zip(&full.results) {
            assert_eq!(a.name, b.name);
            assert_eq!(
                format!("{}", a.status),
                format!("{}", b.status),
                "{}: sliced and unsliced verdicts diverge",
                a.name
            );
            assert!(a.slice_latches <= b.slice_latches);
        }
        assert!(full
            .checked()
            .all(|r| r.slice_latches == full.model_latches));
    }

    #[test]
    fn proof_cache_reuses_verdicts_across_runs() {
        let ft = generate_ft(ECHO_SLOW, &AutosvaOptions::default()).unwrap();
        let cache = crate::portfolio::ProofCache::new();
        let mut options = CheckOptions::default();
        options.parallel.cache = Some(cache.clone());

        let cold = verify(ECHO_SLOW, &ft, &options).unwrap();
        let cold_stats = cache.stats();
        assert!(
            cold_stats.insertions > 0,
            "cold run must populate the cache"
        );
        assert_eq!(cold_stats.hits, 0);

        let warm = verify(ECHO_SLOW, &ft, &options).unwrap();
        let warm_stats = cache.stats();
        assert!(
            warm_stats.hits >= cold_stats.insertions,
            "warm run must answer from the cache: {warm_stats:?}"
        );
        assert_eq!(warm_stats.rejected, 0, "no entry may fail re-validation");
        assert_eq!(
            cold.render(),
            warm.render(),
            "cache hits must not change the report"
        );
    }

    #[test]
    fn cache_dir_persists_verdicts_across_fresh_caches() {
        // CacheOptions::dir must make verdicts survive into a later run
        // that opens its own cache from the same directory (the fresh-
        // process CLI/CI pattern).
        let dir =
            std::env::temp_dir().join(format!("autosva-checker-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ft = generate_ft(ECHO_SLOW, &AutosvaOptions::default()).unwrap();
        let mut options = CheckOptions::default();
        options.cache.dir = Some(dir.clone());

        let cold = verify(ECHO_SLOW, &ft, &options).unwrap();
        assert!(
            dir.join("proofs.cache").exists(),
            "the run must spill the cache to disk"
        );
        assert!(
            cold.results
                .iter()
                .any(|r| r.stats != crate::sat::SolverStats::default()),
            "the cold run must do solver work"
        );

        // Each verify call opens a fresh ProofCache from the directory, so
        // this exercises the disk load path, not the in-memory store.
        let warm = verify(ECHO_SLOW, &ft, &options).unwrap();
        assert_eq!(
            cold.render(),
            warm.render(),
            "disk-warm verdicts must match the cold run byte-for-byte"
        );
        assert!(
            warm.checked()
                .all(|r| r.stats == crate::sat::SolverStats::default()),
            "the disk-warm run must answer every checked property from the cache"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn solver_stats_surface_in_the_timed_rendering_only() {
        // Optimizer off: the sweep makes this proof trivially inductive,
        // and the test needs real PDR solver work to show up in the stats.
        let ft = generate_ft(ECHO_SLOW, &AutosvaOptions::default()).unwrap();
        let mut options = CheckOptions::default();
        options.parallel.opt = false;
        let report = verify(ECHO_SLOW, &ft, &options).unwrap();
        let had = report
            .results
            .iter()
            .find(|r| r.name.contains("had_a_request"))
            .expect("monitor property exists");
        assert!(
            had.stats.conflicts > 0 && had.stats.propagations > 0,
            "a PDR-closed proof must report solver work: {:?}",
            had.stats
        );
        assert!(report.render_timed().contains("solver:"));
        assert!(
            !report.render().contains("solver:"),
            "render() must stay stats-free (byte-stable across cache states)"
        );
    }

    #[test]
    fn solver_feature_ablation_agrees_on_verdicts() {
        // The checker with every solver feature off must reach the same
        // report as the default full-featured configuration.
        let ft = generate_ft(ECHO_SLOW, &AutosvaOptions::default()).unwrap();
        let full = verify(ECHO_SLOW, &ft, &CheckOptions::default()).unwrap();
        let stripped = CheckOptions {
            solver: crate::sat::SolverConfig::baseline(),
            ..CheckOptions::default()
        };
        let baseline = verify(ECHO_SLOW, &ft, &stripped).unwrap();
        assert_eq!(full.render(), baseline.render());
    }

    #[test]
    fn undecided_liveness_reports_the_lasso_bound_caveat() {
        // With PDR and the explicit engine disabled and induction off, the
        // (true) eventual-response obligation of the slow echo cannot be
        // decided within the lasso bound — the report must say so.
        let ft = generate_ft(ECHO_SLOW, &AutosvaOptions::default()).unwrap();
        let options = CheckOptions {
            disable_pdr: true,
            disable_explicit: true,
            liveness_bmc: BmcOptions {
                max_depth: 2,
                max_induction: 0,
            },
            ..CheckOptions::default()
        };
        let report = verify(ECHO_SLOW, &ft, &options).unwrap();
        let undecided = report
            .results
            .iter()
            .find(|r| {
                r.class == PropertyClass::Liveness && matches!(r.status, PropertyStatus::Unknown)
            })
            .expect("an undecided liveness property");
        let note = undecided.note.as_ref().expect("caveat note attached");
        assert!(
            note.contains("lasso"),
            "note must explain the bound: {note}"
        );
        assert!(
            note.contains("2"),
            "note must state the configured bound: {note}"
        );
        assert!(report.render().contains("note:"));
    }

    #[test]
    fn proven_properties_render_their_proof_artifact() {
        let ft = generate_ft(ECHO_SLOW, &AutosvaOptions::default()).unwrap();
        let report = verify(ECHO_SLOW, &ft, &CheckOptions::default()).unwrap();
        let text = report.render();
        assert!(
            text.contains("PDR invariant"),
            "render must say why properties hold:\n{text}"
        );
        assert!(
            text.contains("k-induction") || text.contains("PDR"),
            "{text}"
        );
    }
}
