//! Fault-injection harness: named injection sites inside the engines
//! that tests (and the `fault_smoke` example) can arm to force a panic,
//! a spurious timeout, or a delay at a precise point in the cascade.
//!
//! Compiled only under `cfg(any(test, feature = "fault-injection"))`;
//! production builds carry no trace of it.  Engines mark their
//! interruption points with [`point`]:
//!
//! ```ignore
//! #[cfg(any(test, feature = "fault-injection"))]
//! crate::faults::point("pdr.block_cube");
//! ```
//!
//! Tests arm a site with [`arm`], which returns a guard that disarms on
//! drop.  Because `cargo test` runs many tests in one process, every arm
//! can carry a *property filter*: the fault only fires while the
//! thread-local task context (see [`crate::interrupt`]) says the named
//! property is running, so concurrently running tests do not trip each
//! other's faults.
//!
//! The three actions map to the three fault classes the containment
//! layer must absorb:
//!
//! * [`FaultAction::Panic`] — the site panics with a recognizable
//!   message, exercising `catch_unwind` → `PropertyStatus::Error`;
//! * [`FaultAction::Timeout`] — the site latches [`InterruptReason::Timeout`]
//!   on the current task's interrupt handle, exercising the cooperative
//!   preemption paths deterministically (no wall clock involved);
//! * [`FaultAction::Delay`] — the site sleeps, for schedule-perturbation
//!   tests.
//!
//! [`InterruptReason::Timeout`]: crate::interrupt::InterruptReason::Timeout

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

use crate::interrupt::{self, InterruptReason};

/// What an armed site does when hit.
#[derive(Debug, Clone)]
pub enum FaultAction {
    /// Panic with `fault injected at <site>`.
    Panic,
    /// Latch a spurious [`InterruptReason::Timeout`] on the current
    /// task's interrupt handle.
    Timeout,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
}

#[derive(Debug, Clone)]
struct Arm {
    action: FaultAction,
    /// Fire only while this property is running (`None` = any task).
    property: Option<String>,
    /// Fire at most this many times (`u64::MAX` = every hit).
    remaining: u64,
    /// Monotonic arm id, so a guard only disarms its own arm.
    id: u64,
}

static ARM_ID: AtomicU64 = AtomicU64::new(1);

fn registry() -> &'static Mutex<HashMap<&'static str, Arm>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, Arm>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Guard returned by [`arm`]; disarms the site on drop.
#[derive(Debug)]
pub struct FaultGuard {
    site: &'static str,
    id: u64,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let mut map = registry().lock().unwrap_or_else(PoisonError::into_inner);
        if map.get(self.site).is_some_and(|arm| arm.id == self.id) {
            map.remove(self.site);
        }
    }
}

/// Arms `site` with `action`, firing only while `property` (if given)
/// is the current task.  Re-arming a site replaces the previous arm.
/// The fault fires on every hit until the guard drops; use
/// [`arm_once`] for a single-shot fault.
pub fn arm(site: &'static str, action: FaultAction, property: Option<&str>) -> FaultGuard {
    arm_with_count(site, action, property, u64::MAX)
}

/// Like [`arm`], but the fault fires at most once.
pub fn arm_once(site: &'static str, action: FaultAction, property: Option<&str>) -> FaultGuard {
    arm_with_count(site, action, property, 1)
}

fn arm_with_count(
    site: &'static str,
    action: FaultAction,
    property: Option<&str>,
    count: u64,
) -> FaultGuard {
    let id = ARM_ID.fetch_add(1, Ordering::Relaxed);
    let arm = Arm {
        action,
        property: property.map(str::to_string),
        remaining: count,
        id,
    };
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(site, arm);
    FaultGuard { site, id }
}

/// A named injection site.  No-op unless a test armed `site` (and the
/// arm's property filter matches the current task).  Engines call this
/// at the same places they poll their interrupt handle.
pub fn point(site: &str) {
    // Fast path: completely unarmed harness.  One uncontended lock; the
    // map is almost always empty.
    let action = {
        let mut map = registry().lock().unwrap_or_else(PoisonError::into_inner);
        if map.is_empty() {
            return;
        }
        let Some(arm) = map.get_mut(site) else {
            return;
        };
        if let Some(wanted) = &arm.property {
            let running = interrupt::current_task().map(|c| c.property);
            if running.as_deref() != Some(wanted.as_str()) {
                return;
            }
        }
        if arm.remaining == 0 {
            return;
        }
        if arm.remaining != u64::MAX {
            arm.remaining -= 1;
        }
        arm.action.clone()
    };
    match action {
        FaultAction::Panic => panic!("fault injected at {site}"),
        FaultAction::Timeout => {
            if let Some(ctx) = interrupt::current_task() {
                ctx.interrupt.fire(InterruptReason::Timeout);
            }
        }
        FaultAction::Delay(d) => std::thread::sleep(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interrupt::Interrupt;

    #[test]
    fn unarmed_points_are_no_ops() {
        point("tests.nothing_armed");
    }

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _g = arm("tests.guarded", FaultAction::Delay(Duration::ZERO), None);
        }
        point("tests.guarded"); // must not fire anything
    }

    #[test]
    fn property_filter_gates_the_fault() {
        let _g = arm(
            "tests.filtered",
            FaultAction::Panic,
            Some("as__someone_else"),
        );
        interrupt::set_task_context("as__this_test", Interrupt::none());
        point("tests.filtered"); // filter mismatch: no panic
        interrupt::clear_task_context();
        point("tests.filtered"); // no task at all: no panic
    }

    #[test]
    fn panic_action_panics_with_the_site_name() {
        let _g = arm("tests.boom", FaultAction::Panic, None);
        let caught = std::panic::catch_unwind(|| point("tests.boom"));
        let payload = caught.expect_err("site must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload");
        assert_eq!(msg, "fault injected at tests.boom");
    }

    #[test]
    fn timeout_action_latches_the_current_interrupt() {
        let interrupt = Interrupt::new(None, None, None);
        interrupt::set_task_context("as__timeout_probe", interrupt.clone());
        let _g = arm(
            "tests.spurious_timeout",
            FaultAction::Timeout,
            Some("as__timeout_probe"),
        );
        point("tests.spurious_timeout");
        interrupt::clear_task_context();
        assert_eq!(interrupt.triggered(), Some(InterruptReason::Timeout));
    }

    #[test]
    fn arm_once_fires_exactly_once() {
        let interrupt = Interrupt::new(None, None, None);
        interrupt::set_task_context("as__once_probe", interrupt.clone());
        let _g = arm_once("tests.once", FaultAction::Timeout, Some("as__once_probe"));
        point("tests.once");
        assert_eq!(interrupt.triggered(), Some(InterruptReason::Timeout));
        // A second hit would need a fresh interrupt to observe; the
        // remaining-count reaching zero is what we assert here.
        let map = registry().lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(map.get("tests.once").map(|a| a.remaining), Some(0));
        drop(map);
        interrupt::clear_task_context();
    }
}
