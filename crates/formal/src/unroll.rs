//! Time-frame expansion of an AIG into CNF (Tseitin encoding).
//!
//! The [`Unroller`] incrementally unrolls a sequential AIG into a growing SAT
//! instance: frame 0 constrains latches to their initial values, and each new
//! frame connects latch inputs to the previous frame's next-state functions.
//! The same unroller serves bounded model checking, k-induction (where the
//! initial-state constraint is omitted) and the liveness-to-safety loop
//! checks.

use crate::aig::{Aig, Lit, Node};
use crate::sat::{ClausePool, SatLit, Solver, SolverConfig, SolverStats, Var};
use std::collections::HashMap;
use std::sync::Arc;

/// A phase/VSIDS-activity seed for one AIG node, applied to every SAT
/// variable created for that node (one per frame).  Cross-property
/// learning computes these from a COI-overlapping sibling cone so a solver
/// starts with the sibling's latch polarities and decision priorities
/// instead of the cold all-false default.  Hints steer only the search
/// order — never the clause database — so they cannot change a verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedHint {
    /// The saved phase the node's variables start with.
    pub phase: bool,
    /// VSIDS activity boost in activity-increment units (0 = none).
    pub boost: f64,
}

/// Incremental time-frame expansion of an [`Aig`] into a [`Solver`].
#[derive(Debug)]
pub struct Unroller<'a> {
    aig: &'a Aig,
    solver: Solver,
    /// For each frame, a map from AIG node index to SAT variable.
    frames: Vec<HashMap<usize, Var>>,
    /// Whether frame 0 constrains latches to their initial values.
    constrain_init: bool,
    /// A variable that is always true (used to translate constant literals).
    true_var: Var,
    /// Phase/activity seeds by AIG node, consulted at variable creation.
    seeds: HashMap<usize, SeedHint>,
}

impl<'a> Unroller<'a> {
    /// Creates an unroller.  When `constrain_init` is `true`, frame 0 fixes
    /// every latch to its initial value (the normal BMC configuration); when
    /// `false`, frame-0 latches are free (used for the inductive step of
    /// k-induction).
    pub fn new(aig: &'a Aig, constrain_init: bool) -> Self {
        Unroller::with_config(aig, constrain_init, SolverConfig::default())
    }

    /// Like [`Unroller::new`], with an explicit solver feature
    /// configuration (used by the differential suite and the solver
    /// ablation bench to toggle restarts/minimization/reduction).
    pub fn with_config(aig: &'a Aig, constrain_init: bool, config: SolverConfig) -> Self {
        let mut solver = Solver::with_config(config);
        let true_var = solver.new_var();
        solver.add_clause(&[SatLit::pos(true_var)]);
        Unroller {
            aig,
            solver,
            frames: Vec::new(),
            constrain_init,
            true_var,
            seeds: HashMap::new(),
        }
    }

    /// Connects the underlying solver to a shared learnt-clause pool (see
    /// [`Solver::attach_pool`]).  Every unroller attached to one pool must
    /// encode the same AIG with the same construction order, so variable
    /// numbers mean the same thing to all participants.
    pub fn attach_pool(&mut self, pool: Arc<ClausePool>) {
        self.solver.attach_pool(pool);
    }

    /// Installs phase/activity seeds, applied to the SAT variables of the
    /// hinted AIG nodes as they are created (so this must be called before
    /// the relevant frames are built).  Returns the number of hints
    /// installed.
    pub fn set_seed_hints(&mut self, seeds: HashMap<usize, SeedHint>) -> usize {
        let n = seeds.len();
        self.seeds = seeds;
        n
    }

    /// Access to the underlying solver (e.g. for statistics).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Mutable access to the underlying solver (feature toggles, direct
    /// clause surgery in tests).
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// The cumulative search counters of the underlying solver.
    pub fn stats(&self) -> SolverStats {
        self.solver.stats
    }

    /// Installs a cooperative preemption handle on the underlying solver
    /// (see [`Solver::set_interrupt`]).  Callers that arm one must check
    /// `Interrupt::triggered` after every query before trusting its
    /// answer: the boolean [`Unroller::solve_with`] reports an
    /// interrupted query as "not satisfiable".
    pub fn set_interrupt(&mut self, interrupt: crate::interrupt::Interrupt) {
        self.solver.set_interrupt(interrupt);
    }

    /// Allocates a fresh SAT variable in the underlying solver without tying
    /// it to any AIG node (activation literals, helper encodings).
    pub fn new_var(&mut self) -> crate::sat::Var {
        self.solver.new_var()
    }

    /// Solves under raw SAT-literal assumptions, exposing the solver-level
    /// answer (and, through [`Unroller::unsat_core`], the final conflict).
    pub fn solve_sat(&mut self, assumptions: &[SatLit]) -> crate::sat::SatResult {
        self.solver.solve(assumptions)
    }

    /// The final conflict of the last unsatisfiable [`Unroller::solve_sat`]
    /// query: the subset of the assumed literals the conflict depended on.
    pub fn unsat_core(&self) -> &[SatLit] {
        self.solver.unsat_core()
    }

    /// Garbage-collects the underlying solver's clause database (see
    /// [`Solver::simplify`]); returns `(clauses_removed, literals_removed)`.
    pub fn simplify(&mut self) -> (usize, usize) {
        self.solver.simplify()
    }

    /// The model value of a raw SAT literal after a satisfiable query
    /// (defaults to `false` for irrelevant variables).
    pub fn sat_value(&self, lit: SatLit) -> bool {
        let var_value = self.solver.value(lit.var()).unwrap_or(false);
        var_value == lit.is_positive()
    }

    /// Number of frames created so far.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Ensures at least `n + 1` frames exist (frames `0..=n`).
    pub fn ensure_frame(&mut self, n: usize) {
        while self.frames.len() <= n {
            self.push_frame();
        }
    }

    fn push_frame(&mut self) {
        let frame_idx = self.frames.len();
        self.frames.push(HashMap::new());
        // Latch variables for this frame.
        for latch in self.aig.latches() {
            let var = self.solver.new_var();
            if let Some(&hint) = self.seeds.get(&latch.node) {
                self.solver.set_phase(var, hint.phase);
                if hint.boost > 0.0 {
                    self.solver.boost_activity(var, hint.boost);
                }
            }
            self.frames[frame_idx].insert(latch.node, var);
            if frame_idx == 0 {
                if self.constrain_init {
                    self.solver.add_clause(&[SatLit::new(var, latch.init)]);
                }
            } else {
                // Connect to the previous frame's next-state function.
                let prev_next = self.lit_in_frame(latch.next, frame_idx - 1);
                let cur = SatLit::pos(var);
                self.solver.add_clause(&[prev_next.negate(), cur]);
                self.solver.add_clause(&[prev_next, cur.negate()]);
            }
        }
    }

    /// Returns the SAT literal for an AIG literal evaluated in `frame`.
    ///
    /// The frame is created if needed; AND gates are Tseitin-encoded lazily
    /// and memoized per frame.
    pub fn lit_in_frame(&mut self, lit: Lit, frame: usize) -> SatLit {
        self.ensure_frame(frame);
        let var = self.node_var(lit.node(), frame);
        SatLit::new(var, !lit.is_inverted())
    }

    fn node_var(&mut self, node: usize, frame: usize) -> Var {
        if let Some(&v) = self.frames[frame].get(&node) {
            return v;
        }
        let var = match self.aig.node(node) {
            Node::False => self.false_var(),
            Node::Input => {
                let v = self.solver.new_var();
                if let Some(&hint) = self.seeds.get(&node) {
                    self.solver.set_phase(v, hint.phase);
                    if hint.boost > 0.0 {
                        self.solver.boost_activity(v, hint.boost);
                    }
                }
                v
            }
            Node::Latch => {
                // Latch variables are created eagerly in push_frame.
                unreachable!("latch variable missing from frame {frame}")
            }
            Node::And(a, b) => {
                let va = self.lit_in_frame(a, frame);
                let vb = self.lit_in_frame(b, frame);
                let v = self.solver.new_var();
                let out = SatLit::pos(v);
                // out <-> va & vb
                self.solver.add_clause(&[out.negate(), va]);
                self.solver.add_clause(&[out.negate(), vb]);
                self.solver.add_clause(&[va.negate(), vb.negate(), out]);
                v
            }
        };
        self.frames[frame].insert(node, var);
        var
    }

    fn false_var(&mut self) -> Var {
        // Reuse the constant-true variable: node 0 is FALSE, so its variable
        // must be forced false.  We instead return a dedicated variable bound
        // to false once.
        // (Handled by mapping node 0 to !true_var at call sites via lit
        // polarity: node 0 var is a fresh var forced to false.)
        let v = self.solver.new_var();
        self.solver.add_clause(&[SatLit::neg(v)]);
        v
    }

    /// Adds a clause over already-created SAT literals.
    pub fn add_clause(&mut self, lits: &[SatLit]) {
        self.solver.add_clause(lits);
    }

    /// Allocates a fresh, unconstrained SAT literal (used by callers to build
    /// helper encodings such as the simple-path constraints of k-induction).
    pub fn new_free_lit(&mut self) -> SatLit {
        SatLit::pos(self.solver.new_var())
    }

    /// Forces an AIG literal to a value in a given frame (as a permanent
    /// constraint).
    pub fn constrain(&mut self, lit: Lit, frame: usize, value: bool) {
        let sl = self.lit_in_frame(lit, frame);
        let sl = if value { sl } else { sl.negate() };
        self.solver.add_clause(&[sl]);
    }

    /// Solves under the given AIG-literal assumptions (each `(lit, frame,
    /// value)` is assumed, not asserted).
    ///
    /// Returns `true` only for a completed satisfiable answer.  Both
    /// `Unsat` and `Interrupted` collapse to `false` here — when an
    /// interrupt handle is armed (see [`Unroller::set_interrupt`]), the
    /// caller must consult `Interrupt::triggered` after the call before
    /// reading `false` as a proof of unsatisfiability.
    pub fn solve_with(&mut self, assumptions: &[(Lit, usize, bool)]) -> bool {
        let sat_assumptions: Vec<SatLit> = assumptions
            .iter()
            .map(|&(lit, frame, value)| {
                let sl = self.lit_in_frame(lit, frame);
                if value {
                    sl
                } else {
                    sl.negate()
                }
            })
            .collect();
        matches!(
            self.solver.solve(&sat_assumptions),
            crate::sat::SatResult::Sat
        )
    }

    /// After a satisfiable query, returns the model value of an AIG literal
    /// in a frame (defaulting to `false` when irrelevant).
    pub fn model_value(&mut self, lit: Lit, frame: usize) -> bool {
        let sl = self.lit_in_frame(lit, frame);
        let var_value = self.solver.value(sl.var()).unwrap_or(false);
        if sl.is_positive() {
            var_value
        } else {
            !var_value
        }
    }

    /// The constant-true SAT literal.
    pub fn true_lit(&self) -> SatLit {
        SatLit::pos(self.true_var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-bit counter that wraps; bit pattern `11` is reachable at frame 3.
    fn counter_aig() -> (Aig, Lit, Lit) {
        let mut aig = Aig::new();
        let b0 = aig.add_latch("b0", false);
        let b1 = aig.add_latch("b1", false);
        // next_b0 = !b0 ; next_b1 = b1 ^ b0
        let n0 = aig.not(b0);
        let n1 = aig.xor(b1, b0);
        aig.set_latch_next(b0, n0);
        aig.set_latch_next(b1, n1);
        (aig, b0, b1)
    }

    #[test]
    fn counter_reaches_three_at_frame_three() {
        let (aig, b0, b1) = counter_aig();
        let mut unroller = Unroller::new(&aig, true);
        // Frame 0: 00, frame 1: 01, frame 2: 10, frame 3: 11.
        let both = |u: &mut Unroller, f: usize| u.solve_with(&[(b0, f, true), (b1, f, true)]);
        assert!(!both(&mut unroller, 0));
        assert!(!both(&mut unroller, 1));
        assert!(!both(&mut unroller, 2));
        assert!(both(&mut unroller, 3));
    }

    #[test]
    fn model_values_follow_counter_sequence() {
        let (aig, b0, b1) = counter_aig();
        let mut unroller = Unroller::new(&aig, true);
        assert!(unroller.solve_with(&[(b0, 3, true), (b1, 3, true)]));
        // At frame 1 the counter must be 01.
        assert!(unroller.model_value(b0, 1));
        assert!(!unroller.model_value(b1, 1));
        // At frame 2 the counter must be 10.
        assert!(!unroller.model_value(b0, 2));
        assert!(unroller.model_value(b1, 2));
    }

    #[test]
    fn without_init_constraint_any_state_is_reachable_at_frame_zero() {
        let (aig, b0, b1) = counter_aig();
        let mut unroller = Unroller::new(&aig, false);
        assert!(unroller.solve_with(&[(b0, 0, true), (b1, 0, true)]));
    }

    #[test]
    fn inputs_are_free() {
        let mut aig = Aig::new();
        let inp = aig.add_input("x");
        let q = aig.add_latch("q", false);
        aig.set_latch_next(q, inp);
        let mut unroller = Unroller::new(&aig, true);
        // q at frame 1 can be either value depending on the input.
        assert!(unroller.solve_with(&[(q, 1, true)]));
        assert!(unroller.solve_with(&[(q, 1, false)]));
        // But at frame 0 it is fixed to its init value.
        assert!(!unroller.solve_with(&[(q, 0, true)]));
    }

    #[test]
    fn constrain_fixes_values() {
        let mut aig = Aig::new();
        let inp = aig.add_input("x");
        let q = aig.add_latch("q", false);
        aig.set_latch_next(q, inp);
        let mut unroller = Unroller::new(&aig, true);
        unroller.constrain(inp, 0, false);
        assert!(!unroller.solve_with(&[(q, 1, true)]));
    }

    #[test]
    fn constant_literals_translate() {
        let aig = Aig::new();
        let mut unroller = Unroller::new(&aig, true);
        assert!(unroller.solve_with(&[(Lit::TRUE, 0, true)]));
        assert!(!unroller.solve_with(&[(Lit::TRUE, 0, false)]));
        assert!(!unroller.solve_with(&[(Lit::FALSE, 0, true)]));
    }
}
