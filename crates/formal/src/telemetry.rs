//! Run telemetry: structured spans, a counter/gauge metrics registry, and
//! machine-readable sinks for the whole verification pipeline.
//!
//! The checker's value proposition is engine *efficiency*, yet a
//! [`crate::checker::VerificationReport`] alone says nothing about *where*
//! a run spends its time — how long elaboration vs. slicing vs. each engine
//! stage took, how the worker pool scheduled the property tasks, or how
//! effective the proof cache and the stimulus fuzzer were.  This module is
//! that observability layer:
//!
//! * **Spans** — begin/end events carrying a phase tag (`"elab"`,
//!   `"slice"`, `"engine.pdr"`, …), the property name, an optional engine
//!   tag and slice fingerprint, and the recording worker's track id.
//!   Every pipeline stage is instrumented: parse/elaborate/compile/lint,
//!   per-property slicing and optimization fixpoint iterations, fuzzer
//!   rounds, every engine-cascade stage, and the per-task worker spans of
//!   the parallel pool.
//! * **Counters and gauges** — a metrics registry fed by the same
//!   instrumentation: cache hits/misses, fuzz cycles simulated and lanes
//!   retired, solver conflicts/propagations/restarts per engine, slice
//!   gate counts before/after optimization, and pool queue-depth samples.
//! * **Sinks** — a fixed-key-order JSON run report
//!   ([`TelemetryReport::to_json`], the style of
//!   [`crate::lint::LintReport::to_json`]), a Chrome trace-event-format
//!   file ([`TelemetryReport::to_chrome_trace`], loadable in
//!   `about://tracing` / Perfetto, one track per pool worker), and a human
//!   summary section in
//!   [`crate::checker::VerificationReport::render_timed`].
//!
//! # Recording model
//!
//! Recording is *lock-free-ish*: every participating thread registers one
//! [`WorkerBuffer`] with the run's collector and appends events to it
//! through a thread-local handle, so the hot path never touches a shared
//! lock (each buffer's mutex is only ever taken by its owning thread until
//! the merge).  The buffers are merged once, at run end.  The thread-local
//! handle is empty when telemetry is off, so every probe is a cheap no-op
//! and instrumented code needs no plumbing through its signatures.
//!
//! # Determinism contract
//!
//! Telemetry must never perturb a report:
//! [`crate::checker::VerificationReport::render`] is byte-identical with
//! telemetry on or off, sequential or parallel.  The JSON report keeps the
//! same discipline internally by separating **deterministic** fields
//! (verdict counts, per-phase span counts, the counter registry, gate
//! totals — byte-stable across runs and thread counts; see
//! [`TelemetryReport::deterministic_json`]) from **timing** fields
//! (durations, worker counts, gauge samples), so trajectory tracking and
//! golden tests can assert on the former.

use crate::coi::Fingerprint;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Telemetry knobs (part of [`crate::checker::CheckOptions`]).  Default
/// off: no collector is allocated and every probe is a no-op.
#[derive(Debug, Clone, Default)]
pub struct TelemetryOptions {
    /// Collect spans and metrics and attach a [`TelemetryReport`] to the
    /// run's [`crate::checker::VerificationReport`].
    pub enabled: bool,
    /// Additionally write the Chrome trace-event file here (best-effort;
    /// an I/O failure never fails the run).  Implies `enabled`.
    pub trace_path: Option<PathBuf>,
    /// Additionally write the JSON run report here (best-effort).  Implies
    /// `enabled`.
    pub json_path: Option<PathBuf>,
}

impl TelemetryOptions {
    /// `true` when anything requests collection (the flag or either sink).
    pub fn active(&self) -> bool {
        self.enabled || self.trace_path.is_some() || self.json_path.is_some()
    }
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

/// One raw event in a worker buffer.
#[derive(Debug, Clone)]
enum Event {
    Begin {
        phase: &'static str,
        name: String,
        engine: Option<&'static str>,
        fingerprint: Option<Fingerprint>,
        ts_us: u64,
    },
    End {
        ts_us: u64,
    },
    Count {
        name: &'static str,
        value: u64,
    },
    Gauge {
        name: &'static str,
        ts_us: u64,
        value: u64,
    },
}

/// The per-thread event buffer.  Only its owning thread appends (its mutex
/// is uncontended until the run-end merge), so recording never serializes
/// the worker pool.
struct WorkerBuffer {
    tid: usize,
    events: Mutex<Vec<Event>>,
}

impl WorkerBuffer {
    fn push(&self, event: Event) {
        self.events.lock().expect("worker buffer").push(event);
    }
}

/// The per-run collector: the time epoch and the registered worker buffers.
struct Collector {
    epoch: Instant,
    buffers: Mutex<Vec<Arc<WorkerBuffer>>>,
}

impl Collector {
    fn register(&self) -> Arc<WorkerBuffer> {
        let mut buffers = self.buffers.lock().expect("collector buffers");
        let buffer = Arc::new(WorkerBuffer {
            tid: buffers.len(),
            events: Mutex::new(Vec::new()),
        });
        buffers.push(buffer.clone());
        buffer
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A cheaply cloneable handle to a run's collector; inert (`None`) when
/// telemetry is off, so probes cost one thread-local check.
#[derive(Clone, Default)]
pub(crate) struct Telemetry(Option<Arc<Collector>>);

impl Telemetry {
    /// A collector when `options` request collection, an inert handle
    /// otherwise.
    pub(crate) fn new(options: &TelemetryOptions) -> Telemetry {
        if options.active() {
            Telemetry(Some(Arc::new(Collector {
                epoch: Instant::now(),
                buffers: Mutex::new(Vec::new()),
            })))
        } else {
            Telemetry(None)
        }
    }

    /// The always-inert handle (used where a test run has no telemetry).
    #[cfg(test)]
    pub(crate) fn disabled() -> Telemetry {
        Telemetry(None)
    }

    /// `true` when this handle records.
    pub(crate) fn is_active(&self) -> bool {
        self.0.is_some()
    }
}

/// The thread-local recording scope: the active collector and this
/// thread's buffer.
struct ThreadScope {
    collector: Arc<Collector>,
    buffer: Arc<WorkerBuffer>,
}

thread_local! {
    static CURRENT: RefCell<Option<ThreadScope>> = const { RefCell::new(None) };
}

/// Restores the previous thread-local scope on drop (scopes nest; an inert
/// handle installs `None`, shadowing any outer scope so an inner
/// telemetry-off run never records into an outer collector).
pub(crate) struct ScopeGuard {
    prev: Option<ThreadScope>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        let _ = CURRENT.try_with(|slot| *slot.borrow_mut() = prev);
    }
}

/// Enters `telemetry`'s recording scope on the current thread, registering
/// a fresh worker buffer (one trace track).  The first `enter` of a run —
/// the orchestrating thread — gets track 0.
pub(crate) fn enter(telemetry: &Telemetry) -> ScopeGuard {
    let scope = telemetry.0.as_ref().map(|collector| ThreadScope {
        collector: collector.clone(),
        buffer: collector.register(),
    });
    let prev = CURRENT.with(|slot| slot.replace(scope));
    ScopeGuard { prev }
}

/// Ends its span on drop.  Inert when recording is off.
pub(crate) struct SpanGuard(Option<(Arc<WorkerBuffer>, Arc<Collector>)>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((buffer, collector)) = self.0.take() {
            buffer.push(Event::End {
                ts_us: collector.now_us(),
            });
        }
    }
}

/// Begins a span in the current thread's scope; the returned guard ends it.
pub(crate) fn span(phase: &'static str, name: &str) -> SpanGuard {
    span_detail(phase, name, None, None)
}

/// [`span`] carrying engine provenance and the slice fingerprint (the
/// engine-cascade stages).
pub(crate) fn span_detail(
    phase: &'static str,
    name: &str,
    engine: Option<&'static str>,
    fingerprint: Option<Fingerprint>,
) -> SpanGuard {
    let active = CURRENT
        .try_with(|slot| {
            let slot = slot.borrow();
            let scope = slot.as_ref()?;
            scope.buffer.push(Event::Begin {
                phase,
                name: name.to_string(),
                engine,
                fingerprint,
                ts_us: scope.collector.now_us(),
            });
            Some((scope.buffer.clone(), scope.collector.clone()))
        })
        .ok()
        .flatten();
    SpanGuard(active)
}

/// Adds `value` to counter `name` in the metrics registry (a no-op outside
/// a recording scope, and for `value == 0` — absent counters stay absent).
pub(crate) fn count(name: &'static str, value: u64) {
    if value == 0 {
        return;
    }
    let _ = CURRENT.try_with(|slot| {
        if let Some(scope) = slot.borrow().as_ref() {
            scope.buffer.push(Event::Count { name, value });
        }
    });
}

/// Forces counter `name` to exist in the registry even at zero.  Used for
/// the robustness counters, where "0 faults contained" is itself a signal
/// worth reporting — with [`count`]'s absent-at-zero rule alone, a healthy
/// run's report could not be told apart from one without fault containment.
pub(crate) fn register_counter(name: &'static str) {
    let _ = CURRENT.try_with(|slot| {
        if let Some(scope) = slot.borrow().as_ref() {
            scope.buffer.push(Event::Count { name, value: 0 });
        }
    });
}

/// Records one sample of gauge `name` (timestamped; timing-only data).
pub(crate) fn gauge(name: &'static str, value: u64) {
    let _ = CURRENT.try_with(|slot| {
        if let Some(scope) = slot.borrow().as_ref() {
            scope.buffer.push(Event::Gauge {
                name,
                ts_us: scope.collector.now_us(),
                value,
            });
        }
    });
}

/// Adds the per-engine solver counters for one cascade stage to the
/// registry.
pub(crate) fn count_solver(engine: &'static str, stats: &crate::sat::SolverStats) {
    let names = match engine {
        "bmc" => (
            "solver.bmc.conflicts",
            "solver.bmc.propagations",
            "solver.bmc.restarts",
        ),
        "pdr" => (
            "solver.pdr.conflicts",
            "solver.pdr.propagations",
            "solver.pdr.restarts",
        ),
        _ => return,
    };
    count(names.0, stats.conflicts);
    count(names.1, stats.propagations);
    count(names.2, stats.restarts);
}

// ---------------------------------------------------------------------------
// The merged report
// ---------------------------------------------------------------------------

/// One completed span after the run-end merge.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Phase tag (`"elab"`, `"slice"`, `"engine.pdr"`, `"task"`, …).
    pub phase: &'static str,
    /// Property or artifact name ("" for anonymous spans).
    pub name: String,
    /// Engine provenance, for engine-cascade spans.
    pub engine: Option<&'static str>,
    /// Content fingerprint of the slice the span worked on, if any.
    pub fingerprint: Option<Fingerprint>,
    /// Trace track (worker) the span was recorded on; track 0 is the
    /// orchestrating thread.
    pub tid: usize,
    /// Microseconds from the collector epoch.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

/// One gauge sample.
#[derive(Debug, Clone)]
pub struct GaugeSample {
    /// Gauge name (e.g. `"pool.queue_depth"`).
    pub name: &'static str,
    /// Track that recorded the sample.
    pub tid: usize,
    /// Microseconds from the collector epoch.
    pub ts_us: u64,
    /// Sampled value.
    pub value: u64,
}

/// Verdict counts of the run (the deterministic backbone of the report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictCounts {
    /// Properties proven.
    pub proven: usize,
    /// Properties violated.
    pub violated: usize,
    /// Cover targets reached.
    pub covered: usize,
    /// Cover targets proven unreachable.
    pub unreachable: usize,
    /// Undecided properties.
    pub unknown: usize,
    /// Properties not checked (assumptions, X-prop checks).
    pub not_checked: usize,
    /// Properties degraded by a contained engine fault
    /// ([`crate::checker::PropertyStatus::Error`]).
    pub errors: usize,
}

/// The merged telemetry of one verification run: spans, the counter/gauge
/// registry, and the deterministic run summary.  Attached to
/// [`crate::checker::VerificationReport::telemetry`] when
/// [`TelemetryOptions::active`]; see the module docs for the
/// deterministic/timing split.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// DUT name.
    pub dut: String,
    /// Worker tracks that recorded events (the orchestrating thread plus
    /// every pool worker that ran).  Timing-dependent: a parallel run's
    /// count varies with the pool size.
    pub workers: usize,
    /// Wall-clock span of the collector, microseconds.
    pub total_us: u64,
    /// Completed spans, ordered by (track, begin order) — properly nested
    /// within each track.
    pub spans: Vec<SpanRecord>,
    /// The counter registry, name-sorted (deterministic).
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge samples in recording order per track (timing data).
    pub gauges: Vec<GaugeSample>,
    /// Total properties in the run.
    pub properties: usize,
    /// Verdict counts (deterministic).
    pub verdicts: VerdictCounts,
    /// Latches of the full compiled model.
    pub model_latches: usize,
    /// AND gates of the full compiled model.
    pub model_gates: usize,
    /// Summed slice latches over checked properties (deterministic).
    pub slice_latches: usize,
    /// Summed slice gates over checked properties (deterministic).
    pub slice_gates: usize,
}

/// Everything the checker knows that the collector does not: the run
/// context merged into the final [`TelemetryReport`].
pub(crate) struct RunSummary {
    pub dut: String,
    pub properties: usize,
    pub verdicts: VerdictCounts,
    pub model_latches: usize,
    pub model_gates: usize,
    pub slice_latches: usize,
    pub slice_gates: usize,
}

impl Telemetry {
    /// Merges every worker buffer into the final report (`None` for inert
    /// handles).  Call once, after the run; buffers are drained.
    pub(crate) fn finish(&self, summary: RunSummary) -> Option<TelemetryReport> {
        let collector = self.0.as_ref()?;
        let total_us = collector.now_us();
        let buffers = collector.buffers.lock().expect("collector buffers");
        let mut spans: Vec<SpanRecord> = Vec::new();
        let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut gauges: Vec<GaugeSample> = Vec::new();
        for buffer in buffers.iter() {
            let events = std::mem::take(&mut *buffer.events.lock().expect("worker buffer"));
            // Begin/End events are stack-disciplined per thread (RAII
            // guards), so a simple stack re-pairs them; spans land in
            // begin order, properly nested.
            let mut open: Vec<usize> = Vec::new();
            let mut last_ts = 0u64;
            for event in events {
                match event {
                    Event::Begin {
                        phase,
                        name,
                        engine,
                        fingerprint,
                        ts_us,
                    } => {
                        last_ts = last_ts.max(ts_us);
                        open.push(spans.len());
                        spans.push(SpanRecord {
                            phase,
                            name,
                            engine,
                            fingerprint,
                            tid: buffer.tid,
                            start_us: ts_us,
                            dur_us: 0,
                        });
                    }
                    Event::End { ts_us } => {
                        last_ts = last_ts.max(ts_us);
                        if let Some(index) = open.pop() {
                            spans[index].dur_us = ts_us.saturating_sub(spans[index].start_us);
                        }
                    }
                    Event::Count { name, value } => {
                        *counters.entry(name).or_insert(0) += value;
                    }
                    Event::Gauge { name, ts_us, value } => {
                        last_ts = last_ts.max(ts_us);
                        gauges.push(GaugeSample {
                            name,
                            tid: buffer.tid,
                            ts_us,
                            value,
                        });
                    }
                }
            }
            // A torn span (its guard never dropped) closes at the
            // buffer's last timestamp so the trace stays balanced.
            for index in open {
                spans[index].dur_us = last_ts.saturating_sub(spans[index].start_us);
            }
        }
        Some(TelemetryReport {
            dut: summary.dut,
            workers: buffers.len(),
            total_us,
            spans,
            counters: counters.into_iter().collect(),
            gauges,
            properties: summary.properties,
            verdicts: summary.verdicts,
            model_latches: summary.model_latches,
            model_gates: summary.model_gates,
            slice_latches: summary.slice_latches,
            slice_gates: summary.slice_gates,
        })
    }
}

/// Per-phase aggregate: span count and summed duration.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseStat {
    /// Number of spans with this phase tag.
    pub spans: usize,
    /// Summed span duration, microseconds.
    pub total_us: u64,
}

impl TelemetryReport {
    /// Per-phase span counts and summed durations, phase-sorted.  The
    /// counts are deterministic; the durations are not.
    pub fn phases(&self) -> BTreeMap<&'static str, PhaseStat> {
        let mut out: BTreeMap<&'static str, PhaseStat> = BTreeMap::new();
        for span in &self.spans {
            let stat = out.entry(span.phase).or_default();
            stat.spans += 1;
            stat.total_us += span.dur_us;
        }
        out
    }

    /// The value of counter `name`, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// The deterministic subset of the report as fixed-key-order JSON:
    /// verdict counts, per-phase span counts, the counter registry and
    /// gate totals.  Byte-identical across repeated runs of the same
    /// testbench at any thread count (scheduling only moves spans between
    /// tracks; it cannot change what runs), so golden tests and
    /// `BENCH_*.json` trajectories can compare it directly.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"dut\": \"{}\",", json_escape(&self.dut));
        let _ = writeln!(out, "  \"properties\": {},", self.properties);
        let v = self.verdicts;
        let _ = writeln!(
            out,
            "  \"verdicts\": {{\"proven\": {}, \"violated\": {}, \"covered\": {}, \
             \"unreachable\": {}, \"unknown\": {}, \"not_checked\": {}, \"errors\": {}}},",
            v.proven, v.violated, v.covered, v.unreachable, v.unknown, v.not_checked, v.errors
        );
        let _ = writeln!(
            out,
            "  \"model\": {{\"latches\": {}, \"gates\": {}}},",
            self.model_latches, self.model_gates
        );
        let _ = writeln!(
            out,
            "  \"slices\": {{\"latches\": {}, \"gates\": {}}},",
            self.slice_latches, self.slice_gates
        );
        out.push_str("  \"phases\": [");
        for (i, (phase, stat)) in self.phases().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"phase\": \"{}\", \"spans\": {}}}",
                json_escape(phase),
                stat.spans
            );
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"counters\": [");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"value\": {}}}",
                json_escape(name),
                value
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// The full run report as fixed-key-order JSON: the deterministic
    /// subset under `"deterministic"`, durations/workers/gauges under
    /// `"timing"`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n\"schema\": \"autosva-telemetry v1\",\n");
        out.push_str("\"deterministic\": ");
        // Indent the nested object by two spaces to keep the output
        // readable; key order is already fixed.
        let det = self.deterministic_json();
        out.push_str(det.trim_end());
        out.push_str(",\n\"timing\": {\n");
        let _ = writeln!(out, "  \"total_us\": {},", self.total_us);
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"spans\": {},", self.spans.len());
        out.push_str("  \"phases\": [");
        for (i, (phase, stat)) in self.phases().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"phase\": \"{}\", \"spans\": {}, \"total_us\": {}}}",
                json_escape(phase),
                stat.spans,
                stat.total_us
            );
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"gauges\": [");
        let mut gauge_stats: BTreeMap<&'static str, (usize, u64)> = BTreeMap::new();
        for g in &self.gauges {
            let entry = gauge_stats.entry(g.name).or_insert((0, 0));
            entry.0 += 1;
            entry.1 = entry.1.max(g.value);
        }
        for (i, (name, (samples, max))) in gauge_stats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"samples\": {}, \"max\": {}}}",
                json_escape(name),
                samples,
                max
            );
        }
        out.push_str("\n  ]\n}\n}\n");
        out
    }

    /// The run as a Chrome trace-event-format document (the JSON object
    /// form, `{"traceEvents": [...]}`), loadable in `about://tracing` and
    /// Perfetto.  One track per pool worker (track 0 is the orchestrating
    /// thread), named via `thread_name` metadata events; spans become
    /// `"B"`/`"E"` duration events, gauge samples become `"C"` counter
    /// events.  Within each track the events are balanced and their
    /// timestamps non-decreasing — see [`validate_chrome_trace`].
    pub fn to_chrome_trace(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for tid in 0..self.workers {
            let label = if tid == 0 {
                "orchestrator".to_string()
            } else {
                format!("worker-{tid}")
            };
            lines.push(format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"{label}\"}}}}"
            ));
        }
        // Spans are stored in begin order, properly nested per track; an
        // explicit end-time stack interleaves the "E" events back in.
        // Per track that produces non-decreasing timestamps already; the
        // final stable sort only merges the tracks' events and the gauge
        // samples into one globally time-ordered stream.
        let mut timed: Vec<(u64, String)> = Vec::new();
        for tid in 0..self.workers {
            let mut stack: Vec<u64> = Vec::new();
            for span in self.spans.iter().filter(|s| s.tid == tid) {
                let end = span.start_us + span.dur_us;
                while let Some(&top) = stack.last() {
                    if top < span.start_us {
                        stack.pop();
                        timed.push((
                            top,
                            format!("{{\"ph\": \"E\", \"pid\": 1, \"tid\": {tid}, \"ts\": {top}}}"),
                        ));
                    } else {
                        break;
                    }
                }
                let name = if span.name.is_empty() {
                    span.phase.to_string()
                } else {
                    format!("{} {}", span.phase, span.name)
                };
                let mut args = String::new();
                if let Some(engine) = span.engine {
                    let _ = write!(args, "\"engine\": \"{engine}\"");
                }
                if let Some(fp) = span.fingerprint {
                    if !args.is_empty() {
                        args.push_str(", ");
                    }
                    let _ = write!(args, "\"fingerprint\": \"{:016x}{:016x}\"", fp.0, fp.1);
                }
                timed.push((
                    span.start_us,
                    format!(
                        "{{\"ph\": \"B\", \"pid\": 1, \"tid\": {tid}, \"ts\": {}, \
                         \"name\": \"{}\", \"cat\": \"{}\", \"args\": {{{args}}}}}",
                        span.start_us,
                        json_escape(&name),
                        json_escape(span.phase),
                    ),
                ));
                stack.push(end);
            }
            while let Some(top) = stack.pop() {
                timed.push((
                    top,
                    format!("{{\"ph\": \"E\", \"pid\": 1, \"tid\": {tid}, \"ts\": {top}}}"),
                ));
            }
        }
        for g in &self.gauges {
            timed.push((
                g.ts_us,
                format!(
                    "{{\"ph\": \"C\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"name\": \"{}\", \
                     \"args\": {{\"value\": {}}}}}",
                    g.tid,
                    g.ts_us,
                    json_escape(g.name),
                    g.value
                ),
            ));
        }
        timed.sort_by_key(|&(ts, _)| ts);
        lines.extend(timed.into_iter().map(|(_, line)| line));
        let mut out = String::from("{\"traceEvents\": [\n");
        out.push_str(&lines.join(",\n"));
        out.push_str("\n]}\n");
        out
    }

    /// The human summary appended by
    /// [`crate::checker::VerificationReport::render_timed`]: the top-5
    /// phases by summed time, the cache hit rate and the fuzz throughput
    /// (when those subsystems ran).
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry: {} spans on {} track(s), {} counter(s), total {:.1}ms",
            self.spans.len(),
            self.workers,
            self.counters.len(),
            self.total_us as f64 / 1000.0
        );
        let mut phases: Vec<(&'static str, PhaseStat)> = self
            .phases()
            .into_iter()
            .filter(|(_, stat)| stat.total_us > 0)
            .collect();
        phases.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));
        if !phases.is_empty() {
            out.push_str("  top phases by time:");
            for (phase, stat) in phases.iter().take(5) {
                let _ = write!(
                    out,
                    "  {} {:.1}ms ({})",
                    phase,
                    stat.total_us as f64 / 1000.0,
                    stat.spans
                );
            }
            out.push('\n');
        }
        let hits = self.counter("cache.hits");
        let misses = self.counter("cache.misses");
        if hits.is_some() || misses.is_some() {
            let hits = hits.unwrap_or(0);
            let lookups = hits + misses.unwrap_or(0);
            let rate = if lookups > 0 {
                hits as f64 / lookups as f64 * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  cache: {hits} hit(s) / {lookups} lookup(s) ({rate:.0}% hit rate)"
            );
        }
        if let Some(cycles) = self.counter("fuzz.cycles") {
            let fuzz_us = self
                .phases()
                .get("fuzz.round")
                .map(|s| s.total_us)
                .unwrap_or(0);
            if fuzz_us > 0 {
                let _ = writeln!(
                    out,
                    "  fuzz: {cycles} stimulus-cycles in {:.1}ms ({:.0} cycles/ms)",
                    fuzz_us as f64 / 1000.0,
                    cycles as f64 / (fuzz_us as f64 / 1000.0)
                );
            } else {
                let _ = writeln!(out, "  fuzz: {cycles} stimulus-cycles");
            }
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Chrome-trace structural validation
// ---------------------------------------------------------------------------

/// Structural summary of a validated Chrome trace (see
/// [`validate_chrome_trace`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events (metadata, duration and counter events).
    pub events: usize,
    /// Distinct tracks (`tid`s) that carry duration events.
    pub tracks: usize,
    /// Balanced begin/end pairs.
    pub spans: usize,
}

/// Extracts the value following `"key": ` in a one-event-per-line trace
/// document (the shape [`TelemetryReport::to_chrome_trace`] writes).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pattern = format!("\"{key}\": ");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Structurally validates a Chrome trace-event document: it must parse
/// line-by-line into events whose `"B"`/`"E"` pairs are balanced within
/// every track and whose timestamps are non-decreasing per track.
///
/// This is the guard the telemetry tests and the CI smoke run use — it
/// checks the invariants a trace viewer needs, not full JSON conformance.
///
/// # Errors
///
/// Returns a description of the first structural violation: framing,
/// unparsable event lines, an `"E"` without an open `"B"`, timestamps
/// running backwards within a track, or unbalanced spans at the end.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let body = text
        .trim()
        .strip_prefix("{\"traceEvents\": [")
        .ok_or("missing {\"traceEvents\": [ framing")?
        .strip_suffix("]}")
        .ok_or("missing ]} framing")?;
    let mut summary = TraceSummary::default();
    let mut open: BTreeMap<u64, usize> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut tracks: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for (i, line) in body.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err(format!("event {i}: not a JSON object: {line}"));
        }
        summary.events += 1;
        let ph = field(line, "ph").ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        let ph = ph.trim_matches('"');
        if ph == "M" {
            continue;
        }
        let tid: u64 = field(line, "tid")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("event {i}: missing or bad \"tid\""))?;
        let ts: u64 = field(line, "ts")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("event {i}: missing or bad \"ts\""))?;
        let last = last_ts.entry(tid).or_insert(0);
        if ts < *last {
            return Err(format!(
                "event {i}: timestamp {ts} runs backwards on track {tid} (last {last})"
            ));
        }
        *last = ts;
        match ph {
            "B" => {
                if field(line, "name").is_none() {
                    return Err(format!("event {i}: \"B\" event without a name"));
                }
                *open.entry(tid).or_insert(0) += 1;
                tracks.insert(tid);
            }
            "E" => {
                let depth = open.entry(tid).or_insert(0);
                if *depth == 0 {
                    return Err(format!(
                        "event {i}: \"E\" without an open span on track {tid}"
                    ));
                }
                *depth -= 1;
                summary.spans += 1;
            }
            "C" => {}
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    if let Some((tid, depth)) = open.iter().find(|(_, &depth)| depth > 0) {
        return Err(format!("{depth} unclosed span(s) on track {tid}"));
    }
    summary.tracks = tracks.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active() -> Telemetry {
        Telemetry::new(&TelemetryOptions {
            enabled: true,
            ..TelemetryOptions::default()
        })
    }

    /// Whether the calling thread is currently inside an active recording
    /// scope (probes would record).
    fn enabled() -> bool {
        CURRENT.with(|current| current.borrow().is_some())
    }

    fn summary() -> RunSummary {
        RunSummary {
            dut: "dut".into(),
            properties: 3,
            verdicts: VerdictCounts {
                proven: 2,
                violated: 1,
                ..VerdictCounts::default()
            },
            model_latches: 10,
            model_gates: 20,
            slice_latches: 8,
            slice_gates: 15,
        }
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let telemetry = Telemetry::new(&TelemetryOptions::default());
        assert!(!telemetry.is_active());
        let _scope = enter(&telemetry);
        assert!(!enabled());
        {
            let _span = span("phase", "name");
            count("counter", 5);
            gauge("gauge", 1);
        }
        assert!(telemetry.finish(summary()).is_none());
    }

    #[test]
    fn spans_nest_and_merge_in_begin_order() {
        let telemetry = active();
        let _scope = enter(&telemetry);
        assert!(enabled());
        {
            let _outer = span("outer", "a");
            {
                let _inner = span_detail("inner", "b", Some("bmc"), Some(Fingerprint(1, 2)));
            }
            count("hits", 2);
            count("hits", 3);
            count("zeros", 0);
        }
        let report = telemetry.finish(summary()).expect("active telemetry");
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.spans[0].phase, "outer");
        assert_eq!(report.spans[1].phase, "inner");
        assert_eq!(report.spans[1].engine, Some("bmc"));
        assert_eq!(report.spans[1].fingerprint, Some(Fingerprint(1, 2)));
        assert!(report.spans[1].start_us >= report.spans[0].start_us);
        assert_eq!(report.counters, vec![("hits", 5)]);
        assert_eq!(report.counter("hits"), Some(5));
        assert_eq!(report.counter("zeros"), None);
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn scopes_restore_on_drop_and_shadow() {
        let outer = active();
        let _outer_scope = enter(&outer);
        {
            // An inert inner run shadows the outer collector entirely.
            let inner = Telemetry::disabled();
            let _inner_scope = enter(&inner);
            assert!(!enabled());
            let _span = span("hidden", "");
        }
        assert!(enabled());
        let report = outer.finish(summary()).unwrap();
        assert!(report.spans.is_empty(), "shadowed span must not record");
    }

    #[test]
    fn worker_threads_get_their_own_tracks() {
        let telemetry = active();
        let _scope = enter(&telemetry);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let handle = telemetry.clone();
                scope.spawn(move || {
                    let _scope = enter(&handle);
                    let _span = span("task", "t");
                    count("work", 1);
                });
            }
        });
        let report = telemetry.finish(summary()).unwrap();
        assert_eq!(report.workers, 4, "main + three workers");
        assert_eq!(report.spans.len(), 3);
        let tids: std::collections::BTreeSet<usize> = report.spans.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 3, "each worker records on its own track");
        assert_eq!(report.counter("work"), Some(3));
    }

    #[test]
    fn chrome_trace_is_structurally_valid() {
        let telemetry = active();
        let _scope = enter(&telemetry);
        {
            let _a = span("phase.a", "p1");
            let _b = span("phase.b", "p2");
            gauge("pool.queue_depth", 7);
        }
        std::thread::scope(|scope| {
            let handle = telemetry.clone();
            scope.spawn(move || {
                let _scope = enter(&handle);
                let _span = span("task", "remote");
            });
        });
        let report = telemetry.finish(summary()).unwrap();
        let trace = report.to_chrome_trace();
        let summary = validate_chrome_trace(&trace).expect("valid trace");
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.tracks, 2);
        assert!(summary.events > 2 + 3 * 2, "metadata + spans + gauge");
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not a trace").is_err());
        let unbalanced = "{\"traceEvents\": [\n\
            {\"ph\": \"B\", \"pid\": 1, \"tid\": 0, \"ts\": 1, \"name\": \"x\", \"args\": {}}\n\
            ]}";
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("unclosed"));
        let orphan_end = "{\"traceEvents\": [\n\
            {\"ph\": \"E\", \"pid\": 1, \"tid\": 0, \"ts\": 1}\n\
            ]}";
        assert!(validate_chrome_trace(orphan_end)
            .unwrap_err()
            .contains("without an open span"));
        let backwards = "{\"traceEvents\": [\n\
            {\"ph\": \"B\", \"pid\": 1, \"tid\": 0, \"ts\": 5, \"name\": \"x\", \"args\": {}},\n\
            {\"ph\": \"E\", \"pid\": 1, \"tid\": 0, \"ts\": 2}\n\
            ]}";
        assert!(validate_chrome_trace(backwards)
            .unwrap_err()
            .contains("backwards"));
    }

    #[test]
    fn json_reports_have_fixed_key_order() {
        let telemetry = active();
        {
            let _scope = enter(&telemetry);
            let _span = span("compile", "");
            count("cache.hits", 4);
            count("cache.misses", 1);
        }
        let report = telemetry.finish(summary()).unwrap();
        let det = report.deterministic_json();
        // Keys appear in the documented fixed order.
        let keys = [
            "\"dut\"",
            "\"properties\"",
            "\"verdicts\"",
            "\"model\"",
            "\"slices\"",
            "\"phases\"",
            "\"counters\"",
        ];
        let mut pos = 0;
        for key in keys {
            let at = det[pos..]
                .find(key)
                .unwrap_or_else(|| panic!("{key} missing or out of order in:\n{det}"));
            pos += at;
        }
        // No timing data leaks into the deterministic subset.
        assert!(!det.contains("total_us"));
        assert!(!det.contains("workers"));
        let full = report.to_json();
        assert!(full.contains("\"deterministic\""));
        assert!(full.contains("\"timing\""));
        assert!(full.contains("\"total_us\""));
        let summary_text = report.render_summary();
        assert!(summary_text.contains("telemetry:"));
        assert!(summary_text.contains("cache: 4 hit(s) / 5 lookup(s) (80% hit rate)"));
    }

    #[test]
    fn solver_counters_register_per_engine() {
        let telemetry = active();
        {
            let _scope = enter(&telemetry);
            let stats = crate::sat::SolverStats {
                conflicts: 3,
                propagations: 100,
                restarts: 1,
                ..crate::sat::SolverStats::default()
            };
            count_solver("bmc", &stats);
            count_solver("pdr", &stats);
            count_solver("unknown-engine", &stats);
        }
        let report = telemetry.finish(summary()).unwrap();
        assert_eq!(report.counter("solver.bmc.conflicts"), Some(3));
        assert_eq!(report.counter("solver.pdr.propagations"), Some(100));
        assert_eq!(report.counter("solver.bmc.restarts"), Some(1));
        assert_eq!(report.counters.len(), 6);
    }
}
