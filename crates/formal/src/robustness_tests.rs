//! Differential fault-containment tests for the interrupt/budget subsystem
//! and the panic-isolation layer (see [`crate::interrupt`] and
//! [`crate::faults`]).
//!
//! Every test here follows the same contract: run a testbench fault-free,
//! run it again with exactly one fault armed (a panic, a spurious timeout,
//! or a delay at a named engine site), and assert that
//!
//! * the run still returns a complete report (no unwinding past `verify`),
//! * only the targeted property degrades (`Error` for a panic, `Unknown`
//!   with a budget note for a timeout, nothing at all for a delay), and
//! * every other property's rendered verdict is byte-identical to the
//!   fault-free run, at worker counts 1 and 4.
//!
//! The fault registry is process-global, so every arming test runs under
//! [`fault_lock`] and targets properties of a design whose transaction
//! name (`rbt`) appears nowhere else in the test suite — a concurrently
//! running checker test can share a fault site without ever matching an
//! arm's property filter.

use crate::bmc::BmcOptions;
use crate::checker::{verify, CheckOptions, PropertyResult, PropertyStatus, VerificationReport};
use crate::faults::{self, FaultAction};
use autosva::sva::Directive;
use autosva::{generate_ft, AutosvaOptions, PropertyClass};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// A well-behaved single-outstanding echo DUT reserved for the fault
/// tests.  The transaction name is unique across the test suite so armed
/// property filters never match a property of another, concurrently
/// running test.
const FAULT_ECHO: &str = r#"
/*AUTOSVA
rbt_txn: req -in> res
req_val = req_val
req_ack = req_ack
[1:0] req_transid = req_id
res_val = res_val
[1:0] res_transid = res_id
*/
module rbt_echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  input  logic [1:0] req_id,
  output logic res_val,
  output logic [1:0] res_id
);
  logic busy_q;
  logic [1:0] id_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q <= 1'b0;
      id_q <= 2'b0;
    end else begin
      if (req_val && req_ack) begin
        busy_q <= 1'b1;
        id_q <= req_id;
      end else if (busy_q) begin
        busy_q <= 1'b0;
      end
    end
  end
  assign req_ack = !busy_q;
  assign res_val = busy_q;
  assign res_id = id_q;
endmodule
"#;

/// Serializes the tests that arm the process-global fault registry.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A panicking assertion in one test must not wedge the others.
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn run_with(options: &CheckOptions) -> VerificationReport {
    let ft = generate_ft(FAULT_ECHO, &AutosvaOptions::default()).unwrap();
    verify(FAULT_ECHO, &ft, options).unwrap()
}

fn options_with_threads(threads: usize) -> CheckOptions {
    let mut options = CheckOptions::default();
    options.parallel.threads = threads;
    options
}

/// The first safety assertion of the report — every engine scenario
/// routes this property through the engine under test.
fn first_safety_assertion(report: &VerificationReport) -> String {
    report
        .results
        .iter()
        .find(|r| r.directive == Directive::Assert && r.class == PropertyClass::Safety)
        .expect("design has a safety assertion")
        .name
        .clone()
}

/// Exactly the per-property content [`VerificationReport::render`] emits:
/// status, proof artifact, cone sizes and note.  Comparing this string is
/// comparing the property's rendered verdict byte-for-byte.
fn rendered_verdict(r: &PropertyResult) -> String {
    let mut s = r.status.to_string();
    if let PropertyStatus::Proven(proof) = &r.status {
        s.push_str(&format!(" [{}]", proof.describe()));
    }
    if !matches!(r.status, PropertyStatus::NotChecked(_)) {
        s.push_str(&format!(
            " (cone {} latches, {} gates)",
            r.slice_latches, r.slice_gates
        ));
    }
    if let Some(note) = &r.note {
        s.push_str(&format!(" note: {note}"));
    }
    s
}

/// Asserts the degradation contract: same properties in the same order,
/// and every row except `target` rendered byte-identically.
fn assert_only_target_degraded(
    baseline: &VerificationReport,
    faulty: &VerificationReport,
    target: &str,
) {
    assert_eq!(
        baseline.results.len(),
        faulty.results.len(),
        "fault changed the number of report rows"
    );
    for (b, f) in baseline.results.iter().zip(&faulty.results) {
        assert_eq!(b.name, f.name, "fault changed the property order");
        if b.name == target {
            continue;
        }
        assert_eq!(
            rendered_verdict(b),
            rendered_verdict(f),
            "fault leaked into non-target property `{}`",
            b.name
        );
    }
}

/// One per-engine scenario: the fault site, the engine tag the degraded
/// row must carry, and options steering the target property into that
/// engine (the cascade stops at the first engine that decides a
/// property, so later stages need the earlier ones disabled).
fn engine_scenarios() -> Vec<(&'static str, &'static str, CheckOptions)> {
    let pdr_options = CheckOptions {
        disable_bmc: true,
        ..CheckOptions::default()
    };
    let explicit_options = CheckOptions {
        disable_bmc: true,
        disable_pdr: true,
        ..CheckOptions::default()
    };
    vec![
        ("fuzz.round", "fuzz", CheckOptions::default()),
        ("bmc.depth_step", "bmc", CheckOptions::default()),
        ("pdr.block_cube", "pdr", pdr_options),
        ("explicit.step", "explicit", explicit_options),
    ]
}

#[test]
fn injected_panic_in_each_engine_degrades_only_the_target_property() {
    let _serial = fault_lock();
    for (site, engine, base_options) in engine_scenarios() {
        for threads in [1usize, 4] {
            let mut options = base_options.clone();
            options.parallel.threads = threads;
            options.telemetry.enabled = true;
            let baseline = run_with(&options);
            let target = first_safety_assertion(&baseline);
            let faulty = {
                let _arm = faults::arm(site, FaultAction::Panic, Some(&target));
                run_with(&options)
            };
            let row = faulty
                .results
                .iter()
                .find(|r| r.name == target)
                .expect("target row present");
            match &row.status {
                PropertyStatus::Error { engine: e, message } => {
                    assert_eq!(*e, engine, "wrong engine tag for site {site}");
                    assert_eq!(message, &format!("fault injected at {site}"));
                }
                other => panic!(
                    "site {site} (threads {threads}): target did not degrade to Error: {other}"
                ),
            }
            assert_only_target_degraded(&baseline, &faulty, &target);
            let text = faulty.render();
            assert!(
                text.contains(&format!("ERROR in {engine}: fault injected at {site}")),
                "report does not surface the contained panic:\n{text}"
            );
            let telemetry = faulty.telemetry.as_ref().expect("telemetry enabled");
            let caught: u64 = telemetry
                .counters
                .iter()
                .filter(|(name, _)| *name == "robustness.panics_caught")
                .map(|(_, v)| v)
                .sum();
            assert_eq!(caught, 1, "exactly one contained panic for site {site}");
        }
    }
}

#[test]
fn injected_spurious_timeout_degrades_only_the_target_property() {
    let _serial = fault_lock();
    for threads in [1usize, 4] {
        let options = options_with_threads(threads);
        let baseline = run_with(&options);
        let target = first_safety_assertion(&baseline);
        let faulty = {
            let _arm = faults::arm("bmc.depth_step", FaultAction::Timeout, Some(&target));
            run_with(&options)
        };
        let row = faulty
            .results
            .iter()
            .find(|r| r.name == target)
            .expect("target row present");
        assert_eq!(
            row.status,
            PropertyStatus::Unknown,
            "spurious timeout must degrade the target to Unknown (threads {threads})"
        );
        assert_eq!(
            row.note.as_deref(),
            Some("undecided: budget exhausted in bmc"),
            "budget note names the interrupted engine"
        );
        assert_only_target_degraded(&baseline, &faulty, &target);
    }
}

proptest! {
    /// Differential contract over the whole fault space: any single
    /// injected fault — any engine site, any action, any worker count —
    /// yields a complete report where only the targeted property may
    /// degrade (and a pure delay degrades nothing).
    ///
    /// The sampled domain is small (4 sites x 3 actions x 2 worker
    /// counts), so repeated draws are deduplicated and the fault-free
    /// baseline is computed once per (site, workers) pair — the 64
    /// deterministic proptest cases effectively sweep the whole space
    /// without re-verifying it dozens of times.
    #[test]
    fn any_single_fault_degrades_at_most_the_target(
        scenario_idx in 0usize..4,
        action_idx in 0usize..3,
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        use std::collections::{HashMap, HashSet};
        use std::sync::OnceLock;
        static SEEN: OnceLock<Mutex<HashSet<(usize, usize, usize)>>> = OnceLock::new();
        static BASELINES: OnceLock<Mutex<HashMap<(usize, usize), VerificationReport>>> =
            OnceLock::new();
        let fresh = SEEN
            .get_or_init(|| Mutex::new(HashSet::new()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert((scenario_idx, action_idx, threads));
        if fresh {
            let _serial = fault_lock();
            let (site, engine, base_options) = engine_scenarios().swap_remove(scenario_idx);
            let mut options = base_options;
            options.parallel.threads = threads;
            let baseline = BASELINES
                .get_or_init(|| Mutex::new(HashMap::new()))
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry((scenario_idx, threads))
                .or_insert_with(|| run_with(&options))
                .clone();
            let target = first_safety_assertion(&baseline);
            let action = match action_idx {
                0 => FaultAction::Panic,
                1 => FaultAction::Timeout,
                _ => FaultAction::Delay(Duration::from_millis(2)),
            };
            let faulty = {
                let _arm = faults::arm(site, action, Some(&target));
                run_with(&options)
            };
            assert_only_target_degraded(&baseline, &faulty, &target);
            let row = faulty
                .results
                .iter()
                .find(|r| r.name == target)
                .expect("target row present");
            let base_row = baseline
                .results
                .iter()
                .find(|r| r.name == target)
                .expect("target row present in baseline");
            match action_idx {
                0 => prop_assert!(
                    matches!(&row.status, PropertyStatus::Error { engine: e, .. } if *e == engine),
                    "panic at {site} must yield Error in {engine}, got {}",
                    row.status
                ),
                1 => {
                    prop_assert_eq!(&row.status, &PropertyStatus::Unknown);
                    prop_assert_eq!(
                        row.note.as_deref(),
                        Some(format!("undecided: budget exhausted in {engine}").as_str())
                    );
                }
                _ => prop_assert_eq!(
                    rendered_verdict(row),
                    rendered_verdict(base_row),
                    "a pure delay must not change any verdict"
                ),
            }
        }
    }
}

#[test]
fn zero_timeout_reports_budget_unknown_for_every_checked_property() {
    let mut renders = Vec::new();
    for threads in [1usize, 4] {
        let mut options = options_with_threads(threads);
        options.parallel.property_timeout = Some(Duration::ZERO);
        let report = run_with(&options);
        for r in report.checked() {
            assert_eq!(
                r.status,
                PropertyStatus::Unknown,
                "property {} decided despite a zero budget (threads {threads})",
                r.name
            );
            let note = r.note.as_deref().unwrap_or("");
            assert!(
                note.starts_with("undecided: budget exhausted in "),
                "property {} lacks the budget note (threads {threads}): {note:?}",
                r.name
            );
        }
        renders.push(report.render());
    }
    assert_eq!(
        renders[0], renders[1],
        "zero-budget reports must render identically at 1 and 4 workers"
    );
}

#[test]
fn generous_timeout_renders_identically_to_unbounded() {
    for threads in [1usize, 4] {
        let unbounded = run_with(&options_with_threads(threads));
        let mut options = options_with_threads(threads);
        options.parallel.property_timeout = Some(Duration::from_secs(3600));
        let bounded = run_with(&options);
        assert_eq!(
            unbounded.render(),
            bounded.render(),
            "a generous budget must not perturb the report (threads {threads})"
        );
    }
}

/// The acceptance bound for prompt cancellation: on a BMC-hard instance a
/// 50 ms property budget comes back `Unknown` with a note naming the
/// engine, and the property's wall clock stays within 2x the budget.  The
/// SAT search polls its interrupt on a conflict cadence *and* a
/// propagation-count cadence (long unit-propagation storms between
/// conflicts used to stretch the overshoot to several polling intervals,
/// hence the old 4x bound), so the overshoot is now one short polling
/// interval, not one cascade stage.
#[test]
fn hard_bmc_instance_times_out_promptly_with_an_engine_note() {
    let timeout = Duration::from_millis(50);
    // No induction and a practically unbounded depth: full-depth BMC
    // grinds depth after depth and can only be stopped by the budget.
    let mut options = CheckOptions {
        bmc: BmcOptions {
            max_depth: 1_000_000,
            max_induction: 0,
        },
        disable_pdr: true,
        disable_explicit: true,
        ..CheckOptions::default()
    };
    options.parallel.threads = 1;
    options.parallel.property_timeout = Some(timeout);
    let report = run_with(&options);
    let budgeted: Vec<&PropertyResult> = report
        .results
        .iter()
        .filter(|r| r.note.as_deref() == Some("undecided: budget exhausted in bmc"))
        .collect();
    assert!(
        !budgeted.is_empty(),
        "no property hit the bmc budget:\n{}",
        report.render()
    );
    for r in budgeted {
        assert_eq!(r.status, PropertyStatus::Unknown);
        assert!(
            r.runtime <= 2 * timeout,
            "property {} overshot its {timeout:?} budget: ran {:?}",
            r.name,
            r.runtime
        );
    }
}

/// The front-end deadline (parse/elaborate/compile/lint) fails the run
/// with a phase-naming error instead of hanging, while a generous budget
/// changes nothing about the report.
#[test]
fn frontend_deadline_fails_fast_and_a_generous_one_is_invisible() {
    let ft = generate_ft(FAULT_ECHO, &AutosvaOptions::default()).unwrap();
    let mut options = CheckOptions::default();
    options.parallel.threads = 1;
    options.frontend_timeout = Some(Duration::ZERO);
    let err = verify(FAULT_ECHO, &ft, &options).expect_err("zero front-end budget must fail");
    let message = err.to_string();
    assert!(
        message.contains("front-end deadline exceeded during"),
        "error does not name the front-end phase: {message}"
    );

    let unbudgeted = run_with(&options_with_threads(1));
    options.frontend_timeout = Some(Duration::from_secs(3600));
    let budgeted = verify(FAULT_ECHO, &ft, &options).unwrap();
    assert_eq!(
        unbudgeted.render(),
        budgeted.render(),
        "a generous front-end budget must not perturb the report"
    );
}
