//! AIG static analysis and optimization between compile and the cascade.
//!
//! [`optimize`] rewrites a checked [`Model`] into a smaller, functionally
//! equivalent one.  It is applied by the checker to every cone-of-influence
//! slice (and, for liveness, to the liveness-to-safety product) before any
//! engine runs, so BMC unrollings, PDR frames and explicit-state sweeps all
//! pay for fewer gates and latches.  Five analyses cooperate:
//!
//! * **ternary constant sweeping** — a least-fixpoint three-valued
//!   simulation from the reset state (inputs unknown) proves latches stuck
//!   at their initial value ([`constant_latches`]); they are substituted by
//!   constants, which cascades through the combinational logic;
//! * **sequential latch sweeping** (van Eijk) — random sequential
//!   simulation partitions latches into candidate equivalence classes
//!   (including stuck-at-constant candidates the ternary analysis cannot
//!   see); the candidates are then proven by SAT *induction* — assume the
//!   equivalences over a free current state, show every next-state function
//!   preserves them, refining the partition with each counterexample —
//!   and proven classes are merged onto one representative register.  This
//!   is where testbench monitor state that duplicates design state (e.g.
//!   an AutoSVA transaction counter shadowing an RTL occupancy counter)
//!   collapses;
//! * **combinational gate sweeping** (FRAIG-style) — random-pattern
//!   signatures partition AND nodes into candidate classes, a SAT miter
//!   over a free state proves unconditional equivalence, and proven nodes
//!   are merged onto the earliest representative, catching
//!   structurally-different-but-equivalent logic the hash cannot;
//! * **structural rewriting** — the rebuild funnels every AND gate through
//!   the one-level strash of [`Aig::and`] *plus* the classic two-level
//!   rules (subsumption, contradiction, or-absorption, substitution,
//!   resolution), which collapse the redundant `or(s, and(!s, e))` shapes
//!   that word-level mux lowering leaves behind;
//! * **dead-node elimination** — only logic reachable from the model's
//!   roots (bad/cover literals, invariant constraints, liveness and
//!   fairness properties) is rebuilt; unobservable latches, inputs and
//!   gates are dropped, exactly like [`crate::coi`] does for the initial
//!   slice.
//!
//! Passes repeat until the content fingerprint is stable, which makes the
//! whole transformation *idempotent* — `optimize(optimize(m))` returns a
//! model fingerprint-identical to `optimize(m)` — and therefore safe to key
//! the proof cache on.  Every transformation preserves the value of every
//! kept root along every input sequence from reset (merged latches agree on
//! all reachable states — the SAT induction certifies an inductive
//! invariant — and the other four rewrites are equivalences everywhere), so
//! verdicts, counterexample traces (replayed on either model: dropped
//! inputs are provably irrelevant to all roots) and PDR invariants carry
//! over unchanged.
//!
//! Constants discovered here are also reported by name so the Level-1 lint
//! pass ([`crate::lint`]) can surface "register is stuck at its reset
//! value" diagnostics from the same analysis.

use crate::aig::{Aig, Lit, Node};
use crate::coi::{fingerprint, Fingerprint};
use crate::model::{BadProperty, CoverProperty, Model, ResponseProperty};
use crate::sat::SatResult;
use crate::unroll::Unroller;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};

/// A three-valued signal value for the reachability fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TVal {
    /// Definitely false in every reachable state seen so far.
    F,
    /// Definitely true in every reachable state seen so far.
    T,
    /// Unknown / both values possible.
    X,
}

impl TVal {
    fn of(b: bool) -> TVal {
        if b {
            TVal::T
        } else {
            TVal::F
        }
    }

    fn join(self, other: TVal) -> TVal {
        if self == other {
            self
        } else {
            TVal::X
        }
    }

    fn not(self) -> TVal {
        match self {
            TVal::F => TVal::T,
            TVal::T => TVal::F,
            TVal::X => TVal::X,
        }
    }

    fn and(self, other: TVal) -> TVal {
        match (self, other) {
            (TVal::F, _) | (_, TVal::F) => TVal::F,
            (TVal::T, TVal::T) => TVal::T,
            _ => TVal::X,
        }
    }
}

/// Latches of `aig` that provably hold their initial value in every
/// reachable state, as `(latch node, stuck-at value)` pairs in node order.
///
/// The proof is a three-valued least-fixpoint simulation: starting from the
/// concrete reset state with every primary input unknown, latch values are
/// widened with each step's next-state evaluation until nothing changes.
/// The lattice has height two per latch, so the loop terminates after at
/// most `2 * num_latches + 1` rounds.  A latch still two-valued at the
/// fixpoint is constant in *every* reachable state (the simulation
/// overapproximates reachability), which makes the substitution in
/// [`optimize`] sound for safety, cover and liveness targets alike.
pub fn constant_latches(aig: &Aig) -> Vec<(usize, bool)> {
    let latches = aig.latches();
    if latches.is_empty() {
        return Vec::new();
    }
    let mut state: HashMap<usize, TVal> =
        latches.iter().map(|l| (l.node, TVal::of(l.init))).collect();
    let mut vals: Vec<TVal> = vec![TVal::F; aig.num_nodes()];
    loop {
        // One forward evaluation pass; node indices are topologically
        // ordered (AND inputs always reference earlier nodes).
        for idx in 0..aig.num_nodes() {
            vals[idx] = match aig.node(idx) {
                Node::False => TVal::F,
                Node::Input => TVal::X,
                Node::Latch => state[&idx],
                Node::And(a, b) => {
                    let va = lit_val(&vals, a);
                    let vb = lit_val(&vals, b);
                    va.and(vb)
                }
            };
        }
        let mut changed = false;
        for latch in latches {
            let next = lit_val(&vals, latch.next);
            let widened = state[&latch.node].join(next);
            if widened != state[&latch.node] {
                state.insert(latch.node, widened);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    latches
        .iter()
        .filter_map(|l| match state[&l.node] {
            TVal::F => Some((l.node, false)),
            TVal::T => Some((l.node, true)),
            TVal::X => None,
        })
        .collect()
}

fn lit_val(vals: &[TVal], l: Lit) -> TVal {
    let v = vals[l.node()];
    if l.is_inverted() {
        v.not()
    } else {
        v
    }
}

/// The result of [`optimize`]: the rewritten model plus the latches proven
/// constant, by their original names.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// The optimized, functionally equivalent model.
    pub model: Model,
    /// Latches proven stuck at their reset value across all passes, as
    /// `(name, value)` in discovery order (deduplicated by name).
    pub constant_latches: Vec<(String, bool)>,
}

/// Upper bound on rewrite passes; real models stabilize in two or three.
const MAX_PASSES: usize = 8;

/// Optimizes a model: constant sweeping, two-level AND rewriting and
/// dead-node elimination, repeated to a fingerprint fixpoint.
///
/// Every property literal (bads, covers, constraints, liveness, fairness)
/// is a root: the rewritten model computes bit-identical values for all of
/// them on every input sequence, latch initial values and surviving names
/// are preserved, and the bad/cover/liveness property lists keep their
/// order.  The pass is deterministic and idempotent, so content
/// fingerprints of optimized models are stable across processes and safe
/// as proof-cache keys.
pub fn optimize(model: &Model) -> OptResult {
    let _span = crate::telemetry::span("opt", "");
    crate::telemetry::count("opt.gates_before", model.aig.num_ands() as u64);
    crate::telemetry::count("opt.latches_before", model.aig.num_latches() as u64);
    let mut current = model.clone();
    let mut fp = fingerprint(&current);
    let mut constants: Vec<(String, bool)> = Vec::new();
    for _ in 0..MAX_PASSES {
        let next = {
            let _pass_span = crate::telemetry::span("opt.pass", "");
            crate::telemetry::count("opt.passes", 1);
            one_pass(&current, &mut constants)
        };
        let next_fp = fingerprint(&next);
        if next_fp == fp {
            break;
        }
        current = next;
        fp = next_fp;
    }
    crate::telemetry::count("opt.gates_after", current.aig.num_ands() as u64);
    crate::telemetry::count("opt.latches_after", current.aig.num_latches() as u64);
    OptResult {
        model: current,
        constant_latches: constants,
    }
}

/// Convenience wrapper: the optimized model together with its fingerprint.
pub fn optimize_with_fingerprint(model: &Model) -> (Model, Fingerprint) {
    let optimized = optimize(model).model;
    let fp = fingerprint(&optimized);
    (optimized, fp)
}

/// Number of 64-bit random stimulus words per sequential simulation run.
const SEQ_SIM_STEPS: usize = 48;
/// Number of 64-bit random pattern words for combinational signatures.
const COMB_SIM_WORDS: usize = 4;
/// Fixed seed for the signature simulations (determinism across processes).
const SWEEP_SEED: u64 = 0x005E_ED0F_0DD5;

/// Evaluates every node of `aig` over 64 parallel bit-patterns.
///
/// `leaf` supplies the 64-bit word for inputs and latches; the result is
/// indexed by node.
fn eval_words(aig: &Aig, leaf: impl Fn(usize) -> u64) -> Vec<u64> {
    let word = |vals: &[u64], l: Lit| -> u64 {
        let w = vals[l.node()];
        if l.is_inverted() {
            !w
        } else {
            w
        }
    };
    let mut vals = vec![0u64; aig.num_nodes()];
    for idx in 1..aig.num_nodes() {
        vals[idx] = match aig.node(idx) {
            Node::False => 0,
            Node::Input | Node::Latch => leaf(idx),
            Node::And(a, b) => word(&vals, a) & word(&vals, b),
        };
    }
    vals
}

/// Evaluates every node over one concrete leaf valuation.
fn eval_bools(aig: &Aig, leaf: impl Fn(usize) -> bool) -> Vec<bool> {
    let bit = |vals: &[bool], l: Lit| -> bool { vals[l.node()] ^ l.is_inverted() };
    let mut vals = vec![false; aig.num_nodes()];
    for idx in 1..aig.num_nodes() {
        vals[idx] = match aig.node(idx) {
            Node::False => false,
            Node::Input | Node::Latch => leaf(idx),
            Node::And(a, b) => bit(&vals, a) && bit(&vals, b),
        };
    }
    vals
}

/// Sequentially-proven latch equivalences: `latch node -> representative
/// literal` of the *original* AIG, where the representative is either an
/// earlier latch (possibly inverted) or a constant.
///
/// Candidates come from random sequential simulation from reset: each latch
/// is normalized by its initial value (`value XOR init`), so two latches in
/// the same candidate class agree at reset *by construction* (base case)
/// and — per simulation — on every sampled trace.  The candidates are then
/// certified by SAT induction: over a free current state satisfying all
/// candidate equivalences, every class member's next-state function must
/// agree with its representative's.  A counterexample is turned into a
/// full leaf valuation and used to split the classes; the loop repeats
/// until the whole partition is inductive.
///
/// The induction step may assume the model's invariant constraints on the
/// *current* state: engines discard any execution whose prefix violates a
/// constraint, so every state they evaluate is either the initial state
/// (which satisfies the equivalences by construction) or the successor of
/// a constraint-satisfying state (where the induction step applies).  The
/// certified equivalences therefore hold on every state any engine ever
/// evaluates, and merging preserves all verdicts, traces and invariants.
fn latch_equivalences(model: &Model) -> BTreeMap<usize, Lit> {
    let aig = &model.aig;
    let latches = aig.latches().to_vec();
    if latches.is_empty() {
        return BTreeMap::new();
    }
    let init_of: HashMap<usize, bool> = latches.iter().map(|l| (l.node, l.init)).collect();
    let mask = |b: bool| -> u64 {
        if b {
            !0
        } else {
            0
        }
    };

    // --- candidate partition from random sequential runs -----------------
    //
    // Lanes (bit positions of the 64-bit words) whose stimulus has violated
    // an invariant constraint at an earlier cycle are masked out of the
    // signatures: engines never evaluate such states, so divergence there
    // must not split a candidate class.  Several short runs keep enough
    // live lanes for discrimination even under tight assumptions.
    let mut rng = StdRng::seed_from_u64(SWEEP_SEED);
    let mut signatures: HashMap<usize, Vec<u64>> =
        latches.iter().map(|l| (l.node, Vec::new())).collect();
    const SEQ_SIM_RUNS: usize = 8;
    let steps_per_run = SEQ_SIM_STEPS / SEQ_SIM_RUNS;
    for _ in 0..SEQ_SIM_RUNS {
        let mut state: HashMap<usize, u64> =
            latches.iter().map(|l| (l.node, mask(l.init))).collect();
        let mut valid: u64 = !0;
        for _ in 0..steps_per_run {
            let inputs: HashMap<usize, u64> =
                aig.inputs().iter().map(|&n| (n, rng.next_u64())).collect();
            let vals = eval_words(aig, |n| match aig.node(n) {
                Node::Latch => state[&n],
                _ => inputs[&n],
            });
            let word = |l: Lit| -> u64 {
                let w = vals[l.node()];
                if l.is_inverted() {
                    !w
                } else {
                    w
                }
            };
            for latch in &latches {
                // The state at this cycle is evaluated whenever every
                // *earlier* cycle satisfied the constraints, so it is
                // masked by the prefix validity (before this cycle's
                // constraint check).
                signatures
                    .get_mut(&latch.node)
                    .unwrap()
                    .push((state[&latch.node] ^ mask(latch.init)) & valid);
            }
            for &c in &model.constraints {
                valid &= word(c);
            }
            for latch in &latches {
                state.insert(latch.node, word(latch.next));
            }
        }
    }
    // Normalized signature -> member latch nodes (sorted by BTreeMap).
    let mut classes: BTreeMap<Vec<u64>, Vec<usize>> = BTreeMap::new();
    for latch in &latches {
        classes
            .entry(signatures.remove(&latch.node).unwrap())
            .or_default()
            .push(latch.node);
    }
    let zero_sig = vec![0u64; SEQ_SIM_RUNS * steps_per_run];
    // Each class as (constant?, sorted members); non-constant classes keep
    // their smallest member as the representative.
    let mut partition: Vec<(bool, Vec<usize>)> = classes
        .into_iter()
        .map(|(sig, mut members)| {
            members.sort_unstable();
            (sig == zero_sig, members)
        })
        .filter(|(is_const, members)| *is_const || members.len() > 1)
        .collect();
    partition.sort_unstable_by_key(|(_, members)| members[0]);

    // --- induction refinement loop --------------------------------------
    loop {
        // (member, rep) pairs to certify this round; rep==None ~ constant.
        let pairs: Vec<(usize, Option<usize>)> = partition
            .iter()
            .flat_map(|(is_const, members)| {
                let rep = if *is_const { None } else { Some(members[0]) };
                members
                    .iter()
                    .skip(usize::from(!*is_const))
                    .map(move |&m| (m, rep))
            })
            .collect();
        if pairs.is_empty() {
            return BTreeMap::new();
        }

        let mut unroller = Unroller::new(aig, false);
        unroller.ensure_frame(0);
        // The current state satisfies the invariant constraints (see the
        // soundness argument in the doc comment).
        for &c in &model.constraints {
            unroller.constrain(c, 0, true);
        }
        // Induction hypothesis: every candidate equivalence holds now.
        for &(member, rep) in &pairs {
            let m0 = unroller.lit_in_frame(Lit::new(member, false), 0);
            let m_norm = if init_of[&member] { m0.negate() } else { m0 };
            match rep {
                None => unroller.add_clause(&[m_norm.negate()]),
                Some(rep) => {
                    let r0 = unroller.lit_in_frame(Lit::new(rep, false), 0);
                    let r_norm = if init_of[&rep] { r0.negate() } else { r0 };
                    unroller.add_clause(&[m_norm.negate(), r_norm]);
                    unroller.add_clause(&[m_norm, r_norm.negate()]);
                }
            }
        }

        let mut cex_leaf: Option<Vec<bool>> = None;
        for &(member, rep) in &pairs {
            let latch = latches.iter().find(|l| l.node == member).unwrap();
            let mn = unroller.lit_in_frame(latch.next, 0);
            let mn_norm = if init_of[&member] { mn.negate() } else { mn };
            let activate = unroller.new_free_lit();
            match rep {
                None => {
                    // activate -> member's next breaks stuck-at-init.
                    unroller.add_clause(&[activate.negate(), mn_norm]);
                }
                Some(rep) => {
                    let rep_latch = latches.iter().find(|l| l.node == rep).unwrap();
                    let rn = unroller.lit_in_frame(rep_latch.next, 0);
                    let rn_norm = if init_of[&rep] { rn.negate() } else { rn };
                    // activate -> (member_next XOR rep_next).
                    unroller.add_clause(&[activate.negate(), mn_norm, rn_norm]);
                    unroller.add_clause(&[activate.negate(), mn_norm.negate(), rn_norm.negate()]);
                }
            }
            if matches!(unroller.solve_sat(&[activate]), SatResult::Sat) {
                // Read the full leaf valuation behind the counterexample
                // (unconstrained leaves default to false, which is a valid
                // completion: every encoded cone's leaves are encoded).
                let leaf: Vec<bool> = (0..aig.num_nodes())
                    .map(|n| match aig.node(n) {
                        Node::Input | Node::Latch => unroller.model_value(Lit::new(n, false), 0),
                        _ => false,
                    })
                    .collect();
                cex_leaf = Some(leaf);
                break;
            }
        }

        match cex_leaf {
            None => {
                // Whole partition is inductive: emit the merges.
                let mut equiv = BTreeMap::new();
                for (member, rep) in pairs {
                    let inv_member = init_of[&member];
                    let target = match rep {
                        None => Lit::FALSE.invert_if(inv_member),
                        Some(rep) => Lit::new(rep, inv_member ^ init_of[&rep]),
                    };
                    equiv.insert(member, target);
                }
                return equiv;
            }
            Some(leaf) => {
                // Split every class by the next-state value (normalized by
                // init) each member takes in the counterexample state.
                let vals = eval_bools(aig, |n| leaf[n]);
                let next_norm = |node: usize| -> bool {
                    let latch = latches.iter().find(|l| l.node == node).unwrap();
                    (vals[latch.next.node()] ^ latch.next.is_inverted()) ^ latch.init
                };
                let mut refined: Vec<(bool, Vec<usize>)> = Vec::new();
                for (is_const, members) in partition {
                    let (zeros, ones): (Vec<usize>, Vec<usize>) =
                        members.into_iter().partition(|&m| !next_norm(m));
                    if (is_const || zeros.len() > 1) && !zeros.is_empty() {
                        refined.push((is_const, zeros));
                    }
                    if ones.len() > 1 {
                        refined.push((false, ones));
                    }
                }
                refined.sort_unstable_by_key(|(_, members)| members[0]);
                partition = refined;
            }
        }
    }
}

/// Combinationally-proven gate equivalences: `AND node -> representative
/// literal`, where the representative is any earlier node (input, latch,
/// gate or constant, possibly inverted) computing the *same function of
/// inputs and latches for every valuation* — reachability plays no role,
/// so the merge is unconditionally sound.
///
/// Random 64-bit patterns over free leaves partition all nodes into
/// candidate classes (complement-normalized on the first sampled bit); SAT
/// miters over a single free frame certify each member against the class
/// representative, counterexamples refine the partition, and the loop runs
/// until it is certified.  Only AND nodes are ever merged.
fn gate_equivalences(aig: &Aig) -> BTreeMap<usize, Lit> {
    if aig.num_ands() == 0 {
        return BTreeMap::new();
    }
    let mut rng = StdRng::seed_from_u64(SWEEP_SEED ^ 0xC0DE);
    let mut signatures: Vec<Vec<u64>> = vec![Vec::new(); aig.num_nodes()];
    for _ in 0..COMB_SIM_WORDS {
        let words: HashMap<usize, u64> = (0..aig.num_nodes())
            .filter(|&n| matches!(aig.node(n), Node::Input | Node::Latch))
            .map(|n| (n, rng.next_u64()))
            .collect();
        let vals = eval_words(aig, |n| words[&n]);
        for (n, sig) in signatures.iter_mut().enumerate() {
            sig.push(vals[n]);
        }
    }
    // Complement-normalize each signature on its first bit.
    let mut classes: BTreeMap<Vec<u64>, Vec<(usize, bool)>> = BTreeMap::new();
    for (n, raw) in signatures.iter().enumerate() {
        let inv = raw[0] & 1 == 1;
        let sig: Vec<u64> = raw.iter().map(|&w| if inv { !w } else { w }).collect();
        classes.entry(sig).or_default().push((n, inv));
    }
    let mut partition: Vec<Vec<(usize, bool)>> = classes
        .into_values()
        .map(|mut members| {
            members.sort_unstable();
            members
        })
        .filter(|members| members.len() > 1 && members.iter().any(|&(n, _)| is_and(aig, n)))
        .collect();
    partition.sort_unstable_by_key(|members| members[0].0);

    loop {
        let pairs: Vec<(usize, bool, usize, bool)> = partition
            .iter()
            .flat_map(|members| {
                let (rep, rep_inv) = members[0];
                members
                    .iter()
                    .skip(1)
                    .filter(move |&&(n, _)| is_and(aig, n))
                    .map(move |&(n, inv)| (n, inv, rep, rep_inv))
            })
            .collect();
        if pairs.is_empty() {
            return BTreeMap::new();
        }

        let mut unroller = Unroller::new(aig, false);
        unroller.ensure_frame(0);
        let mut cex_leaf: Option<Vec<bool>> = None;
        for &(member, inv, rep, rep_inv) in &pairs {
            let m = unroller.lit_in_frame(Lit::new(member, inv), 0);
            let r = unroller.lit_in_frame(Lit::new(rep, rep_inv), 0);
            let activate = unroller.new_free_lit();
            // activate -> (m XOR r).
            unroller.add_clause(&[activate.negate(), m, r]);
            unroller.add_clause(&[activate.negate(), m.negate(), r.negate()]);
            if matches!(unroller.solve_sat(&[activate]), SatResult::Sat) {
                let leaf: Vec<bool> = (0..aig.num_nodes())
                    .map(|n| match aig.node(n) {
                        Node::Input | Node::Latch => unroller.model_value(Lit::new(n, false), 0),
                        _ => false,
                    })
                    .collect();
                cex_leaf = Some(leaf);
                break;
            }
        }

        match cex_leaf {
            None => {
                let mut equiv = BTreeMap::new();
                for (member, inv, rep, rep_inv) in pairs {
                    equiv.insert(member, Lit::new(rep, inv ^ rep_inv));
                }
                return equiv;
            }
            Some(leaf) => {
                let vals = eval_bools(aig, |n| leaf[n]);
                let mut refined: Vec<Vec<(usize, bool)>> = Vec::new();
                for members in partition {
                    let (zeros, ones): (Vec<_>, Vec<_>) =
                        members.into_iter().partition(|&(n, inv)| !(vals[n] ^ inv));
                    for side in [zeros, ones] {
                        if side.len() > 1 && side.iter().any(|&(n, _)| is_and(aig, n)) {
                            refined.push(side);
                        }
                    }
                }
                refined.sort_unstable_by_key(|members| members[0].0);
                partition = refined;
            }
        }
    }
}

fn is_and(aig: &Aig, node: usize) -> bool {
    matches!(aig.node(node), Node::And(..))
}

/// One sweep of constant substitution + equivalence merging + rewriting
/// rebuild + dead-node elimination.  Newly proven constant latches are
/// appended to `constants`.
fn one_pass(model: &Model, constants: &mut Vec<(String, bool)>) -> Model {
    let aig = &model.aig;
    let consts: HashMap<usize, bool> = constant_latches(aig).into_iter().collect();
    let latch_equiv = latch_equivalences(model);
    let gate_equiv = gate_equivalences(aig);
    let mut stuck: Vec<(usize, bool)> = consts.iter().map(|(&n, &v)| (n, v)).collect();
    stuck.extend(latch_equiv.iter().filter_map(|(&n, &rep)| {
        if rep.is_const() {
            Some((n, rep == Lit::TRUE))
        } else {
            None
        }
    }));
    stuck.sort_unstable();
    for (node, value) in stuck {
        let name = aig.name_of(node).unwrap_or("latch").to_string();
        if !constants.iter().any(|(n, _)| n == &name) {
            constants.push((name, value));
        }
    }
    // Where a node's fanout should be redirected, if anywhere.  Targets
    // always have a smaller node index, so redirections resolve in node
    // order without chains.
    let redirect = |node: usize| -> Option<Lit> {
        if let Some(&value) = consts.get(&node) {
            return Some(if value { Lit::TRUE } else { Lit::FALSE });
        }
        if let Some(&rep) = latch_equiv.get(&node) {
            return Some(rep);
        }
        gate_equiv.get(&node).copied()
    };

    // ------------------------------------------------------------------
    // Reachability from every root, with redirected nodes as cut points:
    // a merged or constant node contributes its representative's cone
    // instead of its own.
    // ------------------------------------------------------------------
    let mut roots: Vec<Lit> = Vec::new();
    roots.extend(model.bads.iter().map(|b| b.lit));
    roots.extend(model.covers.iter().map(|c| c.lit));
    roots.extend_from_slice(&model.constraints);
    for p in model.liveness.iter().chain(&model.fairness) {
        roots.push(p.trigger);
        roots.push(p.target);
    }
    let next_of: HashMap<usize, Lit> = aig.latches().iter().map(|l| (l.node, l.next)).collect();
    let mut alive = vec![false; aig.num_nodes()];
    alive[0] = true;
    let mut visited = vec![false; aig.num_nodes()];
    visited[0] = true;
    let mut worklist: Vec<usize> = roots.iter().map(|l| l.node()).collect();
    while let Some(node) = worklist.pop() {
        if visited[node] {
            continue;
        }
        visited[node] = true;
        if let Some(rep) = redirect(node) {
            worklist.push(rep.node());
            continue;
        }
        alive[node] = true;
        match aig.node(node) {
            Node::False | Node::Input => {}
            Node::Latch => worklist.push(next_of[&node].node()),
            Node::And(a, b) => {
                worklist.push(a.node());
                worklist.push(b.node());
            }
        }
    }

    // ------------------------------------------------------------------
    // Rebuild in original node order (deterministic indices), substituting
    // constants and funnelling every gate through the rewrite rules.
    // ------------------------------------------------------------------
    let mut out = Aig::new();
    let mut map: HashMap<usize, Lit> = HashMap::new();
    map.insert(0, Lit::FALSE);
    let map_lit =
        |map: &HashMap<usize, Lit>, l: Lit| -> Lit { map[&l.node()].invert_if(l.is_inverted()) };
    let input_name_of: HashMap<usize, &str> = aig
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, &node)| (node, aig.input_name(i)))
        .collect();
    for idx in 1..aig.num_nodes() {
        if let Some(rep) = redirect(idx) {
            // Redirected fanout reads the representative's rebuilt literal
            // (already mapped: representatives have smaller indices).
            if let Some(&mapped) = map.get(&rep.node()) {
                map.insert(idx, mapped.invert_if(rep.is_inverted()));
            }
            continue;
        }
        if !alive[idx] {
            continue;
        }
        let new_lit = match aig.node(idx) {
            Node::False => unreachable!("only node 0 is the constant"),
            Node::Input => out.add_input(input_name_of[&idx]),
            Node::Latch => {
                let latch = aig
                    .latches()
                    .iter()
                    .find(|l| l.node == idx)
                    .expect("alive latch exists");
                out.add_latch(aig.name_of(idx).unwrap_or("latch"), latch.init)
            }
            Node::And(a, b) => {
                let lit = {
                    let (na, nb) = (map_lit(&map, a), map_lit(&map, b));
                    and_rewrite(&mut out, na, nb)
                };
                if let Some(name) = aig.name_of(idx) {
                    if !lit.is_const() {
                        out.set_name(lit, name);
                    }
                }
                lit
            }
        };
        map.insert(idx, new_lit);
    }
    for latch in aig.latches() {
        if alive[latch.node] && redirect(latch.node).is_none() {
            let new_latch = map[&latch.node];
            let new_next = map_lit(&map, latch.next);
            out.set_latch_next(new_latch, new_next);
        }
    }

    // ------------------------------------------------------------------
    // Remap the property lists (order preserved).
    // ------------------------------------------------------------------
    let mut rebuilt = Model::new(out);
    rebuilt.bads = model
        .bads
        .iter()
        .map(|b| BadProperty {
            name: b.name.clone(),
            lit: map_lit(&map, b.lit),
        })
        .collect();
    rebuilt.covers = model
        .covers
        .iter()
        .map(|c| CoverProperty {
            name: c.name.clone(),
            lit: map_lit(&map, c.lit),
        })
        .collect();
    rebuilt.constraints = model
        .constraints
        .iter()
        .map(|&c| map_lit(&map, c))
        .collect();
    let map_resp = |p: &ResponseProperty| ResponseProperty {
        name: p.name.clone(),
        trigger: map_lit(&map, p.trigger),
        target: map_lit(&map, p.target),
    };
    rebuilt.liveness = model.liveness.iter().map(map_resp).collect();
    rebuilt.fairness = model.fairness.iter().map(map_resp).collect();
    rebuilt
}

/// The two inputs of an AND node, or `None` for leaves.
fn gate_of(aig: &Aig, l: Lit) -> Option<(Lit, Lit)> {
    match aig.node(l.node()) {
        Node::And(a, b) => Some((a, b)),
        _ => None,
    }
}

/// Builds `a & b` applying the classic two-level AIG rewrite rules on top
/// of [`Aig::and`]'s one-level folding and structural hashing.
///
/// With `g = x & y` the implemented identities are:
///
/// * subsumption — `g & x = g`;
/// * contradiction — `g & !x = 0`, and `(x & y) & (u & v) = 0` when the
///   gates share a complemented literal;
/// * or-absorption — `!g & !x = !x`;
/// * substitution — `!g & x = x & !y`;
/// * resolution — `!(x & y) & !(x & !y) = !x`.
///
/// Each rule either returns an existing literal or recurses on a strictly
/// shallower pair, so the rewrite terminates; because rules fire at
/// construction time, a model rebuilt through this function contains none
/// of the redundant shapes, which is what makes [`optimize`] idempotent.
fn and_rewrite(aig: &mut Aig, a: Lit, b: Lit) -> Lit {
    if a.is_const() || b.is_const() || a == b || a == b.invert() {
        return aig.and(a, b);
    }
    for (x, y) in [(a, b), (b, a)] {
        if let Some((x0, x1)) = gate_of(aig, x) {
            if !x.is_inverted() {
                // x = x0 & x1
                if y == x0 || y == x1 {
                    return x; // subsumption
                }
                if y == x0.invert() || y == x1.invert() {
                    return Lit::FALSE; // contradiction
                }
            } else {
                // x = !(x0 & x1)
                if y == x0.invert() || y == x1.invert() {
                    return y; // or-absorption
                }
                if y == x0 {
                    return and_rewrite(aig, y, x1.invert()); // substitution
                }
                if y == x1 {
                    return and_rewrite(aig, y, x0.invert());
                }
            }
        }
    }
    if !a.is_inverted() && !b.is_inverted() {
        if let (Some((a0, a1)), Some((b0, b1))) = (gate_of(aig, a), gate_of(aig, b)) {
            // (a0 & a1) & (b0 & b1) with a shared complemented literal.
            for u in [a0, a1] {
                for v in [b0, b1] {
                    if u == v.invert() {
                        return Lit::FALSE;
                    }
                }
            }
        }
    }
    if a.is_inverted() && b.is_inverted() {
        if let (Some((a0, a1)), Some((b0, b1))) = (gate_of(aig, a), gate_of(aig, b)) {
            // Resolution: !(x & y) & !(x & !y) = !x.
            for (p, q) in [(a0, a1), (a1, a0)] {
                for (r, s) in [(b0, b1), (b1, b0)] {
                    if p == r && q == s.invert() {
                        return p.invert();
                    }
                }
            }
        }
    }
    aig.and(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use std::collections::HashMap;

    /// busy bit + a latch provably stuck at reset + a dead counter.
    fn sample_model() -> Model {
        let mut aig = Aig::new();
        let req = aig.add_input("req");
        let busy = aig.add_latch("busy", false);
        let next_busy = aig.or(busy, req);
        aig.set_latch_next(busy, next_busy);
        // stuck_q holds itself: constant at its (false) reset value.
        let stuck = aig.add_latch("stuck_q", false);
        aig.set_latch_next(stuck, stuck);
        // The bad observes busy AND the stuck latch.
        let bad = aig.and(busy, stuck.invert());
        // Dead free-running toggle no root observes.
        let toggle = aig.add_latch("toggle", false);
        aig.set_latch_next(toggle, toggle.invert());
        let mut model = Model::new(aig);
        model.bads.push(BadProperty {
            name: "busy_while_clear".into(),
            lit: bad,
        });
        model
    }

    #[test]
    fn ternary_fixpoint_finds_stuck_latches() {
        let model = sample_model();
        let consts = constant_latches(&model.aig);
        let names: Vec<(&str, bool)> = consts
            .iter()
            .map(|&(node, v)| (model.aig.name_of(node).unwrap(), v))
            .collect();
        assert_eq!(names, vec![("stuck_q", false)]);
    }

    #[test]
    fn constant_chains_propagate_through_latches() {
        // b follows a, a is stuck at true: both are constant.
        let mut aig = Aig::new();
        let a = aig.add_latch("a", true);
        aig.set_latch_next(a, a);
        let b = aig.add_latch("b", true);
        aig.set_latch_next(b, a);
        let consts = constant_latches(&aig);
        assert_eq!(consts.len(), 2);
        assert!(consts.iter().all(|&(_, v)| v));
    }

    #[test]
    fn optimize_sweeps_constants_and_dead_state() {
        let model = sample_model();
        assert_eq!(model.aig.num_latches(), 3);
        let opt = optimize(&model);
        // stuck_q substituted, toggle dead: only busy survives.
        assert_eq!(opt.model.aig.num_latches(), 1);
        assert_eq!(
            opt.model
                .aig
                .latches()
                .iter()
                .filter_map(|l| opt.model.aig.name_of(l.node))
                .collect::<Vec<_>>(),
            vec!["busy"]
        );
        assert_eq!(opt.constant_latches, vec![("stuck_q".to_string(), false)]);
        // bad = busy & !stuck = busy & !false = busy (no gate needed).
        assert_eq!(opt.model.aig.num_ands(), 1); // just busy | req
    }

    #[test]
    fn rewrite_collapses_constant_branch_muxes() {
        // mux(s, TRUE, e) lowered the word-level way: or(s, and(!s, e)),
        // i.e. two gates where one suffices.
        let mut aig = Aig::new();
        let s = aig.add_input("s");
        let e = aig.add_input("e");
        let inner = aig.and(s.invert(), e);
        let redundant = aig.or(s, inner);
        let mut model = Model::new(aig);
        model.bads.push(BadProperty {
            name: "m".into(),
            lit: redundant,
        });
        assert_eq!(model.aig.num_ands(), 2);
        let opt = optimize(&model);
        assert_eq!(opt.model.aig.num_ands(), 1, "or(s, !s&e) must become s|e");
    }

    #[test]
    fn optimize_is_idempotent() {
        let model = sample_model();
        let once = optimize(&model).model;
        let twice = optimize(&once).model;
        assert_eq!(fingerprint(&once), fingerprint(&twice));
    }

    #[test]
    fn optimized_model_agrees_with_original_on_random_inputs() {
        let model = sample_model();
        let opt = optimize(&model).model;
        let mut orig_sim = Simulator::new(&model);
        let mut opt_sim = Simulator::new(&opt);
        // xorshift-style deterministic input stream.
        let mut seed = 0x9E3779B9u32;
        for _ in 0..64 {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            let mut inputs = HashMap::new();
            inputs.insert("req".to_string(), seed & 1 == 1);
            let orig_fired = !orig_sim.step_named(&inputs).is_empty();
            let opt_fired = !opt_sim.step_named(&inputs).is_empty();
            assert_eq!(orig_fired, opt_fired, "verdicts must agree every cycle");
        }
    }

    #[test]
    fn property_order_and_names_survive() {
        let mut model = sample_model();
        let lit = model.bads[0].lit;
        model.covers.push(CoverProperty {
            name: "c0".into(),
            lit,
        });
        model.liveness.push(ResponseProperty {
            name: "resp".into(),
            trigger: lit,
            target: lit.invert(),
        });
        let opt = optimize(&model).model;
        assert_eq!(opt.bads[0].name, "busy_while_clear");
        assert_eq!(opt.covers[0].name, "c0");
        assert_eq!(opt.liveness[0].name, "resp");
        assert_eq!(opt.constraints.len(), model.constraints.len());
    }
}
