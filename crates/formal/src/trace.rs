//! Counterexample and witness traces.
//!
//! A [`Trace`] is a finite sequence of cycles, each recording the value of
//! every primary input and latch of the checked model.  Traces are produced
//! by the bounded model checker and rendered as a compact waveform-style
//! table, mirroring how a hardware designer would read a formal tool's
//! counterexample.

use std::collections::BTreeMap;
use std::fmt;

/// The value of one signal across all cycles of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalTrace {
    /// Signal name.
    pub name: String,
    /// `true` if the signal is a primary input (as opposed to a latch).
    pub is_input: bool,
    /// Value per cycle.
    pub values: Vec<bool>,
}

/// A finite counterexample or witness trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    cycles: usize,
    signals: BTreeMap<String, SignalTrace>,
}

impl Trace {
    /// Creates an empty trace with the given number of cycles.
    pub fn new(cycles: usize) -> Self {
        Trace {
            cycles,
            signals: BTreeMap::new(),
        }
    }

    /// Number of cycles in the trace.
    pub fn len(&self) -> usize {
        self.cycles
    }

    /// `true` if the trace has no cycles.
    pub fn is_empty(&self) -> bool {
        self.cycles == 0
    }

    /// Records the value of `signal` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is outside the trace length.
    pub fn record(&mut self, cycle: usize, signal: &str, value: bool, is_input: bool) {
        assert!(cycle < self.cycles, "cycle {cycle} out of range");
        let entry = self
            .signals
            .entry(signal.to_string())
            .or_insert_with(|| SignalTrace {
                name: signal.to_string(),
                is_input,
                values: vec![false; self.cycles],
            });
        entry.values[cycle] = value;
    }

    /// The value of `signal` at `cycle`, if the signal was recorded.
    pub fn value(&self, cycle: usize, signal: &str) -> Option<bool> {
        self.signals
            .get(signal)
            .and_then(|s| s.values.get(cycle).copied())
    }

    /// Iterates over the recorded signals in name order.
    pub fn signals(&self) -> impl Iterator<Item = &SignalTrace> {
        self.signals.values()
    }

    /// Number of recorded signals.
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// Renders the trace as a waveform-style text table.
    ///
    /// Signals whose value never changes and stays zero are omitted to keep
    /// counterexamples readable, unless `full` is requested.
    pub fn render(&self, full: bool) -> String {
        let mut out = String::new();
        let name_width = self
            .signals
            .values()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(6)
            .max(6);
        out.push_str(&format!("{:name_width$} |", "cycle"));
        for c in 0..self.cycles {
            out.push_str(&format!(" {c:2}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(name_width + 1 + 3 * self.cycles + 1));
        out.push('\n');
        for sig in self.signals.values() {
            if !full && sig.values.iter().all(|v| !v) {
                continue;
            }
            out.push_str(&format!("{:name_width$} |", sig.name));
            for &v in &sig.values {
                out.push_str(if v { "  1" } else { "  0" });
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let mut t = Trace::new(3);
        t.record(0, "req", true, true);
        t.record(2, "gnt", true, false);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.value(0, "req"), Some(true));
        assert_eq!(t.value(1, "req"), Some(false));
        assert_eq!(t.value(2, "gnt"), Some(true));
        assert_eq!(t.value(0, "missing"), None);
        assert_eq!(t.num_signals(), 2);
    }

    #[test]
    fn render_hides_all_zero_signals_by_default() {
        let mut t = Trace::new(2);
        t.record(0, "busy", true, false);
        t.record(0, "idle_signal", false, false);
        let compact = t.render(false);
        assert!(compact.contains("busy"));
        assert!(!compact.contains("idle_signal"));
        let full = t.render(true);
        assert!(full.contains("idle_signal"));
    }

    #[test]
    fn display_matches_compact_render() {
        let mut t = Trace::new(1);
        t.record(0, "x", true, true);
        assert_eq!(t.to_string(), t.render(false));
    }

    #[test]
    #[should_panic]
    fn out_of_range_cycle_panics() {
        let mut t = Trace::new(2);
        t.record(5, "x", true, true);
    }

    #[test]
    fn signal_iteration_is_sorted() {
        let mut t = Trace::new(1);
        t.record(0, "zeta", true, true);
        t.record(0, "alpha", true, true);
        let names: Vec<&str> = t.signals().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
