//! Word-level operations over vectors of AIG literals.
//!
//! The elaborator works on words (LSB-first vectors of [`Lit`]); this module
//! provides the arithmetic and relational circuits it needs: ripple-carry
//! addition and subtraction, unsigned comparison, equality, shifts by
//! constant amounts, multiplexing and width adjustment.

use crate::aig::{Aig, Lit};

/// Zero-extends or truncates `word` to exactly `width` bits.
pub fn resize(word: &[Lit], width: usize) -> Vec<Lit> {
    let mut out: Vec<Lit> = word.iter().copied().take(width).collect();
    while out.len() < width {
        out.push(Lit::FALSE);
    }
    out
}

/// Builds a constant word of `width` bits holding `value` (LSB first).
pub fn constant(value: u128, width: usize) -> Vec<Lit> {
    (0..width)
        .map(|i| {
            if i < 128 && (value >> i) & 1 == 1 {
                Lit::TRUE
            } else {
                Lit::FALSE
            }
        })
        .collect()
}

/// Reads a constant word back as an integer, if every bit is constant.
pub fn as_constant(word: &[Lit]) -> Option<u128> {
    let mut out: u128 = 0;
    for (i, &bit) in word.iter().enumerate() {
        if bit == Lit::TRUE {
            if i < 128 {
                out |= 1 << i;
            }
        } else if bit != Lit::FALSE {
            return None;
        }
    }
    Some(out)
}

/// Reduction OR of a word (non-zero test).
pub fn reduce_or(aig: &mut Aig, word: &[Lit]) -> Lit {
    aig.or_many(word)
}

/// Reduction AND of a word.
pub fn reduce_and(aig: &mut Aig, word: &[Lit]) -> Lit {
    aig.and_many(word)
}

/// Reduction XOR of a word.
pub fn reduce_xor(aig: &mut Aig, word: &[Lit]) -> Lit {
    let mut acc = Lit::FALSE;
    for &b in word {
        acc = aig.xor(acc, b);
    }
    acc
}

/// Bitwise NOT.
pub fn not(word: &[Lit]) -> Vec<Lit> {
    word.iter().map(|b| b.invert()).collect()
}

/// Bitwise binary operation applied lane-wise after width equalization.
pub fn bitwise(
    aig: &mut Aig,
    a: &[Lit],
    b: &[Lit],
    f: impl Fn(&mut Aig, Lit, Lit) -> Lit,
) -> Vec<Lit> {
    let width = a.len().max(b.len());
    let a = resize(a, width);
    let b = resize(b, width);
    a.iter().zip(&b).map(|(&x, &y)| f(aig, x, y)).collect()
}

/// Ripple-carry addition; the result has the width of the wider operand
/// (carry-out discarded, i.e. wrapping semantics).
pub fn add(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let width = a.len().max(b.len());
    let a = resize(a, width);
    let b = resize(b, width);
    let mut out = Vec::with_capacity(width);
    let mut carry = Lit::FALSE;
    for i in 0..width {
        let (s, c) = full_adder(aig, a[i], b[i], carry);
        out.push(s);
        carry = c;
    }
    out
}

/// Wrapping subtraction `a - b` (two's complement).
pub fn sub(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let width = a.len().max(b.len());
    let a = resize(a, width);
    let b = resize(b, width);
    let mut out = Vec::with_capacity(width);
    let mut carry = Lit::TRUE;
    for i in 0..width {
        let (s, c) = full_adder(aig, a[i], b[i].invert(), carry);
        out.push(s);
        carry = c;
    }
    out
}

fn full_adder(aig: &mut Aig, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
    let axb = aig.xor(a, b);
    let sum = aig.xor(axb, cin);
    let c1 = aig.and(a, b);
    let c2 = aig.and(axb, cin);
    let cout = aig.or(c1, c2);
    (sum, cout)
}

/// Equality of two words (after width equalization).
pub fn eq(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    let width = a.len().max(b.len());
    let a = resize(a, width);
    let b = resize(b, width);
    aig.word_eq(&a, &b)
}

/// Unsigned `a < b`.
pub fn ult(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    let width = a.len().max(b.len());
    let a = resize(a, width);
    let b = resize(b, width);
    // a < b  <=>  a - b underflows  <=>  NOT carry-out of a + ~b + 1
    let mut carry = Lit::TRUE;
    for i in 0..width {
        let (_, c) = full_adder(aig, a[i], b[i].invert(), carry);
        carry = c;
    }
    carry.invert()
}

/// Unsigned `a <= b`.
pub fn ule(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    ult(aig, b, a).invert()
}

/// Word-level multiplexer: `sel ? t : e` (width-equalized).
pub fn mux(aig: &mut Aig, sel: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
    let width = t.len().max(e.len());
    let t = resize(t, width);
    let e = resize(e, width);
    t.iter()
        .zip(&e)
        .map(|(&x, &y)| aig.mux(sel, x, y))
        .collect()
}

/// Logical shift left by a constant amount.
pub fn shl_const(word: &[Lit], amount: usize) -> Vec<Lit> {
    let width = word.len();
    (0..width)
        .map(|i| {
            if i >= amount {
                word[i - amount]
            } else {
                Lit::FALSE
            }
        })
        .collect()
}

/// Logical shift right by a constant amount.
pub fn shr_const(word: &[Lit], amount: usize) -> Vec<Lit> {
    let width = word.len();
    (0..width)
        .map(|i| {
            if i + amount < width {
                word[i + amount]
            } else {
                Lit::FALSE
            }
        })
        .collect()
}

/// Dynamic element select from a list of equally sized words: returns
/// `words[index]` as a mux tree, with out-of-range indices reading as zero.
pub fn select(aig: &mut Aig, words: &[Vec<Lit>], index: &[Lit]) -> Vec<Lit> {
    let width = words.iter().map(Vec::len).max().unwrap_or(0);
    let mut result = constant(0, width);
    for (i, word) in words.iter().enumerate() {
        let idx_const = constant(i as u128, index.len());
        let is_this = eq(aig, index, &idx_const);
        result = mux(aig, is_this, word, &result);
    }
    result
}

/// Simple unsigned multiplication by shift-and-add, truncated to the width of
/// the wider operand.  Only used for constant folding of parameter
/// expressions in practice.
pub fn mul(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let width = a.len().max(b.len());
    let a = resize(a, width);
    let b = resize(b, width);
    let mut acc = constant(0, width);
    for (i, &b_bit) in b.iter().enumerate() {
        let shifted = shl_const(&a, i);
        let addend = mux(aig, b_bit, &shifted, &constant(0, width));
        acc = add(aig, &acc, &addend);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(aig: &Aig, word: &[Lit], env: &dyn Fn(usize) -> bool) -> u128 {
        // Recursive constant evaluation for tests (inputs resolved by env).
        fn eval_lit(aig: &Aig, lit: Lit, env: &dyn Fn(usize) -> bool) -> bool {
            use crate::aig::Node;
            let v = match aig.node(lit.node()) {
                Node::False => false,
                Node::Input | Node::Latch => env(lit.node()),
                Node::And(a, b) => eval_lit(aig, a, env) && eval_lit(aig, b, env),
            };
            v ^ lit.is_inverted()
        }
        word.iter()
            .enumerate()
            .map(|(i, &b)| if eval_lit(aig, b, env) { 1u128 << i } else { 0 })
            .sum()
    }

    #[test]
    fn constants_roundtrip() {
        let w = constant(0b1011, 6);
        assert_eq!(as_constant(&w), Some(0b1011));
        assert_eq!(as_constant(&constant(0, 4)), Some(0));
        assert_eq!(resize(&w, 2).len(), 2);
        assert_eq!(as_constant(&resize(&w, 2)), Some(0b11));
        assert_eq!(as_constant(&resize(&w, 10)), Some(0b1011));
    }

    #[test]
    fn adder_matches_arithmetic() {
        let mut aig = Aig::new();
        for (a, b) in [(3u128, 5u128), (15, 1), (7, 7), (0, 0)] {
            let wa = constant(a, 4);
            let wb = constant(b, 4);
            let sum = add(&mut aig, &wa, &wb);
            assert_eq!(eval(&aig, &sum, &|_| false), (a + b) & 0xF, "{a}+{b}");
        }
    }

    #[test]
    fn subtractor_matches_arithmetic() {
        let mut aig = Aig::new();
        for (a, b) in [(9u128, 3u128), (3, 9), (0, 1), (15, 15)] {
            let wa = constant(a, 4);
            let wb = constant(b, 4);
            let diff = sub(&mut aig, &wa, &wb);
            assert_eq!(
                eval(&aig, &diff, &|_| false),
                a.wrapping_sub(b) & 0xF,
                "{a}-{b}"
            );
        }
    }

    #[test]
    fn comparisons() {
        let mut aig = Aig::new();
        for (a, b) in [(3u128, 5u128), (5, 3), (4, 4), (0, 15)] {
            let wa = constant(a, 4);
            let wb = constant(b, 4);
            let lt = ult(&mut aig, &wa, &wb);
            let le = ule(&mut aig, &wa, &wb);
            let equal = eq(&mut aig, &wa, &wb);
            assert_eq!(lt == Lit::TRUE, a < b, "{a}<{b}");
            assert_eq!(le == Lit::TRUE, a <= b, "{a}<={b}");
            assert_eq!(equal == Lit::TRUE, a == b, "{a}=={b}");
        }
    }

    #[test]
    fn reductions() {
        let mut aig = Aig::new();
        assert_eq!(reduce_or(&mut aig, &constant(0, 4)), Lit::FALSE);
        assert_eq!(reduce_or(&mut aig, &constant(8, 4)), Lit::TRUE);
        assert_eq!(reduce_and(&mut aig, &constant(0xF, 4)), Lit::TRUE);
        assert_eq!(reduce_and(&mut aig, &constant(0x7, 4)), Lit::FALSE);
        assert_eq!(reduce_xor(&mut aig, &constant(0b101, 3)), Lit::FALSE);
        assert_eq!(reduce_xor(&mut aig, &constant(0b100, 3)), Lit::TRUE);
    }

    #[test]
    fn shifts() {
        assert_eq!(
            as_constant(&shl_const(&constant(0b0011, 4), 1)),
            Some(0b0110)
        );
        assert_eq!(
            as_constant(&shr_const(&constant(0b1100, 4), 2)),
            Some(0b0011)
        );
        assert_eq!(as_constant(&shl_const(&constant(0b1111, 4), 4)), Some(0));
    }

    #[test]
    fn mux_and_select() {
        let mut aig = Aig::new();
        let sel = aig.add_input("sel");
        let t = constant(5, 4);
        let e = constant(9, 4);
        let m = mux(&mut aig, sel, &t, &e);
        assert_eq!(eval(&aig, &m, &|n| n == sel.node()), 5);
        assert_eq!(eval(&aig, &m, &|_| false), 9);

        let words = vec![constant(1, 4), constant(2, 4), constant(3, 4)];
        let idx = constant(2, 2);
        let s = select(&mut aig, &words, &idx);
        assert_eq!(as_constant(&s), Some(3));
        // Out-of-range index reads zero.
        let idx_oob = constant(3, 2);
        let s = select(&mut aig, &words, &idx_oob);
        assert_eq!(as_constant(&s), Some(0));
    }

    #[test]
    fn multiplication() {
        let mut aig = Aig::new();
        for (a, b) in [(3u128, 5u128), (7, 2), (0, 9)] {
            let p = mul(&mut aig, &constant(a, 5), &constant(b, 5));
            assert_eq!(eval(&aig, &p, &|_| false), (a * b) & 0x1F, "{a}*{b}");
        }
    }

    #[test]
    fn bitwise_ops() {
        let mut aig = Aig::new();
        let a = constant(0b1100, 4);
        let b = constant(0b1010, 4);
        let and = bitwise(&mut aig, &a, &b, |g, x, y| g.and(x, y));
        let or = bitwise(&mut aig, &a, &b, |g, x, y| g.or(x, y));
        let xor = bitwise(&mut aig, &a, &b, |g, x, y| g.xor(x, y));
        assert_eq!(as_constant(&and), Some(0b1000));
        assert_eq!(as_constant(&or), Some(0b1110));
        assert_eq!(as_constant(&xor), Some(0b0110));
        assert_eq!(as_constant(&not(&a)), Some(0b0011));
    }
}
