//! And-Inverter Graph (AIG) representation of a sequential circuit.
//!
//! The formal substrate lowers elaborated RTL into an AIG: every signal is a
//! vector of single-bit literals, every combinational function is a network
//! of two-input AND gates with optional inversion on edges, and state is held
//! in latches with an initial value and a next-state literal.  The same AIG
//! is used by the bounded model checker (via Tseitin conversion to CNF) and
//! by the concrete simulator.

use std::collections::HashMap;
use std::fmt;

/// A literal: an AIG node with an optional inversion.
///
/// Encoded as `2 * node_index + inverted`, the conventional AIGER packing, so
/// `Lit::FALSE` is node 0 without inversion and `Lit::TRUE` is node 0
/// inverted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Constant false.
    pub const FALSE: Lit = Lit(0);
    /// Constant true.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node index and inversion flag.
    pub fn new(node: usize, inverted: bool) -> Lit {
        Lit((node as u32) << 1 | u32::from(inverted))
    }

    /// The node index this literal refers to.
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the literal is inverted.
    pub fn is_inverted(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complement of this literal.
    #[must_use]
    pub fn invert(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Returns `self` or its complement depending on `invert`.
    #[must_use]
    pub fn invert_if(self, invert: bool) -> Lit {
        if invert {
            self.invert()
        } else {
            self
        }
    }

    /// Returns `true` for the two constant literals.
    pub fn is_const(self) -> bool {
        self.node() == 0
    }

    /// The raw AIGER-style encoding.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inverted() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

/// The kind of an AIG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// The constant-false node (index 0).
    False,
    /// A primary input bit.
    Input,
    /// A latch (state bit).
    Latch,
    /// A two-input AND gate.
    And(Lit, Lit),
}

/// A latch: a single state bit with an initial value and a next-state
/// function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latch {
    /// The AIG node index of the latch output.
    pub node: usize,
    /// Initial value after reset.
    pub init: bool,
    /// Next-state literal (evaluated at the end of each cycle).
    pub next: Lit,
}

/// A sequential And-Inverter Graph.
///
/// # Examples
///
/// ```
/// use autosva_formal::aig::{Aig, Lit};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let and_ab = aig.and(a, b);
/// let or_ab = aig.or(a, b);
/// assert_ne!(and_ab, or_ab);
/// assert_eq!(aig.num_inputs(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    inputs: Vec<usize>,
    latches: Vec<Latch>,
    /// Node index → position in `latches`, so per-latch updates during
    /// elaboration stay O(1) instead of scanning the latch vector.
    latch_pos: HashMap<usize, usize>,
    input_names: Vec<String>,
    /// Structural hashing of AND gates for deduplication.
    strash: HashMap<(Lit, Lit), Lit>,
    /// Optional human-readable names for nodes (debugging and traces).
    names: HashMap<usize, String>,
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::False],
            inputs: Vec::new(),
            latches: Vec::new(),
            latch_pos: HashMap::new(),
            input_names: Vec::new(),
            strash: HashMap::new(),
            names: HashMap::new(),
        }
    }

    /// Total number of nodes (including the constant).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary input bits.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::And(_, _)))
            .count()
    }

    /// The node kind at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node(&self, index: usize) -> Node {
        self.nodes[index]
    }

    /// The latches of the design.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// The input node indices, in creation order.
    pub fn inputs(&self) -> &[usize] {
        &self.inputs
    }

    /// The name given to input `i` (creation order).
    pub fn input_name(&self, i: usize) -> &str {
        &self.input_names[i]
    }

    /// Returns the debug name attached to a node, if any.
    pub fn name_of(&self, node: usize) -> Option<&str> {
        self.names.get(&node).map(String::as_str)
    }

    /// Attaches a debug name to the node of `lit`.
    pub fn set_name(&mut self, lit: Lit, name: impl Into<String>) {
        self.names.insert(lit.node(), name.into());
    }

    /// Adds a primary input bit and returns its literal.
    pub fn add_input(&mut self, name: impl Into<String>) -> Lit {
        let idx = self.nodes.len();
        self.nodes.push(Node::Input);
        self.inputs.push(idx);
        let name = name.into();
        self.input_names.push(name.clone());
        self.names.insert(idx, name);
        Lit::new(idx, false)
    }

    /// Adds a latch with the given initial value.  The next-state function
    /// must be set later with [`Aig::set_latch_next`].
    pub fn add_latch(&mut self, name: impl Into<String>, init: bool) -> Lit {
        let idx = self.nodes.len();
        self.nodes.push(Node::Latch);
        self.latch_pos.insert(idx, self.latches.len());
        self.latches.push(Latch {
            node: idx,
            init,
            next: Lit::FALSE,
        });
        self.names.insert(idx, name.into());
        Lit::new(idx, false)
    }

    /// Sets the next-state literal of the latch at node `latch_lit` (O(1)
    /// via the node→latch-position map).
    ///
    /// # Panics
    ///
    /// Panics if `latch_lit` does not refer to a latch node.
    pub fn set_latch_next(&mut self, latch_lit: Lit, next: Lit) {
        let node = latch_lit.node();
        let pos = *self
            .latch_pos
            .get(&node)
            .expect("set_latch_next called on a non-latch literal");
        self.latches[pos].next = next;
    }

    /// Builds `a AND b`, with constant folding and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant folding and trivial cases.
        if a == Lit::FALSE || b == Lit::FALSE {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE {
            return a;
        }
        if a == b {
            return a;
        }
        if a == b.invert() {
            return Lit::FALSE;
        }
        // Canonical ordering for structural hashing.
        let (x, y) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        if let Some(&lit) = self.strash.get(&(x, y)) {
            return lit;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::And(x, y));
        let lit = Lit::new(idx, false);
        self.strash.insert((x, y), lit);
        lit
    }

    /// Builds `NOT a`.
    pub fn not(&mut self, a: Lit) -> Lit {
        a.invert()
    }

    /// Builds `a OR b`.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a.invert(), b.invert()).invert()
    }

    /// Builds `a XOR b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let nand_ab = self.and(a, b).invert();
        let or_ab = self.or(a, b);
        self.and(nand_ab, or_ab)
    }

    /// Builds `a XNOR b` (equality of two bits).
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        self.xor(a, b).invert()
    }

    /// Builds `if sel then t else e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        if t == e {
            return t;
        }
        let a = self.and(sel, t);
        let b = self.and(sel.invert(), e);
        self.or(a, b)
    }

    /// Builds the conjunction of many literals.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = Lit::TRUE;
        for &l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// Builds the disjunction of many literals.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = Lit::FALSE;
        for &l in lits {
            acc = self.or(acc, l);
        }
        acc
    }

    /// Builds bitwise equality of two equal-length words.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn word_eq(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        assert_eq!(a.len(), b.len(), "word_eq requires equal widths");
        let bits: Vec<Lit> = a.iter().zip(b).map(|(&x, &y)| self.xnor(x, y)).collect();
        self.and_many(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        assert_eq!(Lit::FALSE.invert(), Lit::TRUE);
        assert!(Lit::TRUE.is_inverted());
        assert!(Lit::FALSE.is_const());
        let l = Lit::new(5, true);
        assert_eq!(l.node(), 5);
        assert!(l.is_inverted());
        assert_eq!(l.invert().node(), 5);
        assert!(!l.invert().is_inverted());
        assert_eq!(l.invert_if(false), l);
        assert_eq!(l.invert_if(true), l.invert());
        assert_eq!(l.to_string(), "!n5");
    }

    #[test]
    fn and_constant_folding() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(Lit::TRUE, a), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, a.invert()), Lit::FALSE);
    }

    #[test]
    fn structural_hashing_dedupes() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g1 = aig.and(a, b);
        let g2 = aig.and(b, a);
        assert_eq!(g1, g2);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn or_and_xor_shapes() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let o = aig.or(a, b);
        assert!(o.is_inverted()); // OR is an inverted AND of inversions
        let x = aig.xor(a, b);
        let xn = aig.xnor(a, b);
        assert_eq!(x.invert(), xn);
    }

    #[test]
    fn mux_trivial_cases() {
        let mut aig = Aig::new();
        let s = aig.add_input("s");
        let a = aig.add_input("a");
        assert_eq!(aig.mux(s, a, a), a);
    }

    #[test]
    fn latch_roundtrip() {
        let mut aig = Aig::new();
        let q = aig.add_latch("q", true);
        let d = aig.add_input("d");
        aig.set_latch_next(q, d);
        assert_eq!(aig.num_latches(), 1);
        let latch = aig.latches()[0];
        assert!(latch.init);
        assert_eq!(latch.next, d);
        assert_eq!(aig.name_of(q.node()), Some("q"));
    }

    #[test]
    fn word_eq_of_identical_words_is_true() {
        let mut aig = Aig::new();
        let a: Vec<Lit> = (0..4).map(|i| aig.add_input(format!("a{i}"))).collect();
        let eq = aig.word_eq(&a, &a.clone());
        assert_eq!(eq, Lit::TRUE);
    }

    #[test]
    fn and_many_or_many() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let all = aig.and_many(&[a, b, c]);
        let any = aig.or_many(&[a, b, c]);
        assert_ne!(all, any);
        assert_eq!(aig.and_many(&[]), Lit::TRUE);
        assert_eq!(aig.or_many(&[]), Lit::FALSE);
    }

    #[test]
    fn input_names_recorded() {
        let mut aig = Aig::new();
        let _ = aig.add_input("req_val");
        let _ = aig.add_input("req_ack");
        assert_eq!(aig.input_name(0), "req_val");
        assert_eq!(aig.input_name(1), "req_ack");
        assert_eq!(aig.num_inputs(), 2);
    }

    #[test]
    #[should_panic]
    fn word_eq_width_mismatch_panics() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let _ = aig.word_eq(&[a], &[a, b]);
    }
}
