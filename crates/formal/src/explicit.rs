//! Exact explicit-state engine for small designs.
//!
//! Bounded model checking finds short counterexamples and k-induction closes
//! many proofs, but properties whose proof needs reachability information
//! (e.g. "a response implies the outstanding counter is non-zero") defeat
//! plain induction.  For the design sizes of the evaluation corpus a full
//! reachable-state exploration is cheap, so this module provides an exact
//! fallback:
//!
//! * **safety / cover**: enumerate every reachable state (under the
//!   invariant constraints) and test the bad/cover literal for every input
//!   valuation — 64 input valuations are evaluated at once with bit-parallel
//!   simulation of the AIG;
//! * **liveness under fairness**: add the pending-obligation monitors to the
//!   state, build the reachable transition graph, and search for a strongly
//!   connected component in which the obligation stays pending while every
//!   assumed fairness is discharged — the exact automata-theoretic criterion
//!   for a counterexample lasso.

use crate::aig::{Aig, Lit, Node};
use crate::interrupt::Interrupt;
use crate::model::Model;
use crate::trace::Trace;
use std::collections::HashMap;

/// Options bounding the explicit exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplicitOptions {
    /// Maximum number of reachable states to enumerate before giving up.
    pub max_states: usize,
    /// Maximum number of primary inputs the engine will enumerate.
    pub max_inputs: usize,
}

impl Default for ExplicitOptions {
    fn default() -> Self {
        ExplicitOptions {
            max_states: 300_000,
            max_inputs: 20,
        }
    }
}

/// Outcome of an explicit-state query.
#[derive(Debug, Clone, PartialEq)]
pub enum ExplicitResult {
    /// The property holds on every reachable, constraint-satisfying
    /// execution.
    Proven,
    /// The property is violated; a witness trace is attached (for covers the
    /// trace reaches the target).
    Violated(Trace),
    /// The exploration exceeded its limits and produced no verdict.
    Exceeded,
}

impl ExplicitResult {
    /// `true` when a definitive verdict was produced.
    pub fn is_conclusive(&self) -> bool {
        !matches!(self, ExplicitResult::Exceeded)
    }
}

/// Bit-parallel lane masks: lane `l` of word `i` holds bit `i` of the lane
/// index, so 64 input combinations are evaluated per AIG sweep.
const LANE_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// The reachable-state graph of a [`Model`].
#[derive(Debug)]
pub struct ExplicitEngine {
    aig: Aig,
    latch_nodes: Vec<usize>,
    input_nodes: Vec<usize>,
    constraints: Vec<Lit>,
    options: ExplicitOptions,
    /// Packed latch valuation per state.
    states: Vec<u64>,
    index: HashMap<u64, u32>,
    /// Predecessor of each state (state index, input valuation); the initial
    /// state points to itself.
    preds: Vec<(u32, u64)>,
    /// Deduplicated successors per state.
    succs: Vec<Vec<u32>>,
    complete: bool,
    /// The exploration was preempted by its interrupt handle (implies
    /// `!complete`); callers must not cache or reuse the truncated graph.
    interrupted: bool,
}

struct Evaluator<'a> {
    aig: &'a Aig,
    values: Vec<u64>,
}

impl<'a> Evaluator<'a> {
    fn new(aig: &'a Aig) -> Self {
        Evaluator {
            aig,
            values: vec![0; aig.num_nodes()],
        }
    }

    /// Evaluates the whole AIG for one latch state and 64 input combinations
    /// (the low 6 input bits vary across lanes, the rest are taken from
    /// `high_bits`).
    fn sweep(&mut self, latch_nodes: &[usize], input_nodes: &[usize], state: u64, high_bits: u64) {
        for v in &mut self.values {
            *v = 0;
        }
        for (i, &node) in latch_nodes.iter().enumerate() {
            self.values[node] = if (state >> i) & 1 == 1 { u64::MAX } else { 0 };
        }
        for (i, &node) in input_nodes.iter().enumerate() {
            self.values[node] = if i < 6 {
                LANE_MASKS[i]
            } else if (high_bits >> (i - 6)) & 1 == 1 {
                u64::MAX
            } else {
                0
            };
        }
        for idx in 0..self.aig.num_nodes() {
            if let Node::And(a, b) = self.aig.node(idx) {
                let va = self.lit_value(a);
                let vb = self.lit_value(b);
                self.values[idx] = va & vb;
            }
        }
    }

    fn lit_value(&self, lit: Lit) -> u64 {
        let v = self.values[lit.node()];
        if lit.is_inverted() {
            !v
        } else {
            v
        }
    }
}

impl ExplicitEngine {
    /// Builds the engine and explores the reachable state space of `model`.
    ///
    /// Returns `None` when the model is outside the engine's limits (too many
    /// latches or inputs).
    pub fn explore(model: &Model, options: &ExplicitOptions) -> Option<ExplicitEngine> {
        ExplicitEngine::explore_budgeted(model, options, &Interrupt::none())
    }

    /// Like [`ExplicitEngine::explore`], preemptible: the [`Interrupt`]
    /// handle is polled once per frontier state.  A preempted engine
    /// reports [`ExplicitEngine::was_interrupted`] and is never complete,
    /// so every query on it answers [`ExplicitResult::Exceeded`] at worst —
    /// the truncated graph can still witness violations it already found.
    pub fn explore_budgeted(
        model: &Model,
        options: &ExplicitOptions,
        interrupt: &Interrupt,
    ) -> Option<ExplicitEngine> {
        let aig = model.aig.clone();
        let latch_nodes: Vec<usize> = aig.latches().iter().map(|l| l.node).collect();
        let input_nodes: Vec<usize> = aig.inputs().to_vec();
        if latch_nodes.len() > 63 || input_nodes.len() > options.max_inputs {
            return None;
        }
        let _span = crate::telemetry::span("explicit.explore", "");
        let mut engine = ExplicitEngine {
            latch_nodes,
            input_nodes,
            constraints: model.constraints.clone(),
            options: *options,
            states: Vec::new(),
            index: HashMap::new(),
            preds: Vec::new(),
            succs: Vec::new(),
            complete: false,
            interrupted: false,
            aig,
        };
        engine.run(interrupt);
        crate::telemetry::count("explicit.states", engine.states.len() as u64);
        Some(engine)
    }

    fn initial_state(&self) -> u64 {
        let mut state = 0u64;
        for (i, latch) in self.aig.latches().iter().enumerate() {
            if latch.init {
                state |= 1 << i;
            }
        }
        state
    }

    fn num_input_words(&self) -> u64 {
        let extra = self.input_nodes.len().saturating_sub(6) as u32;
        1u64 << extra
    }

    fn lanes_in_use(&self) -> u32 {
        let low = self.input_nodes.len().min(6) as u32;
        1u32 << low
    }

    fn run(&mut self, interrupt: &Interrupt) {
        let init = self.initial_state();
        self.states.push(init);
        self.index.insert(init, 0);
        self.preds.push((0, 0));
        self.succs.push(Vec::new());

        let aig = self.aig.clone();
        let mut eval = Evaluator::new(&aig);
        let mut frontier = 0usize;
        while frontier < self.states.len() {
            #[cfg(any(test, feature = "fault-injection"))]
            crate::faults::point("explicit.step");
            if interrupt.charge(1).is_some() || interrupt.poll().is_some() {
                self.complete = false;
                self.interrupted = true;
                return;
            }
            let state = self.states[frontier];
            let mut local_succs: Vec<u32> = Vec::new();
            for high in 0..self.num_input_words() {
                eval.sweep(&self.latch_nodes, &self.input_nodes, state, high);
                // Constraint mask: lanes where every assumption holds.
                let mut ok = u64::MAX;
                for &c in &self.constraints {
                    ok &= eval.lit_value(c);
                }
                if ok == 0 {
                    continue;
                }
                // Next-state bits per lane.
                let next_bits: Vec<u64> = aig
                    .latches()
                    .iter()
                    .map(|l| eval.lit_value(l.next))
                    .collect();
                for lane in 0..self.lanes_in_use() {
                    if (ok >> lane) & 1 == 0 {
                        continue;
                    }
                    let mut next = 0u64;
                    for (i, bits) in next_bits.iter().enumerate() {
                        if (bits >> lane) & 1 == 1 {
                            next |= 1 << i;
                        }
                    }
                    let idx = match self.index.get(&next) {
                        Some(&i) => i,
                        None => {
                            if self.states.len() >= self.options.max_states {
                                self.complete = false;
                                return;
                            }
                            let i = self.states.len() as u32;
                            self.states.push(next);
                            self.index.insert(next, i);
                            self.preds
                                .push((frontier as u32, self.input_valuation(high, lane)));
                            self.succs.push(Vec::new());
                            i
                        }
                    };
                    if !local_succs.contains(&idx) {
                        local_succs.push(idx);
                    }
                }
            }
            self.succs[frontier] = local_succs;
            frontier += 1;
        }
        self.complete = true;
    }

    fn input_valuation(&self, high: u64, lane: u32) -> u64 {
        (high << 6) | u64::from(lane)
    }

    /// Number of reachable states enumerated.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// `true` when the whole reachable state space fit within the limits.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// `true` when the exploration was preempted by its interrupt handle
    /// before exhausting the reachable state space.  Such an engine must
    /// not be memoized: a later property would inherit its truncation.
    pub fn was_interrupted(&self) -> bool {
        self.interrupted
    }

    /// Checks a safety property: can `bad` be true in any reachable state
    /// under any constraint-satisfying input valuation?
    pub fn check_bad(&self, bad: Lit) -> ExplicitResult {
        self.search_condition(bad, true)
    }

    /// Checks a cover property: can `target` be reached?
    ///
    /// A reachable target yields [`ExplicitResult::Violated`] with the
    /// witness trace (the caller interprets it as "covered").
    pub fn check_cover(&self, target: Lit) -> ExplicitResult {
        self.search_condition(target, true)
    }

    fn search_condition(&self, condition: Lit, want: bool) -> ExplicitResult {
        // Per-property query step: unlike `run`, which executes once per
        // memoized bundle, this runs under the asking property's task, so
        // an armed fault with a property filter fires deterministically
        // regardless of which sibling task performed the exploration.
        #[cfg(any(test, feature = "fault-injection"))]
        crate::faults::point("explicit.step");
        let mut eval = Evaluator::new(&self.aig);
        for (idx, &state) in self.states.iter().enumerate() {
            for high in 0..self.num_input_words() {
                eval.sweep(&self.latch_nodes, &self.input_nodes, state, high);
                let mut ok = u64::MAX;
                for &c in &self.constraints {
                    ok &= eval.lit_value(c);
                }
                let mut cond = eval.lit_value(condition);
                if !want {
                    cond = !cond;
                }
                let hit = ok & cond & self.lane_mask();
                if hit != 0 {
                    let lane = hit.trailing_zeros();
                    let input = self.input_valuation(high, lane);
                    let trace = self.build_trace(idx as u32, Some(input));
                    return ExplicitResult::Violated(trace);
                }
            }
        }
        if self.complete {
            ExplicitResult::Proven
        } else {
            ExplicitResult::Exceeded
        }
    }

    fn lane_mask(&self) -> u64 {
        let lanes = self.lanes_in_use();
        if lanes >= 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        }
    }

    /// Checks a liveness property given the state-bit positions of its
    /// pending monitor and of the assumed-fairness pending monitors.
    ///
    /// `assert_pending` and each element of `fair_pendings` must be latch
    /// literals of the model (monitor registers), so their value is part of
    /// the packed state.
    pub fn check_liveness(&self, assert_pending: Lit, fair_pendings: &[Lit]) -> ExplicitResult {
        if !self.complete {
            return ExplicitResult::Exceeded;
        }
        let pending_bit = match self.latch_bit(assert_pending) {
            Some(b) => b,
            None => return ExplicitResult::Exceeded,
        };
        let fair_bits: Vec<usize> = match fair_pendings
            .iter()
            .map(|&l| self.latch_bit(l))
            .collect::<Option<Vec<_>>>()
        {
            Some(v) => v,
            None => return ExplicitResult::Exceeded,
        };

        // Restrict to states where the obligation is pending and find the
        // strongly connected components of that subgraph.
        let in_sub: Vec<bool> = self
            .states
            .iter()
            .map(|&s| (s >> pending_bit) & 1 == 1)
            .collect();
        let sccs = self.tarjan_sccs(&in_sub);
        for scc in &sccs {
            // The component must contain a cycle: more than one state, or a
            // self-loop.
            let has_cycle = scc.len() > 1 || self.succs[scc[0] as usize].contains(&scc[0]);
            if !has_cycle {
                continue;
            }
            // Every assumed fairness must be discharged somewhere in the
            // component (its pending bit low in at least one state).
            let all_fair = fair_bits.iter().all(|&bit| {
                scc.iter()
                    .any(|&s| (self.states[s as usize] >> bit) & 1 == 0)
            });
            if all_fair {
                let trace = self.build_trace(scc[0], None);
                return ExplicitResult::Violated(trace);
            }
        }
        ExplicitResult::Proven
    }

    fn latch_bit(&self, lit: Lit) -> Option<usize> {
        if lit.is_inverted() {
            return None;
        }
        self.latch_nodes.iter().position(|&n| n == lit.node())
    }

    /// Iterative Tarjan SCC over the subgraph induced by `in_sub`.
    fn tarjan_sccs(&self, in_sub: &[bool]) -> Vec<Vec<u32>> {
        let n = self.states.len();
        let mut index = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut sccs = Vec::new();
        let mut counter = 0u32;

        // Explicit DFS stack of (node, edge cursor).
        for start in 0..n {
            if !in_sub[start] || index[start] != u32::MAX {
                continue;
            }
            let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
            index[start] = counter;
            low[start] = counter;
            counter += 1;
            stack.push(start as u32);
            on_stack[start] = true;

            while let Some(&mut (node, ref mut cursor)) = dfs.last_mut() {
                let succs = &self.succs[node];
                if *cursor < succs.len() {
                    let next = succs[*cursor] as usize;
                    *cursor += 1;
                    if !in_sub[next] {
                        continue;
                    }
                    if index[next] == u32::MAX {
                        index[next] = counter;
                        low[next] = counter;
                        counter += 1;
                        stack.push(next as u32);
                        on_stack[next] = true;
                        dfs.push((next, 0));
                    } else if on_stack[next] {
                        low[node] = low[node].min(index[next]);
                    }
                } else {
                    dfs.pop();
                    if let Some(&mut (parent, _)) = dfs.last_mut() {
                        low[parent] = low[parent].min(low[node]);
                    }
                    if low[node] == index[node] {
                        let mut component = Vec::new();
                        loop {
                            let v = stack.pop().expect("scc stack");
                            on_stack[v as usize] = false;
                            component.push(v);
                            if v as usize == node {
                                break;
                            }
                        }
                        sccs.push(component);
                    }
                }
            }
        }
        sccs
    }

    /// Reconstructs a trace from the initial state to `target` by following
    /// predecessor pointers.  When `final_input` is given it is applied in
    /// the last cycle (the cycle in which the bad condition fires).
    fn build_trace(&self, target: u32, final_input: Option<u64>) -> Trace {
        // Collect the path of (state, input-used-to-reach-next).
        let mut path = vec![target];
        let mut cur = target;
        while cur != 0 {
            let (prev, _) = self.preds[cur as usize];
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        let cycles = path.len();
        let mut trace = Trace::new(cycles);
        for (cycle, &state_idx) in path.iter().enumerate() {
            let state = self.states[state_idx as usize];
            for (i, &node) in self.latch_nodes.iter().enumerate() {
                let name = self
                    .aig
                    .name_of(node)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("latch{i}"));
                trace.record(cycle, &name, (state >> i) & 1 == 1, false);
            }
            // Inputs: the valuation used to reach the *next* state on the
            // path (or the final input for the last cycle).
            let input = if cycle + 1 < cycles {
                self.preds[path[cycle + 1] as usize].1
            } else {
                final_input.unwrap_or(0)
            };
            for (i, &node) in self.input_nodes.iter().enumerate() {
                let name = self
                    .aig
                    .name_of(node)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("input{i}"));
                trace.record(cycle, &name, (input >> i) & 1 == 1, true);
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BadProperty, ResponseProperty};

    /// 3-bit saturating counter with an enable input.
    fn counter_model() -> (Model, Vec<Lit>, Lit) {
        let mut aig = Aig::new();
        let en = aig.add_input("en");
        let bits: Vec<Lit> = (0..3)
            .map(|i| aig.add_latch(format!("c{i}"), false))
            .collect();
        let all_ones = aig.and_many(&bits);
        let b0 = bits[0];
        let b1 = bits[1];
        let b2 = bits[2];
        let n0 = aig.xor(b0, Lit::TRUE);
        let c0 = b0;
        let n1 = aig.xor(b1, c0);
        let c1 = aig.and(b1, c0);
        let n2 = aig.xor(b2, c1);
        let stay = all_ones;
        let h0 = aig.mux(stay, b0, n0);
        let h1 = aig.mux(stay, b1, n1);
        let h2 = aig.mux(stay, b2, n2);
        let g0 = aig.mux(en, h0, b0);
        let g1 = aig.mux(en, h1, b1);
        let g2 = aig.mux(en, h2, b2);
        aig.set_latch_next(b0, g0);
        aig.set_latch_next(b1, g1);
        aig.set_latch_next(b2, g2);
        (Model::new(aig), bits, en)
    }

    #[test]
    fn reachable_states_enumerated() {
        let (model, _, _) = counter_model();
        let engine = ExplicitEngine::explore(&model, &ExplicitOptions::default()).unwrap();
        assert!(engine.is_complete());
        // The counter visits exactly 8 states.
        assert_eq!(engine.num_states(), 8);
    }

    #[test]
    fn safety_violation_found_with_trace() {
        let (mut model, bits, _) = counter_model();
        let bad = {
            let aig = &mut model.aig;
            let t = aig.and(bits[0], bits[2]);
            aig.and(t, bits[1].invert())
        }; // value == 5
        model.bads.push(BadProperty {
            name: "reaches5".into(),
            lit: bad,
        });
        let engine = ExplicitEngine::explore(&model, &ExplicitOptions::default()).unwrap();
        match engine.check_bad(bad) {
            ExplicitResult::Violated(trace) => {
                assert!(trace.len() >= 6);
                assert_eq!(trace.value(trace.len() - 1, "c0"), Some(true));
                assert_eq!(trace.value(trace.len() - 1, "c2"), Some(true));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn unreachable_bad_is_proven() {
        let (model, bits, _) = counter_model();
        // The counter saturates: "value decreased below 7 after reaching 7"
        // needs a history register, so instead prove that the carry chain
        // never produces value 6 -> 5 style jumps: simply check a literal
        // that is structurally false.
        let _ = bits;
        let engine = ExplicitEngine::explore(&model, &ExplicitOptions::default()).unwrap();
        assert_eq!(engine.check_bad(Lit::FALSE), ExplicitResult::Proven);
    }

    #[test]
    fn constraints_prune_reachable_space() {
        let (mut model, bits, en) = counter_model();
        // With the enable tied low the counter never moves.
        model.constraints.push(en.invert());
        let bad = {
            let aig = &mut model.aig;
            aig.or_many(&bits)
        };
        let engine = ExplicitEngine::explore(&model, &ExplicitOptions::default()).unwrap();
        assert_eq!(engine.num_states(), 1);
        assert_eq!(engine.check_bad(bad), ExplicitResult::Proven);
    }

    #[test]
    fn liveness_with_and_without_fairness() {
        // busy is set by req and cleared by gnt.
        let mut aig = Aig::new();
        let req = aig.add_input("req");
        let gnt = aig.add_input("gnt");
        let busy = aig.add_latch("busy", false);
        let raised = aig.or(busy, req);
        let next = aig.and(raised, gnt.invert());
        aig.set_latch_next(busy, next);
        let mut model = Model::new(aig);
        model.liveness.push(ResponseProperty {
            name: "busy_clears".into(),
            trigger: busy,
            target: busy.invert(),
        });

        // Without fairness: the environment can withhold the grant forever.
        let (augmented, asserts, fairs) = model.with_pending_monitors();
        let engine = ExplicitEngine::explore(&augmented, &ExplicitOptions::default()).unwrap();
        match engine.check_liveness(asserts[0], &fairs) {
            ExplicitResult::Violated(trace) => assert!(!trace.is_empty()),
            other => panic!("expected violation, got {other:?}"),
        }

        // With the fairness assumption "a pending request is eventually
        // granted" the property holds.
        model.fairness.push(ResponseProperty {
            name: "gnt_fair".into(),
            trigger: busy,
            target: gnt,
        });
        let (augmented, asserts, fairs) = model.with_pending_monitors();
        let engine = ExplicitEngine::explore(&augmented, &ExplicitOptions::default()).unwrap();
        assert_eq!(
            engine.check_liveness(asserts[0], &fairs),
            ExplicitResult::Proven
        );
    }

    #[test]
    fn too_many_inputs_is_rejected() {
        let mut aig = Aig::new();
        for i in 0..25 {
            let _ = aig.add_input(format!("i{i}"));
        }
        let model = Model::new(aig);
        let options = ExplicitOptions {
            max_inputs: 20,
            ..ExplicitOptions::default()
        };
        assert!(ExplicitEngine::explore(&model, &options).is_none());
    }
}
