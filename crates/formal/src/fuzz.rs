//! Pre-cascade stimulus fuzzing over the bit-parallel simulator.
//!
//! Most of the Table III bugs are shallow: a few cycles of the right
//! stimulus reach the bad state.  This module hunts for them *before* any
//! SAT engine runs, by driving the 64-lane word evaluator
//! ([`crate::psim`]) over the property's optimized cone-of-influence slice
//! with a mix of stimulus strategies, split across the lanes of every word:
//!
//! * **seeded-random** — uniform per-bit stimulus from the deterministic
//!   [`rand::rngs::StdRng`] stream;
//! * **biased** — the same stream thinned toward all-zero (quiet
//!   interfaces) and toward all-one (saturating handshakes), one lane group
//!   each;
//! * **reset-directed** — lanes that hold every input low for a
//!   round-dependent warm-up window after reset before going random,
//!   approximating directed post-reset sequences;
//! * **constraint-respecting** — a lane whose stimulus would falsify an
//!   invariant assumption gets its inputs redrawn (a bounded number of
//!   times per cycle) until the assumptions hold again; lanes still
//!   violating after the redraw budget are retired for the rest of the
//!   round.  Plain rejection sampling dies within a few cycles under a
//!   restrictive environment; per-cycle redrawing keeps the whole lane
//!   population inside the legal stimulus space, so no spurious violation
//!   can be reported and deep-but-legal paths stay reachable.
//!
//! A lane that reaches a bad state is extracted into a concrete per-cycle
//! stimulus vector and **replayed through the existing two-state monitor**
//! ([`crate::sim::Simulator`]): only if the replay confirms the violation —
//! every constraint holds on every cycle and the bad fires at the final
//! cycle — does the fuzzer report a [`FuzzHit`].  The SAT cascade only ever
//! sees the survivors.
//!
//! The search is fully deterministic: fixed seed, fixed lane-group layout,
//! first-hit-cycle/lowest-lane extraction order.

use crate::aig::Lit;
use crate::model::{BadProperty, Model};
use crate::psim::{LaneWord, ParallelSim, ALL_LANES};
use crate::sim::Simulator;
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lanes 0–15: uniform random stimulus.
const RANDOM_LANES: LaneWord = 0x0000_0000_0000_FFFF;
/// Lanes 16–31: stimulus biased low (each input high with p = 1/4).
const LOW_LANES: LaneWord = 0x0000_0000_FFFF_0000;
/// Lanes 32–47: stimulus biased high (each input high with p = 3/4).
const HIGH_LANES: LaneWord = 0x0000_FFFF_0000_0000;
/// Lanes 48–63: reset-directed — all inputs held low through a warm-up
/// window, then uniform random.
const RESET_LANES: LaneWord = 0xFFFF_0000_0000_0000;

/// Per-cycle redraw attempts for lanes whose stimulus falsifies an
/// invariant assumption before they are retired for the round.
const CONSTRAINT_REDRAWS: usize = 8;

/// Stimulus-fuzzer knobs (part of [`crate::checker::CheckOptions`]).
///
/// The per-property budget is `rounds * cycles` simulated cycles, each
/// carrying 64 stimulus lanes — with the defaults, 65 536 concrete
/// stimulus-cycles per safety property before the first SAT query.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Run the fuzz stage before the SAT cascade for safety properties.
    /// The reported verdicts are unaffected either way (a confirmed hit is
    /// a true violation and is re-minimized before reporting); the knob
    /// exists for ablation and for byte-identity checks of the two paths.
    pub enabled: bool,
    /// Independent restarts per property, each from a derived seed and a
    /// different reset-directed warm-up window.
    pub rounds: usize,
    /// Simulated cycles per round (the depth horizon of the search).
    pub cycles: usize,
    /// Base seed of the deterministic stimulus stream.
    pub seed: u64,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            enabled: true,
            rounds: 4,
            cycles: 256,
            seed: 0xDAC2_2021,
        }
    }
}

/// Work counters of one fuzz run (one safety property).  Deterministic
/// for a fixed model, seed and budget — the search itself is — so they are
/// safe to surface in the telemetry registry's deterministic section.
/// Plumbed into [`crate::checker::PropertyResult::fuzz`] so `engine: fuzz`
/// verdicts are no longer stats-blind in the timed rendering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuzzStats {
    /// Rounds (restarts) executed.
    pub rounds: u64,
    /// Concrete stimulus-cycles simulated (live lanes × cycles).
    pub cycles: u64,
    /// Lanes retired for a round: constraint violators past the redraw
    /// budget, plus replay mismatches.
    pub lanes_retired: u64,
    /// Per-cycle input redraws forced by falsified assumptions.
    pub redraws: u64,
    /// Candidate hits replayed through the two-state monitor.
    pub replays: u64,
    /// Replays that confirmed the violation (0 or 1: the search stops at
    /// the first confirmed hit).
    pub confirmed: u64,
}

/// A replay-confirmed safety violation found by the fuzzer.
#[derive(Debug, Clone)]
pub struct FuzzHit {
    /// The confirmed counterexample: inputs and latches per cycle, exactly
    /// the shape the bounded model checker extracts.  The bad state fires
    /// at the final cycle.
    pub trace: Trace,
    /// Cycle at which the bad state fired (`trace.len() - 1`).
    pub cycle: usize,
    /// Lane of the 64-lane word that hit the bad state.
    pub lane: usize,
    /// Round (restart) in which the hit was found.
    pub round: usize,
}

/// Fuzzes safety property `model.bads[bad_index]` within the configured
/// budget.  Returns the first replay-confirmed violation (deterministic:
/// earliest round, then earliest cycle, then lowest lane), or `None` when
/// the budget drains without a confirmed hit.
pub fn fuzz_safety(model: &Model, bad_index: usize, options: &FuzzOptions) -> Option<FuzzHit> {
    fuzz_safety_with_stats(model, bad_index, options).0
}

/// [`fuzz_safety`] plus the work counters of the search (see
/// [`FuzzStats`]).  Each executed round is recorded as a `"fuzz.round"`
/// telemetry span; the counters also feed the `fuzz.*` entries of the
/// metrics registry.
pub fn fuzz_safety_with_stats(
    model: &Model,
    bad_index: usize,
    options: &FuzzOptions,
) -> (Option<FuzzHit>, FuzzStats) {
    fuzz_safety_budgeted(
        model,
        bad_index,
        options,
        &crate::interrupt::Interrupt::none(),
    )
}

/// Like [`fuzz_safety_with_stats`], preemptible: the [`Interrupt`]
/// handle is polled at every round start and once per simulated cycle.
/// An interrupted search simply reports no hit — the fuzzer can only
/// ever *find* violations, so stopping early loses no soundness; the
/// caller reads the handle to distinguish "budget drained" from
/// "preempted".
///
/// [`Interrupt`]: crate::interrupt::Interrupt
pub fn fuzz_safety_budgeted(
    model: &Model,
    bad_index: usize,
    options: &FuzzOptions,
    interrupt: &crate::interrupt::Interrupt,
) -> (Option<FuzzHit>, FuzzStats) {
    let mut stats = FuzzStats::default();
    let hit = fuzz_safety_inner(model, bad_index, options, &mut stats, interrupt);
    crate::telemetry::count("fuzz.rounds", stats.rounds);
    crate::telemetry::count("fuzz.cycles", stats.cycles);
    crate::telemetry::count("fuzz.lanes_retired", stats.lanes_retired);
    crate::telemetry::count("fuzz.redraws", stats.redraws);
    crate::telemetry::count("fuzz.replays", stats.replays);
    crate::telemetry::count("fuzz.confirmed", stats.confirmed);
    (hit, stats)
}

fn fuzz_safety_inner(
    model: &Model,
    bad_index: usize,
    options: &FuzzOptions,
    stats: &mut FuzzStats,
    interrupt: &crate::interrupt::Interrupt,
) -> Option<FuzzHit> {
    let bad = model.bads[bad_index].lit;
    let name = &model.bads[bad_index].name;
    let num_inputs = model.aig.num_inputs();
    let mut sim = ParallelSim::new(model);
    let mut inputs = vec![0u64; num_inputs];
    // Per-cycle stimulus history of the round, for lane extraction.
    let mut history: Vec<Vec<LaneWord>> = Vec::with_capacity(options.cycles);

    for round in 0..options.rounds {
        #[cfg(any(test, feature = "fault-injection"))]
        crate::faults::point("fuzz.round");
        if interrupt.poll().is_some() {
            return None;
        }
        let _round_span = crate::telemetry::span("fuzz.round", name);
        stats.rounds += 1;
        // SplitMix-style round-seed derivation keeps the rounds' streams
        // decorrelated even for adjacent base seeds.
        let round_seed = options
            .seed
            .wrapping_add((round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(round_seed);
        let warmup = 2 + 3 * round;
        sim.reset();
        history.clear();
        let mut alive = ALL_LANES;

        for cycle in 0..options.cycles {
            if interrupt.charge(1).is_some() || interrupt.poll().is_some() {
                return None;
            }
            for word in inputs.iter_mut() {
                let a = rng.next_u64();
                let b = rng.next_u64();
                let mut w = (a & RANDOM_LANES)
                    | (a & b & LOW_LANES)
                    | ((a | b) & HIGH_LANES)
                    | (a & RESET_LANES);
                if cycle < warmup {
                    w &= !RESET_LANES;
                }
                *word = w;
            }
            sim.step_inputs(&inputs);
            // Constraint-respecting: redraw the inputs of lanes whose
            // stimulus falsifies an assumption this cycle (assumptions mix
            // current inputs with latch state, so a fresh draw usually
            // lands back inside the legal space), then retire whichever
            // lanes still violate after the redraw budget.
            let mut ok = sim.constraints_word();
            for _ in 0..CONSTRAINT_REDRAWS {
                let violating = alive & !ok;
                if violating == 0 {
                    break;
                }
                stats.redraws += u64::from(violating.count_ones());
                for word in inputs.iter_mut() {
                    *word = (*word & !violating) | (rng.next_u64() & violating);
                }
                sim.step_inputs(&inputs);
                ok = sim.constraints_word();
            }
            history.push(inputs.clone());
            stats.lanes_retired += u64::from((alive & !ok).count_ones());
            alive &= ok;
            if alive == 0 {
                break;
            }
            stats.cycles += u64::from(alive.count_ones());
            let mut hits = sim.word(bad) & alive;
            while hits != 0 {
                let lane = hits.trailing_zeros() as usize;
                hits &= hits - 1;
                let stimulus = extract_lane(&history, lane);
                stats.replays += 1;
                if let Some(trace) = replay_confirmed(model, bad_index, &stimulus) {
                    stats.confirmed += 1;
                    return Some(FuzzHit {
                        trace,
                        cycle,
                        lane,
                        round,
                    });
                }
                // A replay mismatch would mean the word evaluator and the
                // monitor disagree; retire the lane and keep searching.
                stats.lanes_retired += 1;
                alive &= !(1 << lane);
            }
            sim.advance();
        }
    }
    None
}

/// Extracts the concrete per-cycle stimulus of one lane from the word
/// history.
fn extract_lane(history: &[Vec<LaneWord>], lane: usize) -> Vec<Vec<bool>> {
    history
        .iter()
        .map(|words| words.iter().map(|w| (w >> lane) & 1 == 1).collect())
        .collect()
}

/// Replays `stimulus` through the existing cycle-accurate monitor
/// ([`crate::sim::Simulator`]): every invariant constraint must hold on
/// every cycle and the target bad must fire at the final cycle.  On
/// confirmation, returns the full counterexample trace (inputs and latches
/// per cycle, the same shape the bounded model checker extracts).
fn replay_confirmed(model: &Model, bad_index: usize, stimulus: &[Vec<bool>]) -> Option<Trace> {
    if stimulus.is_empty() {
        return None;
    }
    // Check exactly one bad — the target — so a sibling property firing
    // earlier cannot be mistaken for the confirmation.
    let mut check_model = model.clone();
    check_model.bads = vec![BadProperty {
        name: "__fuzz_target__".into(),
        lit: model.bads[bad_index].lit,
    }];
    let latch_lits: Vec<(String, Lit)> = model
        .aig
        .latches()
        .iter()
        .map(|l| {
            let name = model.aig.name_of(l.node).unwrap_or("latch").to_string();
            (name, Lit::new(l.node, false))
        })
        .collect();
    let mut sim = Simulator::new(&check_model);
    let mut trace = Trace::new(stimulus.len());
    let mut fired_last = false;
    for (cycle, inputs) in stimulus.iter().enumerate() {
        // Latch values entering the cycle, inputs driven during it — the
        // frame layout of `bmc::extract_trace`.
        for (name, lit) in &latch_lits {
            trace.record(cycle, name, sim.value(*lit), false);
        }
        for (i, &value) in inputs.iter().enumerate() {
            trace.record(cycle, model.aig.input_name(i), value, true);
        }
        let violations = sim.step(inputs);
        if violations
            .iter()
            .any(|v| v.property.starts_with("constraint_"))
        {
            return None;
        }
        fired_last = violations.iter().any(|v| v.property == "__fuzz_target__");
    }
    fired_last.then_some(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::elab::{elaborate, ElabOptions};
    use autosva::{generate_ft, AutosvaOptions};

    const ECHO_BAD: &str = r#"
/*AUTOSVA
t: req -in> res
req_val = req_val
req_ack = req_ack
res_val = res_val
*/
module echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  output logic res_val
);
  assign req_ack = 1'b1;
  assign res_val = !req_val;
endmodule
"#;

    const ECHO_GOOD: &str = r#"
/*AUTOSVA
t: req -in> res
req_val = req_val
req_ack = req_ack
res_val = res_val
*/
module echo (
  input  logic clk_i,
  input  logic rst_ni,
  input  logic req_val,
  output logic req_ack,
  output logic res_val
);
  logic busy_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) busy_q <= 1'b0;
    else if (req_val && req_ack) busy_q <= 1'b1;
    else busy_q <= 1'b0;
  end
  assign req_ack = !busy_q;
  assign res_val = busy_q;
endmodule
"#;

    fn compiled(src: &str) -> Model {
        let ft = generate_ft(src, &AutosvaOptions::default()).unwrap();
        let file = svparse::parse(src).unwrap();
        let design = elaborate(&file, &ElabOptions::default()).unwrap();
        compile(&design, &ft).unwrap().model
    }

    fn safety_index(model: &Model, needle: &str) -> usize {
        model
            .bads
            .iter()
            .position(|b| b.name.contains(needle))
            .expect("safety property exists")
    }

    #[test]
    fn finds_the_ghost_response_and_confirms_by_replay() {
        let model = compiled(ECHO_BAD);
        let index = safety_index(&model, "had_a_request");
        let hit = fuzz_safety(&model, index, &FuzzOptions::default())
            .expect("the ghost response is a shallow bug");
        assert_eq!(hit.trace.len(), hit.cycle + 1);
        // The confirmed trace must replay again, independently.
        let stimulus: Vec<Vec<bool>> = (0..hit.trace.len())
            .map(|cycle| {
                (0..model.aig.num_inputs())
                    .map(|i| {
                        hit.trace
                            .value(cycle, model.aig.input_name(i))
                            .unwrap_or(false)
                    })
                    .collect()
            })
            .collect();
        assert!(replay_confirmed(&model, index, &stimulus).is_some());
    }

    #[test]
    fn healthy_design_yields_no_hit() {
        let model = compiled(ECHO_GOOD);
        let index = safety_index(&model, "had_a_request");
        assert!(fuzz_safety(&model, index, &FuzzOptions::default()).is_none());
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let model = compiled(ECHO_BAD);
        let index = safety_index(&model, "had_a_request");
        let a = fuzz_safety(&model, index, &FuzzOptions::default()).unwrap();
        let b = fuzz_safety(&model, index, &FuzzOptions::default()).unwrap();
        assert_eq!(a.cycle, b.cycle);
        assert_eq!(a.lane, b.lane);
        assert_eq!(a.round, b.round);
        assert_eq!(a.trace, b.trace);
        // A different seed still finds the shallow bug.
        let other = fuzz_safety(
            &model,
            index,
            &FuzzOptions {
                seed: 7,
                ..FuzzOptions::default()
            },
        );
        assert!(other.is_some());
    }

    #[test]
    fn stats_count_the_search_work_deterministically() {
        let model = compiled(ECHO_BAD);
        let index = safety_index(&model, "had_a_request");
        let (hit, stats) = fuzz_safety_with_stats(&model, index, &FuzzOptions::default());
        assert!(hit.is_some());
        assert_eq!(stats.confirmed, 1);
        assert!(stats.replays >= 1);
        assert!(stats.cycles > 0);
        assert!(stats.rounds >= 1);
        let (_, again) = fuzz_safety_with_stats(&model, index, &FuzzOptions::default());
        assert_eq!(stats, again, "counters must be deterministic per seed");
        // A clean design drains the full round budget without confirming.
        let good = compiled(ECHO_GOOD);
        let gindex = safety_index(&good, "had_a_request");
        let (ghit, gstats) = fuzz_safety_with_stats(&good, gindex, &FuzzOptions::default());
        assert!(ghit.is_none());
        assert_eq!(gstats.confirmed, 0);
        assert_eq!(gstats.rounds, FuzzOptions::default().rounds as u64);
    }

    #[test]
    fn constraint_blocking_the_bug_yields_no_hit() {
        // Assume requests are always pending: the ghost response (response
        // while req_val is low) becomes unreachable stimulus, and the
        // constraint-respecting lane mask must prevent any report.
        let mut model = compiled(ECHO_BAD);
        let index = safety_index(&model, "had_a_request");
        let req = (0..model.aig.num_inputs())
            .position(|i| model.aig.input_name(i) == "req_val")
            .map(|i| Lit::new(model.aig.inputs()[i], false))
            .expect("req_val input");
        model.constraints.push(req);
        assert!(fuzz_safety(&model, index, &FuzzOptions::default()).is_none());
    }
}
