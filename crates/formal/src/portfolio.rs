//! Parallel verification orchestration: scheduling, budgets and the proof
//! cache.
//!
//! The checker turns every property of a testbench into an independent task
//! on its own cone-of-influence slice (see [`crate::coi`]); this module
//! supplies the machinery that runs those tasks:
//!
//! * [`ParallelOptions`] — the orchestration knobs on
//!   [`crate::checker::CheckOptions`]: worker count (`threads = 1` is the
//!   sequential escape hatch), slicing on/off, an optional per-property time
//!   budget, first-violation cancellation, and an optional [`ProofCache`];
//! * [`run_ordered`] — a self-scheduling worker pool over [`std::thread`]
//!   (no external dependencies): idle workers steal the next property index
//!   from a shared atomic queue head, results land in annotation order, and
//!   a shared cancellation flag stops the fleet early.  Statuses are
//!   deterministic — every engine is single-threaded and runs on an
//!   identical slice regardless of interleaving — so a report assembled
//!   from a parallel run renders byte-identically to a sequential one;
//! * [`ProofCache`] — a process-wide store keyed by *slice fingerprint +
//!   property name*.  Identical cones (buggy/fixed design variants,
//!   repeated bench iterations, properties stamped out by the same
//!   annotation) reuse verdicts instead of re-running engines.  Cache hits
//!   are never trusted blindly where an artifact can be re-checked: PDR
//!   invariants are re-certified against the slice with an independent SAT
//!   check, and counterexample/witness traces are replayed through the
//!   two-state simulator; entries that fail validation are evicted and the
//!   property is re-verified from scratch.

use crate::aig::Lit;
use crate::coi::Fingerprint;
use crate::model::{BadProperty, Model};
use crate::pdr::Invariant;
use crate::sim::Simulator;
use crate::trace::Trace;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Orchestration options for a verification run (part of
/// [`crate::checker::CheckOptions`]).
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    /// Number of worker threads; `0` uses every available core, `1` is the
    /// fully sequential escape hatch.
    pub threads: usize,
    /// Check each property on its cone-of-influence slice instead of the
    /// full compiled model (verdict-preserving; see [`crate::coi`]).
    pub slice: bool,
    /// Wall-clock budget per property; a property still undecided when its
    /// budget runs out between engine stages reports
    /// [`crate::checker::PropertyStatus::Unknown`] with an explanatory note.
    /// Budgets make outcomes timing-dependent, so the default is `None`.
    pub property_timeout: Option<Duration>,
    /// Raise the shared cancellation flag as soon as any property is
    /// violated; properties not yet started report `Unknown`.  Useful for
    /// bug-hunting sweeps; off by default because it makes reports depend on
    /// scheduling order.
    pub stop_on_violation: bool,
    /// Share verified verdicts across runs keyed by slice fingerprint.
    pub cache: Option<ProofCache>,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            threads: 0,
            slice: true,
            property_timeout: None,
            stop_on_violation: false,
            cache: None,
        }
    }
}

impl ParallelOptions {
    /// The effective worker count: `threads`, or every available core when
    /// `threads == 0`.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// Runs `run(i, &items[i])` for every item on up to `threads` workers and
/// returns the results in item order.
///
/// Workers self-schedule from a shared queue head, so long-running
/// properties never block short ones behind a static partition.  When
/// `cancel` is raised, remaining unstarted items yield `None`; items whose
/// run already started complete normally.
pub(crate) fn run_ordered<T, R, F>(
    items: &[T],
    threads: usize,
    cancel: &AtomicBool,
    run: F,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                if cancel.load(Ordering::Relaxed) {
                    None
                } else {
                    Some(run(i, item))
                }
            })
            .collect();
    }
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                if cancel.load(Ordering::Relaxed) {
                    continue;
                }
                let r = run(i, &items[i]);
                let mut slots = results.lock().expect("result slots");
                slots[i] = Some(r);
            });
        }
    });
    results.into_inner().expect("result slots")
}

/// Counters describing the effectiveness of a [`ProofCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (after successful re-validation).
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Verdicts stored.
    pub insertions: u64,
    /// Entries evicted because re-validation (invariant certification or
    /// trace replay) failed.
    pub rejected: u64,
}

/// The key of a cached verdict: the content fingerprint of the checked
/// slice plus the property's full name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub fingerprint: Fingerprint,
    pub property: String,
}

/// A verdict as stored in the cache (artifacts in slice-literal terms).
#[derive(Debug, Clone)]
pub(crate) enum CachedOutcome {
    /// k-induction proof at the recorded depth.
    Induction {
        /// Induction depth.
        depth: usize,
    },
    /// PDR proof; the invariant clauses are re-certified on every hit.
    Invariant {
        /// Invariant clauses over slice latch literals.
        clauses: Vec<Vec<Lit>>,
        /// Frames explored when the proof closed.
        frames: usize,
    },
    /// Explicit-engine (exhaustive reachability) proof.
    Reachability,
    /// Cover target proven unreachable; when PDR produced the proof the
    /// invariant certificate is kept and re-checked on hits.
    Unreachable {
        /// `(clauses, frames)` of the PDR certificate, if one exists.
        certificate: Option<(Vec<Vec<Lit>>, usize)>,
    },
    /// Counterexample; replayed through the simulator on every hit.
    Violated(Trace),
    /// Cover witness; replayed through the simulator on every hit.
    Covered(Trace),
}

/// A cache hit after successful re-validation, in engine terms.
#[derive(Debug, Clone)]
pub(crate) enum CachedVerdict {
    /// k-induction proof.
    Induction {
        /// Induction depth.
        depth: usize,
    },
    /// Re-certified PDR invariant.
    Invariant(Invariant),
    /// Explicit-engine proof.
    Reachability,
    /// Cover target unreachable.
    Unreachable,
    /// Replayed counterexample.
    Violated(Trace),
    /// Replayed cover witness.
    Covered(Trace),
}

#[derive(Default)]
struct CacheInner {
    entries: HashMap<CacheKey, CachedOutcome>,
    stats: CacheStats,
}

/// A process-wide proof cache shared by verification runs (cheaply cloneable
/// handle; clones share the same store).
///
/// See the module documentation for the validation performed on hits.
#[derive(Clone, Default)]
pub struct ProofCache {
    inner: Arc<Mutex<CacheInner>>,
}

impl fmt::Debug for ProofCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("cache lock");
        f.debug_struct("ProofCache")
            .field("entries", &inner.entries.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl ProofCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ProofCache::default()
    }

    /// Number of stored verdicts.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss/insert/reject counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache lock").stats
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().expect("cache lock").entries.clear();
    }

    /// Stores a verdict (last write wins).
    pub(crate) fn store(&self, key: CacheKey, outcome: CachedOutcome) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.stats.insertions += 1;
        inner.entries.insert(key, outcome);
    }

    /// Looks up and re-validates a verdict for a property checked on
    /// `model` with bad/cover literal `target`.
    ///
    /// The entry (if any) was produced on a slice with the same content
    /// fingerprint, so validation failure indicates a hash collision or a
    /// corrupted entry — the entry is evicted and `None` returned so the
    /// property is re-verified from scratch.
    pub(crate) fn lookup(
        &self,
        key: &CacheKey,
        model: &Model,
        target: Lit,
    ) -> Option<CachedVerdict> {
        let outcome = {
            let mut inner = self.inner.lock().expect("cache lock");
            match inner.entries.get(key) {
                Some(entry) => entry.clone(),
                None => {
                    inner.stats.misses += 1;
                    return None;
                }
            }
        };
        // Validation runs outside the lock: certification and replay are
        // real engine work and must not serialize the worker pool.
        let verdict = match outcome {
            CachedOutcome::Induction { depth } => Some(CachedVerdict::Induction { depth }),
            CachedOutcome::Reachability => Some(CachedVerdict::Reachability),
            CachedOutcome::Invariant { clauses, frames } => {
                let invariant = Invariant::from_clauses(clauses, frames);
                if invariant.certify(model, target) {
                    Some(CachedVerdict::Invariant(invariant))
                } else {
                    None
                }
            }
            CachedOutcome::Unreachable { certificate } => match certificate {
                None => Some(CachedVerdict::Unreachable),
                Some((clauses, frames)) => {
                    let invariant = Invariant::from_clauses(clauses, frames);
                    if invariant.certify(model, target) {
                        Some(CachedVerdict::Unreachable)
                    } else {
                        None
                    }
                }
            },
            CachedOutcome::Violated(trace) => {
                if replay_confirms(model, target, &trace) {
                    Some(CachedVerdict::Violated(trace))
                } else {
                    None
                }
            }
            CachedOutcome::Covered(trace) => {
                if replay_confirms(model, target, &trace) {
                    Some(CachedVerdict::Covered(trace))
                } else {
                    None
                }
            }
        };
        let mut inner = self.inner.lock().expect("cache lock");
        match verdict {
            Some(v) => {
                inner.stats.hits += 1;
                Some(v)
            }
            None => {
                inner.stats.rejected += 1;
                inner.entries.remove(key);
                None
            }
        }
    }
}

/// Replays a cached trace through the two-state simulator: the target
/// literal must fire at the final cycle and every invariant constraint must
/// hold throughout.
fn replay_confirms(model: &Model, target: Lit, trace: &Trace) -> bool {
    if trace.is_empty() {
        return false;
    }
    let mut check_model = model.clone();
    check_model.bads = vec![BadProperty {
        name: "__cached_target__".into(),
        lit: target,
    }];
    let input_names: Vec<String> = (0..model.aig.num_inputs())
        .map(|i| model.aig.input_name(i).to_string())
        .collect();
    let mut sim = Simulator::new(&check_model);
    let mut fired_last = false;
    for cycle in 0..trace.len() {
        let inputs: HashMap<String, bool> = input_names
            .iter()
            .map(|n| (n.clone(), trace.value(cycle, n).unwrap_or(false)))
            .collect();
        let violations = sim.step(&inputs);
        if violations
            .iter()
            .any(|v| v.property.starts_with("constraint_"))
        {
            return false;
        }
        fired_last = violations.iter().any(|v| v.property == "__cached_target__");
    }
    fired_last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;

    #[test]
    fn run_ordered_preserves_item_order() {
        let items: Vec<usize> = (0..64).collect();
        let cancel = AtomicBool::new(false);
        let out = run_ordered(&items, 8, &cancel, |i, &item| {
            assert_eq!(i, item);
            item * 2
        });
        let values: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_ordered_sequential_matches_parallel() {
        let items: Vec<usize> = (0..32).collect();
        let cancel = AtomicBool::new(false);
        let seq = run_ordered(&items, 1, &cancel, |_, &x| x + 1);
        let par = run_ordered(&items, 4, &cancel, |_, &x| x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn cancelled_items_yield_none() {
        let items: Vec<usize> = (0..8).collect();
        let cancel = AtomicBool::new(true);
        let out = run_ordered(&items, 4, &cancel, |_, &x| x);
        assert!(out.iter().all(Option::is_none));
    }

    #[test]
    fn effective_threads_resolves_auto() {
        let auto = ParallelOptions::default();
        assert!(auto.effective_threads() >= 1);
        let one = ParallelOptions {
            threads: 1,
            ..ParallelOptions::default()
        };
        assert_eq!(one.effective_threads(), 1);
    }

    /// One latch driven by one input, bad when the latch is high.
    fn tiny_model() -> (Model, Lit) {
        let mut aig = Aig::new();
        let x = aig.add_input("x");
        let q = aig.add_latch("q", false);
        aig.set_latch_next(q, x);
        let mut model = Model::new(aig);
        model.bads.push(BadProperty {
            name: "q_high".into(),
            lit: q,
        });
        (model, q)
    }

    fn key() -> CacheKey {
        CacheKey {
            fingerprint: Fingerprint(1, 2),
            property: "q_high".into(),
        }
    }

    #[test]
    fn violated_entries_replay_on_hit() {
        let (model, q) = tiny_model();
        let cache = ProofCache::new();
        // A genuine 2-cycle counterexample: x=1 at cycle 0, q=1 at cycle 1.
        let mut trace = Trace::new(2);
        trace.record(0, "x", true, true);
        trace.record(1, "q", true, false);
        cache.store(key(), CachedOutcome::Violated(trace));
        match cache.lookup(&key(), &model, q) {
            Some(CachedVerdict::Violated(t)) => assert_eq!(t.len(), 2),
            other => panic!("expected replayed violation, got {other:?}"),
        }
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn bogus_traces_are_evicted() {
        let (model, q) = tiny_model();
        let cache = ProofCache::new();
        // x never high: the bad state is not reached and replay must fail.
        let mut trace = Trace::new(2);
        trace.record(0, "x", false, true);
        cache.store(key(), CachedOutcome::Violated(trace));
        assert!(cache.lookup(&key(), &model, q).is_none());
        assert_eq!(cache.stats().rejected, 1);
        assert!(cache.is_empty(), "failed entries must be evicted");
    }

    #[test]
    fn invariants_are_recertified_on_hit() {
        // busy-sticky model where "!q" is NOT inductive (input can set q):
        // a bogus invariant entry must be rejected.
        let (model, q) = tiny_model();
        let cache = ProofCache::new();
        cache.store(
            key(),
            CachedOutcome::Invariant {
                clauses: vec![vec![q.invert()]],
                frames: 1,
            },
        );
        assert!(cache.lookup(&key(), &model, q).is_none());
        assert_eq!(cache.stats().rejected, 1);

        // A model where the latch really never rises (next = FALSE): the
        // empty invariant certifies (q is initially low and stays low).
        let mut aig = Aig::new();
        let q2 = aig.add_latch("q", false);
        aig.set_latch_next(q2, Lit::FALSE);
        let mut safe = Model::new(aig);
        safe.bads.push(BadProperty {
            name: "q_high".into(),
            lit: q2,
        });
        cache.store(
            key(),
            CachedOutcome::Invariant {
                clauses: vec![vec![q2.invert()]],
                frames: 1,
            },
        );
        match cache.lookup(&key(), &safe, q2) {
            Some(CachedVerdict::Invariant(inv)) => assert_eq!(inv.num_clauses(), 1),
            other => panic!("expected certified invariant, got {other:?}"),
        }
    }

    #[test]
    fn induction_entries_hit_directly() {
        let (model, q) = tiny_model();
        let cache = ProofCache::new();
        cache.store(key(), CachedOutcome::Induction { depth: 3 });
        match cache.lookup(&key(), &model, q) {
            Some(CachedVerdict::Induction { depth }) => assert_eq!(depth, 3),
            other => panic!("expected induction hit, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 0, 1));
        // A different property name misses.
        let other_key = CacheKey {
            fingerprint: Fingerprint(1, 2),
            property: "other".into(),
        };
        assert!(cache.lookup(&other_key, &model, q).is_none());
        assert_eq!(cache.stats().misses, 1);
    }
}
